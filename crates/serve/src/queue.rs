//! The durable job queue behind `rem serve`.
//!
//! Jobs are REMSCENARIO1 TOML scenario specs spooled to disk. The
//! whole queue state lives in one `REMQUEUE1` journal written with the
//! same atomic write + fsync + FNV-1a checksum discipline as campaign
//! checkpoints ([`rem_core::write_atomic_checksummed`]), so a `kill
//! -9` at any instant leaves either the previous state or the next —
//! never a torn file. The journal is rewritten on every mutation while
//! the queue lock is held; queue mutations are rare (job lifecycle
//! edges, not per-trial), so the full rewrite is cheap and keeps
//! recovery trivial: read one file, done.
//!
//! Recovery semantics are at-least-once: a job that was `Running` when
//! the process died is requeued on open (its attempt was already
//! counted when it was claimed), unless its attempts are exhausted —
//! then it is quarantined as a poison job. Trial-level work is *not*
//! lost either way: each job checkpoints through the campaign
//! machinery, so a requeued job resumes from its last wave and hashes
//! identically to an uninterrupted run.

use rem_core::{read_checksummed, write_atomic_checksummed, ExperimentError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Magic tag of the queue journal file format.
pub const QUEUE_MAGIC: &str = "REMQUEUE1";

/// Lifecycle of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished cleanly; `result_hash` is set.
    Done,
    /// Failed on every allowed attempt (poison job); `error` says why.
    Quarantined,
}

/// One submitted campaign.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// Monotonic id, assigned at submission.
    pub id: u64,
    /// The scenario's name (from the TOML `name` field).
    pub name: String,
    /// The full REMSCENARIO1 TOML source the job runs.
    pub scenario_toml: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Claims so far (a drain-requeue does not consume an attempt).
    pub attempts: u32,
    /// `fnv1a64:<16 hex>` digest of the result, once `Done` — the same
    /// digest `rem compare --scenario <file> --hash` prints.
    #[serde(default)]
    pub result_hash: Option<String>,
    /// Last failure message, for `Quarantined` (or a retried failure).
    #[serde(default)]
    pub error: Option<String>,
}

/// Aggregate state counts, served on `/healthz`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueCounts {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs claimed by a worker.
    pub running: usize,
    /// Jobs finished cleanly.
    pub done: usize,
    /// Poison jobs parked after exhausting their attempts.
    pub quarantined: usize,
}

/// Queue sizing and retry policy.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Maximum queued + running jobs; submissions past this are
    /// rejected (the HTTP listener maps the rejection to 503).
    pub capacity: usize,
    /// Claims a job may consume before it is quarantined as poison.
    pub max_attempts: u32,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self { capacity: 64, max_attempts: 2 }
    }
}

/// Why a submission was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue is at capacity — back off and retry later (HTTP 503).
    Full {
        /// The configured admission bound that was hit.
        capacity: usize,
    },
    /// The journal write failed; the job was **not** accepted.
    Persist(ExperimentError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full { capacity } => {
                write!(f, "queue full ({capacity} jobs queued or running)")
            }
            SubmitError::Persist(e) => write!(f, "cannot persist queue journal: {e}"),
        }
    }
}

/// The serializable journal body: the whole queue in one document.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct QueueState {
    next_id: u64,
    jobs: Vec<Job>,
}

impl QueueState {
    fn counts(&self) -> QueueCounts {
        let mut c = QueueCounts::default();
        for j in &self.jobs {
            match j.state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Done => c.done += 1,
                JobState::Quarantined => c.quarantined += 1,
            }
        }
        c
    }
}

/// The durable, bounded, condvar-signalled job queue.
pub struct JobQueue {
    inner: Mutex<QueueState>,
    cv: Condvar,
    journal: PathBuf,
    cfg: QueueConfig,
}

impl JobQueue {
    /// Opens (or creates) the queue at `journal`. Jobs left `Running`
    /// by a crashed process are requeued — or quarantined when their
    /// attempts are spent — and the repaired state is persisted before
    /// the queue is handed out. Returns the queue plus the number of
    /// in-flight jobs recovered back to `Queued`.
    pub fn open(journal: &Path, cfg: QueueConfig) -> Result<(Self, usize), ExperimentError> {
        let mut state = if journal.exists() {
            let body = read_checksummed(QUEUE_MAGIC, journal)?;
            serde_json::from_str::<QueueState>(&body)
                .map_err(|e| ExperimentError::serde("queue journal", e))?
        } else {
            QueueState::default()
        };
        let mut recovered = 0usize;
        for j in &mut state.jobs {
            if j.state == JobState::Running {
                if j.attempts >= cfg.max_attempts {
                    j.state = JobState::Quarantined;
                    j.error = Some(format!(
                        "crashed mid-run on attempt {} of {} — quarantined as poison",
                        j.attempts, cfg.max_attempts
                    ));
                } else {
                    j.state = JobState::Queued;
                    recovered += 1;
                }
            }
        }
        Self::persist(journal, &state)?;
        Ok((Self { inner: Mutex::new(state), cv: Condvar::new(), journal: journal.into(), cfg }, recovered))
    }

    fn persist(journal: &Path, state: &QueueState) -> Result<(), ExperimentError> {
        let body = serde_json::to_string(state)
            .map_err(|e| ExperimentError::serde("queue journal", e))?;
        write_atomic_checksummed(QUEUE_MAGIC, journal, &body)
    }

    /// Admits a job, or refuses it when queued + running is at
    /// capacity. The job is durable (journal fsynced) before its id is
    /// returned.
    pub fn submit(&self, name: &str, scenario_toml: &str) -> Result<u64, SubmitError> {
        let mut s = self.inner.lock().unwrap();
        let c = s.counts();
        if c.queued + c.running >= self.cfg.capacity {
            return Err(SubmitError::Full { capacity: self.cfg.capacity });
        }
        let id = s.next_id;
        s.next_id += 1;
        s.jobs.push(Job {
            id,
            name: name.into(),
            scenario_toml: scenario_toml.into(),
            state: JobState::Queued,
            attempts: 0,
            result_hash: None,
            error: None,
        });
        if let Err(e) = Self::persist(&self.journal, &s) {
            s.jobs.pop();
            s.next_id = id;
            return Err(SubmitError::Persist(e));
        }
        self.cv.notify_one();
        Ok(id)
    }

    /// Claims the oldest queued job, marking it `Running` (durably) and
    /// counting the attempt. Blocks up to `wait` for work; returns
    /// `None` on timeout so callers can re-check their shutdown flag.
    pub fn claim(&self, wait: Duration) -> Result<Option<Job>, ExperimentError> {
        let mut s = self.inner.lock().unwrap();
        if !s.jobs.iter().any(|j| j.state == JobState::Queued) {
            let (guard, _timeout) = self
                .cv
                .wait_timeout_while(s, wait, |s| {
                    !s.jobs.iter().any(|j| j.state == JobState::Queued)
                })
                .unwrap();
            s = guard;
        }
        let Some(j) = s.jobs.iter_mut().find(|j| j.state == JobState::Queued) else {
            return Ok(None);
        };
        j.state = JobState::Running;
        j.attempts += 1;
        let job = j.clone();
        Self::persist(&self.journal, &s)?;
        Ok(Some(job))
    }

    /// Records a clean finish with its result digest.
    pub fn complete(&self, id: u64, result_hash: &str) -> Result<(), ExperimentError> {
        self.transition(id, |j| {
            j.state = JobState::Done;
            j.result_hash = Some(result_hash.into());
            j.error = None;
        })
    }

    /// Records a failed attempt: the job goes back to `Queued` for a
    /// retry, or to `Quarantined` once its attempts are spent.
    pub fn fail(&self, id: u64, error: &str) -> Result<(), ExperimentError> {
        let max = self.cfg.max_attempts;
        let r = self.transition(id, |j| {
            j.error = Some(error.into());
            j.state =
                if j.attempts >= max { JobState::Quarantined } else { JobState::Queued };
        });
        self.cv.notify_one();
        r
    }

    /// Returns a drained job to the queue **without** consuming the
    /// attempt: a graceful shutdown is not a failure, and the job's
    /// checkpoint means the retry only runs the missing trials.
    pub fn requeue_interrupted(&self, id: u64) -> Result<(), ExperimentError> {
        self.transition(id, |j| {
            j.state = JobState::Queued;
            j.attempts = j.attempts.saturating_sub(1);
        })
    }

    fn transition(
        &self,
        id: u64,
        f: impl FnOnce(&mut Job),
    ) -> Result<(), ExperimentError> {
        let mut s = self.inner.lock().unwrap();
        if let Some(j) = s.jobs.iter_mut().find(|j| j.id == id) {
            f(j);
        }
        Self::persist(&self.journal, &s)
    }

    /// Aggregate state counts.
    pub fn counts(&self) -> QueueCounts {
        self.inner.lock().unwrap().counts()
    }

    /// Every job, submission order.
    pub fn jobs(&self) -> Vec<Job> {
        self.inner.lock().unwrap().jobs.clone()
    }

    /// One job by id.
    pub fn job(&self, id: u64) -> Option<Job> {
        self.inner.lock().unwrap().jobs.iter().find(|j| j.id == id).cloned()
    }

    /// Wakes every waiter (used on drain so idle workers re-check the
    /// shutdown flag immediately instead of riding out their timeout).
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rem-serve-queue-tests");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let p = dir.join(format!("{name}.journal"));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn submit_claim_complete_roundtrip_survives_reopen() {
        let path = scratch("roundtrip");
        let cfg = QueueConfig::default();
        {
            let (q, recovered) = JobQueue::open(&path, cfg).unwrap();
            assert_eq!(recovered, 0);
            let id = q.submit("a", "name = \"a\"").unwrap();
            let job = q.claim(Duration::from_millis(1)).unwrap().unwrap();
            assert_eq!(job.id, id);
            assert_eq!(job.attempts, 1);
            q.complete(id, "fnv1a64:0000000000000001").unwrap();
        }
        let (q, recovered) = JobQueue::open(&path, cfg).unwrap();
        assert_eq!(recovered, 0);
        let job = q.job(0).unwrap();
        assert_eq!(job.state, JobState::Done);
        assert_eq!(job.result_hash.as_deref(), Some("fnv1a64:0000000000000001"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn running_job_is_requeued_on_crash_recovery() {
        let path = scratch("crash-recovery");
        let cfg = QueueConfig { capacity: 8, max_attempts: 2 };
        {
            let (q, _) = JobQueue::open(&path, cfg).unwrap();
            q.submit("a", "x").unwrap();
            q.claim(Duration::from_millis(1)).unwrap().unwrap();
            // Process "dies" here: the journal says Running.
        }
        let (q, recovered) = JobQueue::open(&path, cfg).unwrap();
        assert_eq!(recovered, 1);
        assert_eq!(q.job(0).unwrap().state, JobState::Queued);
        // Second claim spends the last attempt; a second crash
        // quarantines the job instead of looping forever.
        q.claim(Duration::from_millis(1)).unwrap().unwrap();
        drop(q);
        let (q, recovered) = JobQueue::open(&path, cfg).unwrap();
        assert_eq!(recovered, 0);
        let job = q.job(0).unwrap();
        assert_eq!(job.state, JobState::Quarantined);
        assert!(job.error.as_deref().unwrap().contains("poison"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn admission_control_bounds_queued_plus_running() {
        let path = scratch("admission");
        let (q, _) = JobQueue::open(&path, QueueConfig { capacity: 2, max_attempts: 2 }).unwrap();
        q.submit("a", "x").unwrap();
        q.submit("b", "x").unwrap();
        match q.submit("c", "x") {
            Err(SubmitError::Full { capacity: 2 }) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        // Done jobs stop counting against the bound.
        let job = q.claim(Duration::from_millis(1)).unwrap().unwrap();
        q.complete(job.id, "fnv1a64:0000000000000000").unwrap();
        q.submit("c", "x").unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_attempts_retry_then_quarantine() {
        let path = scratch("retry");
        let (q, _) = JobQueue::open(&path, QueueConfig { capacity: 8, max_attempts: 2 }).unwrap();
        let id = q.submit("a", "x").unwrap();
        let j = q.claim(Duration::from_millis(1)).unwrap().unwrap();
        q.fail(j.id, "boom").unwrap();
        assert_eq!(q.job(id).unwrap().state, JobState::Queued, "first failure retries");
        let j = q.claim(Duration::from_millis(1)).unwrap().unwrap();
        q.fail(j.id, "boom again").unwrap();
        let job = q.job(id).unwrap();
        assert_eq!(job.state, JobState::Quarantined, "attempts spent");
        assert_eq!(job.error.as_deref(), Some("boom again"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drain_requeue_returns_the_attempt() {
        let path = scratch("drain");
        let (q, _) = JobQueue::open(&path, QueueConfig { capacity: 8, max_attempts: 1 }).unwrap();
        let id = q.submit("a", "x").unwrap();
        let j = q.claim(Duration::from_millis(1)).unwrap().unwrap();
        assert_eq!(j.attempts, 1);
        q.requeue_interrupted(j.id).unwrap();
        let job = q.job(id).unwrap();
        assert_eq!(job.state, JobState::Queued);
        assert_eq!(job.attempts, 0, "a drain is not a failure");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_journal_is_a_typed_error() {
        let path = scratch("corrupt");
        let (q, _) = JobQueue::open(&path, QueueConfig::default()).unwrap();
        q.submit("a", "x").unwrap();
        drop(q);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match JobQueue::open(&path, QueueConfig::default()) {
            Err(ExperimentError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {:?}", other.map(|_| ())),
        }
        let _ = std::fs::remove_file(&path);
    }
}
