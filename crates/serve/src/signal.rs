//! Process-wide shutdown flag wired to SIGINT/SIGTERM.
//!
//! The handler is the smallest thing POSIX allows: it stores one
//! `AtomicBool`. Everything else — finishing the current checkpoint
//! wave, persisting queue state, flushing manifests — happens on
//! ordinary threads that poll [`requested`]. No allocation, no locks,
//! no I/O ever runs in signal context.
//!
//! The flag is process-global on purpose: a one-shot `rem compare
//! --checkpoint` run and the resident `rem serve` service share the
//! same drain semantics ("stop at the next wave boundary, leave a
//! resumable checkpoint behind"), so they share the same flag.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The signal handler: store the flag and return. Async-signal-safe.
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handler (idempotent). On non-Unix
/// targets this is a no-op; [`trigger`] still works, so drains driven
/// programmatically (tests, embedding) behave identically everywhere.
pub fn install() {
    #[cfg(unix)]
    {
        // Raw libc `signal(2)` so the crate stays std-only. The
        // handler only touches an AtomicBool, so the coarse SysV
        // semantics of `signal` (vs `sigaction`) are sufficient.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// True once SIGINT/SIGTERM arrived (or [`trigger`] was called).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Raises the flag programmatically — the in-process equivalent of
/// SIGTERM, used by [`crate::Server::drain`] and by tests.
pub fn trigger() {
    SHUTDOWN.store(true, Ordering::SeqCst)
}

/// Clears the flag. Tests (and a service restarting its accept loop in
/// the same process) call this before a fresh run.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_and_reset_drive_the_flag() {
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[cfg(unix)]
    #[test]
    fn installed_handler_catches_a_real_sigint() {
        reset();
        install();
        // raise(3) delivers the signal to this process synchronously.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        unsafe {
            raise(2);
        }
        assert!(requested(), "SIGINT must set the shutdown flag");
        reset();
    }
}
