use rem_sim::*;
use rem_mobility::FailureCause;

fn main() {
    for speed in [50.0, 150.0, 250.0, 325.0] {
        for plane in [Plane::Legacy, Plane::Rem] {
            let mut agg = RunMetrics::default();
            for seed in 0..3u64 {
                let spec = DatasetSpec::beijing_taiyuan(40.0, speed);
                let m = simulate_run(&RunConfig::new(spec, plane, seed));
                agg.duration_s += m.duration_s;
                agg.handovers.extend(m.handovers);
                agg.failures.extend(m.failures);
                agg.loops.extend(m.loops);
                agg.feedback_delays_ms.extend(m.feedback_delays_ms);
            }
            let bd = agg.failure_breakdown();
            println!("v={speed} {plane:?}: HOs={} interval={:.1}s fail={:.2}% (fd={} mc={} cl={} hole={}) conflict_loops={} fbdelay={:.0}ms",
                agg.handovers.len(), agg.avg_handover_interval_s()*3.0,
                agg.failure_ratio()*100.0,
                bd.get(&FailureCause::FeedbackDelayLoss).unwrap_or(&0),
                bd.get(&FailureCause::MissedCell).unwrap_or(&0),
                bd.get(&FailureCause::CommandLoss).unwrap_or(&0),
                bd.get(&FailureCause::CoverageHole).unwrap_or(&0),
                agg.conflict_loops().count(),
                rem_num::stats::mean(&agg.feedback_delays_ms));
        }
    }
}
