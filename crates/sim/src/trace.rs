//! MobileInsight-style signaling event traces.
//!
//! The paper's datasets are streams of captured signaling messages
//! (measurement configurations/reports, handover commands, RRC
//! re-establishments) with timestamps. The simulator can emit the same
//! stream for any run, so downstream tooling — or a future replay
//! against real traces — consumes one format. Serialisable with serde
//! (JSON via `serde_json`).

use crate::error::ParseError;
use rem_mobility::{CellId, FailureCause};
use serde::{Deserialize, Serialize};

/// One captured signaling event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SignalingEvent {
    /// Client attached (initially or after re-establishment).
    Attach {
        /// Time (ms).
        t_ms: f64,
        /// Cell attached to.
        cell: CellId,
    },
    /// A measurement event fired at the client and a report was sent.
    MeasurementReport {
        /// Time (ms).
        t_ms: f64,
        /// Serving cell.
        serving: CellId,
        /// Reported best target.
        target: CellId,
        /// Whether the report survived the uplink.
        delivered: bool,
    },
    /// The serving cell issued a handover command.
    HandoverCommand {
        /// Time (ms).
        t_ms: f64,
        /// Serving cell.
        serving: CellId,
        /// Commanded target.
        target: CellId,
        /// Whether the command survived the downlink.
        delivered: bool,
    },
    /// The client completed a handover.
    HandoverComplete {
        /// Time (ms).
        t_ms: f64,
        /// Old serving cell.
        from: CellId,
        /// New serving cell.
        to: CellId,
    },
    /// Radio link failure.
    RadioLinkFailure {
        /// Time (ms).
        t_ms: f64,
        /// Serving cell at failure.
        serving: CellId,
        /// Classified cause.
        cause: FailureCause,
    },
    /// An RRC re-establishment attempt after radio link failure.
    Reestablish {
        /// Time (ms).
        t_ms: f64,
        /// Retry number (1-based).
        attempt: u32,
        /// Whether a cell admitted the re-establishment.
        success: bool,
    },
}

impl SignalingEvent {
    /// Event timestamp (ms).
    pub fn t_ms(&self) -> f64 {
        match self {
            SignalingEvent::Attach { t_ms, .. }
            | SignalingEvent::MeasurementReport { t_ms, .. }
            | SignalingEvent::HandoverCommand { t_ms, .. }
            | SignalingEvent::HandoverComplete { t_ms, .. }
            | SignalingEvent::RadioLinkFailure { t_ms, .. }
            | SignalingEvent::Reestablish { t_ms, .. } => *t_ms,
        }
    }

    /// Short type tag (for grep-friendly dumps).
    pub fn kind(&self) -> &'static str {
        match self {
            SignalingEvent::Attach { .. } => "ATTACH",
            SignalingEvent::MeasurementReport { .. } => "MEAS_REPORT",
            SignalingEvent::HandoverCommand { .. } => "HO_COMMAND",
            SignalingEvent::HandoverComplete { .. } => "HO_COMPLETE",
            SignalingEvent::RadioLinkFailure { .. } => "RLF",
            SignalingEvent::Reestablish { .. } => "REESTABLISH",
        }
    }
}

/// A full captured trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SignalingTrace {
    /// Events in chronological order.
    pub events: Vec<SignalingEvent>,
}

impl SignalingTrace {
    /// Appends an event (keeps chronological order by construction —
    /// the simulator emits in time order).
    pub fn push(&mut self, e: SignalingEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| e.t_ms() >= last.t_ms()),
            "trace must be chronological"
        );
        self.events.push(e);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts events of one kind.
    pub fn count(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// Serialises to JSON lines (one event per line — the MobileInsight
    /// export convention).
    pub fn to_jsonl(&self) -> String {
        self.events
            .iter()
            .map(|e| serde_json::to_string(e).expect("trace events serialise"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parses a JSON-lines dump back into a trace, reporting the
    /// offending line on malformed input and rejecting
    /// non-chronological dumps (the push-side invariant, enforced on
    /// the load side too so hand-edited or truncated captures cannot
    /// smuggle disorder into replay tooling).
    pub fn from_jsonl(s: &str) -> Result<Self, ParseError> {
        let mut t = SignalingTrace::default();
        let mut prev_ms = f64::NEG_INFINITY;
        for (idx, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let line_no = idx + 1;
            let e: SignalingEvent = serde_json::from_str(line)
                .map_err(|err| ParseError::Json { line: line_no, reason: err.to_string() })?;
            let t_ms = e.t_ms();
            if !t_ms.is_finite() {
                return Err(ParseError::Invalid {
                    context: format!("trace line {line_no}"),
                    reason: format!("non-finite timestamp {t_ms}"),
                });
            }
            if t_ms < prev_ms {
                return Err(ParseError::NotChronological { line: line_no, t_ms, prev_ms });
            }
            prev_ms = t_ms;
            t.events.push(e);
        }
        Ok(t)
    }

    /// Loads a JSON-lines trace dump from disk.
    pub fn load(path: &std::path::Path) -> Result<Self, ParseError> {
        let s = std::fs::read_to_string(path).map_err(|err| ParseError::Io {
            path: path.display().to_string(),
            reason: err.to_string(),
        })?;
        Self::from_jsonl(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SignalingTrace {
        let mut t = SignalingTrace::default();
        t.push(SignalingEvent::Attach { t_ms: 0.0, cell: CellId(1) });
        t.push(SignalingEvent::MeasurementReport {
            t_ms: 100.0,
            serving: CellId(1),
            target: CellId(2),
            delivered: true,
        });
        t.push(SignalingEvent::HandoverCommand {
            t_ms: 130.0,
            serving: CellId(1),
            target: CellId(2),
            delivered: true,
        });
        t.push(SignalingEvent::HandoverComplete { t_ms: 160.0, from: CellId(1), to: CellId(2) });
        t.push(SignalingEvent::RadioLinkFailure {
            t_ms: 5_000.0,
            serving: CellId(2),
            cause: FailureCause::CommandLoss,
        });
        t
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample();
        let dump = t.to_jsonl();
        assert_eq!(dump.lines().count(), 5);
        let back = SignalingTrace::from_jsonl(&dump).unwrap();
        assert_eq!(back.events, t.events);
    }

    #[test]
    fn kinds_and_counts() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.count("MEAS_REPORT"), 1);
        assert_eq!(t.count("RLF"), 1);
        assert_eq!(t.count("NOPE"), 0);
    }

    #[test]
    fn timestamps_accessible() {
        let t = sample();
        assert_eq!(t.events[0].t_ms(), 0.0);
        assert_eq!(t.events[4].t_ms(), 5_000.0);
    }

    #[test]
    fn malformed_jsonl_rejected() {
        assert!(SignalingTrace::from_jsonl("{not json}").is_err());
        assert!(SignalingTrace::from_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn malformed_line_is_reported_with_its_line_number() {
        let mut dump = sample().to_jsonl();
        dump.push_str("\n{\"Attach\":{\"t_ms\":9999.0,\"cell\"");
        match SignalingTrace::from_jsonl(&dump) {
            Err(ParseError::Json { line, .. }) => assert_eq!(line, 6),
            other => panic!("expected Json error, got {other:?}"),
        }
        // Blank lines do not shift the reported number.
        let dump = "\n\n{broken".to_string();
        match SignalingTrace::from_jsonl(&dump) {
            Err(ParseError::Json { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Json error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_event_kind_rejected_not_panicking() {
        let dump = r#"{"Teleport":{"t_ms":1.0}}"#;
        assert!(matches!(
            SignalingTrace::from_jsonl(dump),
            Err(ParseError::Json { line: 1, .. })
        ));
    }

    #[test]
    fn non_chronological_dump_rejected() {
        let dump = [
            r#"{"Attach":{"t_ms":100.0,"cell":1}}"#,
            r#"{"Attach":{"t_ms":50.0,"cell":2}}"#,
        ]
        .join("\n");
        match SignalingTrace::from_jsonl(&dump) {
            Err(ParseError::NotChronological { line, t_ms, prev_ms }) => {
                assert_eq!(line, 2);
                assert_eq!(t_ms, 50.0);
                assert_eq!(prev_ms, 100.0);
            }
            other => panic!("expected NotChronological, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_timestamp_rejected() {
        let dump = r#"{"Attach":{"t_ms":null,"cell":1}}"#;
        // serde rejects null for f64 already; NaN cannot round-trip
        // through JSON, so the finite check guards inf written as 1e999.
        assert!(SignalingTrace::from_jsonl(dump).is_err());
        let dump = r#"{"Attach":{"t_ms":1e999,"cell":1}}"#;
        assert!(SignalingTrace::from_jsonl(dump).is_err());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = SignalingTrace::load(std::path::Path::new("/nonexistent/trace.jsonl"))
            .unwrap_err();
        assert!(matches!(err, ParseError::Io { .. }));
    }

    #[test]
    fn reestablish_round_trips() {
        let mut t = sample();
        t.push(SignalingEvent::Reestablish { t_ms: 5_100.0, attempt: 1, success: false });
        t.push(SignalingEvent::Reestablish { t_ms: 5_400.0, attempt: 2, success: true });
        let back = SignalingTrace::from_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(back.events, t.events);
        assert_eq!(back.count("REESTABLISH"), 2);
    }
}
