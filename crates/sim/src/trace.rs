//! MobileInsight-style signaling event traces.
//!
//! The paper's datasets are streams of captured signaling messages
//! (measurement configurations/reports, handover commands, RRC
//! re-establishments) with timestamps. The simulator can emit the same
//! stream for any run, so downstream tooling — or a future replay
//! against real traces — consumes one format. Serialisable with serde
//! (JSON via `serde_json`).

use rem_mobility::{CellId, FailureCause};
use serde::{Deserialize, Serialize};

/// One captured signaling event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SignalingEvent {
    /// Client attached (initially or after re-establishment).
    Attach {
        /// Time (ms).
        t_ms: f64,
        /// Cell attached to.
        cell: CellId,
    },
    /// A measurement event fired at the client and a report was sent.
    MeasurementReport {
        /// Time (ms).
        t_ms: f64,
        /// Serving cell.
        serving: CellId,
        /// Reported best target.
        target: CellId,
        /// Whether the report survived the uplink.
        delivered: bool,
    },
    /// The serving cell issued a handover command.
    HandoverCommand {
        /// Time (ms).
        t_ms: f64,
        /// Serving cell.
        serving: CellId,
        /// Commanded target.
        target: CellId,
        /// Whether the command survived the downlink.
        delivered: bool,
    },
    /// The client completed a handover.
    HandoverComplete {
        /// Time (ms).
        t_ms: f64,
        /// Old serving cell.
        from: CellId,
        /// New serving cell.
        to: CellId,
    },
    /// Radio link failure.
    RadioLinkFailure {
        /// Time (ms).
        t_ms: f64,
        /// Serving cell at failure.
        serving: CellId,
        /// Classified cause.
        cause: FailureCause,
    },
}

impl SignalingEvent {
    /// Event timestamp (ms).
    pub fn t_ms(&self) -> f64 {
        match self {
            SignalingEvent::Attach { t_ms, .. }
            | SignalingEvent::MeasurementReport { t_ms, .. }
            | SignalingEvent::HandoverCommand { t_ms, .. }
            | SignalingEvent::HandoverComplete { t_ms, .. }
            | SignalingEvent::RadioLinkFailure { t_ms, .. } => *t_ms,
        }
    }

    /// Short type tag (for grep-friendly dumps).
    pub fn kind(&self) -> &'static str {
        match self {
            SignalingEvent::Attach { .. } => "ATTACH",
            SignalingEvent::MeasurementReport { .. } => "MEAS_REPORT",
            SignalingEvent::HandoverCommand { .. } => "HO_COMMAND",
            SignalingEvent::HandoverComplete { .. } => "HO_COMPLETE",
            SignalingEvent::RadioLinkFailure { .. } => "RLF",
        }
    }
}

/// A full captured trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SignalingTrace {
    /// Events in chronological order.
    pub events: Vec<SignalingEvent>,
}

impl SignalingTrace {
    /// Appends an event (keeps chronological order by construction —
    /// the simulator emits in time order).
    pub fn push(&mut self, e: SignalingEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| e.t_ms() >= last.t_ms()),
            "trace must be chronological"
        );
        self.events.push(e);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts events of one kind.
    pub fn count(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// Serialises to JSON lines (one event per line — the MobileInsight
    /// export convention).
    pub fn to_jsonl(&self) -> String {
        self.events
            .iter()
            .map(|e| serde_json::to_string(e).expect("trace events serialise"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parses a JSON-lines dump back into a trace.
    pub fn from_jsonl(s: &str) -> Result<Self, serde_json::Error> {
        let mut t = SignalingTrace::default();
        for line in s.lines().filter(|l| !l.trim().is_empty()) {
            t.events.push(serde_json::from_str(line)?);
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SignalingTrace {
        let mut t = SignalingTrace::default();
        t.push(SignalingEvent::Attach { t_ms: 0.0, cell: CellId(1) });
        t.push(SignalingEvent::MeasurementReport {
            t_ms: 100.0,
            serving: CellId(1),
            target: CellId(2),
            delivered: true,
        });
        t.push(SignalingEvent::HandoverCommand {
            t_ms: 130.0,
            serving: CellId(1),
            target: CellId(2),
            delivered: true,
        });
        t.push(SignalingEvent::HandoverComplete { t_ms: 160.0, from: CellId(1), to: CellId(2) });
        t.push(SignalingEvent::RadioLinkFailure {
            t_ms: 5_000.0,
            serving: CellId(2),
            cause: FailureCause::CommandLoss,
        });
        t
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample();
        let dump = t.to_jsonl();
        assert_eq!(dump.lines().count(), 5);
        let back = SignalingTrace::from_jsonl(&dump).unwrap();
        assert_eq!(back.events, t.events);
    }

    #[test]
    fn kinds_and_counts() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.count("MEAS_REPORT"), 1);
        assert_eq!(t.count("RLF"), 1);
        assert_eq!(t.count("NOPE"), 0);
    }

    #[test]
    fn timestamps_accessible() {
        let t = sample();
        assert_eq!(t.events[0].t_ms(), 0.0);
        assert_eq!(t.events[4].t_ms(), 5_000.0);
    }

    #[test]
    fn malformed_jsonl_rejected() {
        assert!(SignalingTrace::from_jsonl("{not json}").is_err());
        assert!(SignalingTrace::from_jsonl("").unwrap().is_empty());
    }
}
