//! A minimal deterministic discrete-event queue.
//!
//! The mobility simulator advances client state on fixed measurement
//! epochs but schedules asynchronous occurrences — message deliveries,
//! retransmissions, re-establishment timers — on this queue. Ties are
//! broken by insertion order so runs are reproducible regardless of
//! float equality quirks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    time_ms: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time_ms == other.time_ms && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .time_ms
            .partial_cmp(&self.time_ms)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of timed events.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `payload` at `time_ms`.
    pub fn push(&mut self, time_ms: f64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time_ms, seq, payload });
    }

    /// Pops the earliest event if its time is `<= now_ms`.
    pub fn pop_due(&mut self, now_ms: f64) -> Option<(f64, T)> {
        if self.heap.peek().is_some_and(|e| e.time_ms <= now_ms) {
            self.heap.pop().map(|e| (e.time_ms, e.payload))
        } else {
            None
        }
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time_ms)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30.0, "c");
        q.push(10.0, "a");
        q.push(20.0, "b");
        assert_eq!(q.pop_due(100.0), Some((10.0, "a")));
        assert_eq!(q.pop_due(100.0), Some((20.0, "b")));
        assert_eq!(q.pop_due(100.0), Some((30.0, "c")));
        assert_eq!(q.pop_due(100.0), None);
    }

    #[test]
    fn respects_due_horizon() {
        let mut q = EventQueue::new();
        q.push(50.0, 1);
        assert_eq!(q.pop_due(49.9), None);
        assert_eq!(q.pop_due(50.0), Some((50.0, 1)));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5.0, "first");
        q.push(5.0, "second");
        q.push(5.0, "third");
        assert_eq!(q.pop_due(5.0).unwrap().1, "first");
        assert_eq!(q.pop_due(5.0).unwrap().1, "second");
        assert_eq!(q.pop_due(5.0).unwrap().1, "third");
    }

    /// A payload that implements no ordering at all: pop order must
    /// come purely from (time, insertion seq), never the payload.
    #[derive(Debug, PartialEq)]
    struct Opaque(&'static str);

    #[test]
    fn ties_ignore_payload_entirely() {
        // Payloads deliberately sort differently than push order under
        // any content-based comparison (string, length, reversed).
        let mut q = EventQueue::new();
        q.push(7.0, Opaque("zzz"));
        q.push(7.0, Opaque("aaa"));
        q.push(7.0, Opaque(""));
        q.push(7.0, Opaque("mm"));
        let popped: Vec<_> = std::iter::from_fn(|| q.pop_due(7.0)).map(|(_, p)| p).collect();
        assert_eq!(popped, vec![Opaque("zzz"), Opaque("aaa"), Opaque(""), Opaque("mm")]);
    }

    #[test]
    fn ties_at_multiple_times_keep_per_time_push_order() {
        let mut q = EventQueue::new();
        q.push(20.0, "b1");
        q.push(10.0, "a1");
        q.push(20.0, "b2");
        q.push(10.0, "a2");
        q.push(20.0, "b3");
        let popped: Vec<_> = std::iter::from_fn(|| q.pop_due(100.0)).map(|(_, p)| p).collect();
        assert_eq!(popped, vec!["a1", "a2", "b1", "b2", "b3"]);
    }

    #[test]
    fn interleaved_push_pop_preserves_tie_order() {
        let mut q = EventQueue::new();
        q.push(5.0, 100);
        assert_eq!(q.pop_due(5.0), Some((5.0, 100)));
        // Re-using an already-popped time after the queue drained must
        // still order later pushes among themselves.
        q.push(5.0, 1);
        q.push(5.0, 0);
        assert_eq!(q.pop_due(5.0), Some((5.0, 1)));
        q.push(5.0, -7);
        assert_eq!(q.pop_due(5.0), Some((5.0, 0)));
        assert_eq!(q.pop_due(5.0), Some((5.0, -7)));
        assert!(q.is_empty());
    }

    #[test]
    fn many_ties_pop_in_exact_push_order() {
        let mut q = EventQueue::new();
        for i in 0..500u32 {
            // Payload descends while push order ascends.
            q.push(1.0, 500 - i);
        }
        for i in 0..500u32 {
            assert_eq!(q.pop_due(1.0), Some((1.0, 500 - i)), "tie #{i}");
        }
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, ());
        q.push(2.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(1.0));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
