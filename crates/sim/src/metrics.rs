//! Campaign metrics: everything Tables 2/3/5 and Figs 2/3/4/9/15 read
//! off a simulation run.

use crate::trace::SignalingTrace;
use rem_faults::{InjectedFault, OraclePair};
use rem_mobility::{CellId, FailureCause};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One completed (or failed) handover.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HandoverRecord {
    /// When the handover concluded (ms).
    pub t_ms: f64,
    /// Source cell.
    pub from: CellId,
    /// Target cell.
    pub to: CellId,
    /// Whether source and target share a frequency.
    pub intra_freq: bool,
    /// Realized feedback delay for this attempt (ms).
    pub feedback_delay_ms: f64,
}

/// One network failure (radio link loss).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// When connectivity was lost (ms).
    pub t_ms: f64,
    /// Classified cause (paper Table 2 taxonomy).
    pub cause: FailureCause,
    /// Outage duration until re-established (ms).
    pub outage_ms: f64,
}

/// A detected ping-pong loop (paper §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoopRecord {
    /// Loop start (ms).
    pub start_ms: f64,
    /// Loop end (ms).
    pub end_ms: f64,
    /// Handovers spent inside the loop.
    pub handovers: usize,
    /// Whether the oscillating pair shares a frequency.
    pub intra_freq: bool,
    /// Whether the pair's policies genuinely conflict (offset sum < 0,
    /// the paper's persistent-loop condition) as opposed to a transient
    /// fading ping-pong (§3.1).
    pub policy_conflict: bool,
    /// Service disruption accumulated by the loop's handovers (ms).
    pub disruption_ms: f64,
}

/// Signaling traffic counters (the paper's overhead claim, §7.2:
/// REM "retains marginal overhead of signaling traffic and latency").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalingCounts {
    /// Measurement reports sent (uplink messages).
    pub reports: usize,
    /// Handover commands sent (downlink messages).
    pub commands: usize,
    /// Measurement reconfigurations (legacy stage-2 entries/exits).
    pub reconfigs: usize,
    /// Total HARQ transmissions across all messages (airtime units).
    pub harq_transmissions: usize,
    /// X2AP backhaul messages exchanged for handover preparation
    /// (request/ack, SN status transfer, context release). Backhaul
    /// traffic, so not part of [`Self::total_messages`] (an air-
    /// interface overhead figure).
    #[serde(default)]
    pub x2_messages: usize,
}

impl SignalingCounts {
    /// Total signaling messages.
    pub fn total_messages(&self) -> usize {
        self.reports + self.commands + self.reconfigs
    }
}

/// Everything measured over one run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Run length (s).
    pub duration_s: f64,
    /// Successful handovers.
    pub handovers: Vec<HandoverRecord>,
    /// Network failures.
    pub failures: Vec<FailureRecord>,
    /// Detected ping-pong loops.
    pub loops: Vec<LoopRecord>,
    /// Per-direction effective-SINR-implied BLER samples within 5 s
    /// before each failure: `(uplink?)` — Fig 2b.
    pub bler_before_failure_ul: Vec<f64>,
    /// Downlink BLER samples before failures.
    pub bler_before_failure_dl: Vec<f64>,
    /// Feedback delays of all attempts (ms) — Figs 2a / 14a.
    pub feedback_delays_ms: Vec<f64>,
    /// Signaling event trace (populated when
    /// [`RunConfig::record_trace`](crate::run::RunConfig) is set).
    pub trace: SignalingTrace,
    /// Signaling traffic counters.
    pub signaling: SignalingCounts,
    /// Injected faults that actually bit the run (empty without fault
    /// injection).
    #[serde(default)]
    pub injected: Vec<InjectedFault>,
    /// Oracle checks: ground-truth cause of each fault-attributed
    /// failure vs what the state machine classified.
    #[serde(default)]
    pub fault_oracle: Vec<OraclePair>,
    /// RRC re-establishment attempts performed during outages.
    #[serde(default)]
    pub reestablish_attempts: usize,
    /// Epochs where the REM plane degraded to legacy single-cell
    /// logic (estimation confidence low or its inputs faulted).
    #[serde(default)]
    pub rem_fallback_epochs: usize,
}

impl RunMetrics {
    /// Total handover events (successes + failures), the paper's
    /// denominator for failure ratios.
    pub fn total_events(&self) -> usize {
        self.handovers.len() + self.failures.len()
    }

    /// Overall failure ratio.
    pub fn failure_ratio(&self) -> f64 {
        let n = self.total_events();
        if n == 0 {
            0.0
        } else {
            self.failures.len() as f64 / n as f64
        }
    }

    /// Failure ratio excluding coverage holes ("failure w/o coverage
    /// hole" rows of Table 5).
    pub fn failure_ratio_no_holes(&self) -> f64 {
        let n = self.total_events();
        if n == 0 {
            return 0.0;
        }
        let f = self
            .failures
            .iter()
            .filter(|f| f.cause != FailureCause::CoverageHole)
            .count();
        f as f64 / n as f64
    }

    /// Failure ratio for one cause.
    pub fn failure_ratio_by(&self, cause: FailureCause) -> f64 {
        let n = self.total_events();
        if n == 0 {
            return 0.0;
        }
        self.failures.iter().filter(|f| f.cause == cause).count() as f64 / n as f64
    }

    /// Cause histogram.
    pub fn failure_breakdown(&self) -> HashMap<FailureCause, usize> {
        let mut m = HashMap::new();
        for f in &self.failures {
            *m.entry(f.cause).or_insert(0) += 1;
        }
        m
    }

    /// Mean interval between successful handovers (s).
    pub fn avg_handover_interval_s(&self) -> f64 {
        if self.handovers.len() < 2 {
            return self.duration_s;
        }
        let first = self.handovers.first().unwrap().t_ms;
        let last = self.handovers.last().unwrap().t_ms;
        (last - first) / 1e3 / (self.handovers.len() - 1) as f64
    }

    /// Loops caused by genuine policy conflicts (the quantity the
    /// paper's Tables 2/5 report).
    pub fn conflict_loops(&self) -> impl Iterator<Item = &LoopRecord> {
        self.loops.iter().filter(|l| l.policy_conflict)
    }

    /// Mean time between conflict loops (s); `duration_s` when none.
    pub fn avg_loop_interval_s(&self) -> f64 {
        let n = self.conflict_loops().count();
        if n == 0 {
            return self.duration_s;
        }
        self.duration_s / n as f64
    }

    /// Mean handovers per conflict loop.
    pub fn avg_handovers_per_loop(&self) -> f64 {
        let n = self.conflict_loops().count();
        if n == 0 {
            return 0.0;
        }
        self.conflict_loops().map(|l| l.handovers).sum::<usize>() as f64 / n as f64
    }

    /// Mean disruption per conflict loop (s).
    pub fn avg_disruption_per_loop_s(&self) -> f64 {
        let n = self.conflict_loops().count();
        if n == 0 {
            return 0.0;
        }
        self.conflict_loops().map(|l| l.disruption_ms).sum::<f64>() / 1e3 / n as f64
    }

    /// Fraction of conflict loops that are intra-frequency.
    pub fn intra_freq_loop_fraction(&self) -> f64 {
        let n = self.conflict_loops().count();
        if n == 0 {
            return 0.0;
        }
        self.conflict_loops().filter(|l| l.intra_freq).count() as f64 / n as f64
    }

    /// Fraction of handovers that happened inside conflict loops
    /// ("Total HO in conflicts" row of Table 5).
    pub fn handovers_in_loops_fraction(&self) -> f64 {
        let n = self.handovers.len();
        if n == 0 {
            return 0.0;
        }
        let in_loops: usize = self.conflict_loops().map(|l| l.handovers).sum();
        in_loops as f64 / n as f64
    }

    /// Outage intervals for the TCP coupling (Fig 9): `(start, end)` ms.
    pub fn outage_intervals_ms(&self) -> Vec<(f64, f64)> {
        self.failures.iter().map(|f| (f.t_ms, f.t_ms + f.outage_ms)).collect()
    }

    /// All service interruptions: failure outages plus the short
    /// break-before-make gap of every successful handover
    /// (`per_ho_ms`). For the TCP coupling of Fig 9.
    pub fn interruption_intervals_ms(&self, per_ho_ms: f64) -> Vec<(f64, f64)> {
        let mut out = self.outage_intervals_ms();
        out.extend(self.handovers.iter().map(|h| (h.t_ms, h.t_ms + per_ho_ms)));
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        out
    }

    /// Oracle pairs whose classification disagreed with the injected
    /// ground truth. Empty is the correctness criterion.
    pub fn oracle_mismatches(&self) -> Vec<&OraclePair> {
        self.fault_oracle.iter().filter(|p| !p.matches()).collect()
    }

    /// Signaling messages per minute of run time.
    pub fn signaling_rate_per_min(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.signaling.total_messages() as f64 / (self.duration_s / 60.0)
    }
}

/// Detects ping-pong loops in a handover sequence: a loop starts when
/// the client returns to a cell it left within `window_ms`, and
/// extends while the oscillation continues. `per_ho_disruption_ms` is
/// the service interruption each handover costs.
pub fn detect_loops(
    handovers: &[HandoverRecord],
    window_ms: f64,
    per_ho_disruption_ms: f64,
    mut is_policy_conflict: impl FnMut(CellId, CellId) -> bool,
) -> Vec<LoopRecord> {
    let mut loops = Vec::new();
    let mut i = 0usize;
    while i + 1 < handovers.len() {
        // A -> B at i, later back to A: loop seed.
        let a = handovers[i].from;
        let b = handovers[i].to;
        let next = &handovers[i + 1];
        if next.from == b && next.to == a && next.t_ms - handovers[i].t_ms <= window_ms {
            // Extend while bouncing within the pair.
            let start = handovers[i].t_ms;
            let mut count = 2usize;
            let mut j = i + 2;
            let mut last_t = next.t_ms;
            while j < handovers.len() {
                let h = &handovers[j];
                let bounces = (h.from == a && h.to == b) || (h.from == b && h.to == a);
                if bounces && h.t_ms - last_t <= window_ms {
                    count += 1;
                    last_t = h.t_ms;
                    j += 1;
                } else {
                    break;
                }
            }
            loops.push(LoopRecord {
                start_ms: start,
                end_ms: last_t,
                handovers: count,
                intra_freq: handovers[i].intra_freq,
                policy_conflict: is_policy_conflict(a, b),
                disruption_ms: count as f64 * per_ho_disruption_ms,
            });
            i = j;
        } else {
            i += 1;
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ho(t: f64, from: u32, to: u32) -> HandoverRecord {
        HandoverRecord {
            t_ms: t,
            from: CellId(from),
            to: CellId(to),
            intra_freq: true,
            feedback_delay_ms: 100.0,
        }
    }

    #[test]
    fn loop_detection_basic() {
        // 1->2->1->2 within windows: one loop of 3 handovers... then a
        // normal move on.
        let hos = vec![ho(0.0, 1, 2), ho(500.0, 2, 1), ho(900.0, 1, 2), ho(30_000.0, 2, 3)];
        let loops = detect_loops(&hos, 5_000.0, 50.0, |_, _| true);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].handovers, 3);
        assert!((loops[0].disruption_ms - 150.0).abs() < 1e-9);
    }

    #[test]
    fn distant_return_is_not_a_loop() {
        let hos = vec![ho(0.0, 1, 2), ho(60_000.0, 2, 1)];
        assert!(detect_loops(&hos, 5_000.0, 50.0, |_, _| true).is_empty());
    }

    #[test]
    fn separate_loops_counted_separately() {
        let hos = vec![
            ho(0.0, 1, 2),
            ho(400.0, 2, 1),
            ho(100_000.0, 1, 3),
            ho(200_000.0, 3, 4),
            ho(200_300.0, 4, 3),
            ho(200_600.0, 3, 4),
            ho(200_900.0, 4, 3),
        ];
        let loops = detect_loops(&hos, 5_000.0, 50.0, |_, _| true);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].handovers, 2);
        assert_eq!(loops[1].handovers, 4);
    }

    #[test]
    fn ratios_and_intervals() {
        let mut m = RunMetrics { duration_s: 100.0, ..Default::default() };
        m.handovers = vec![ho(0.0, 1, 2), ho(20_000.0, 2, 3), ho(40_000.0, 3, 4)];
        m.failures = vec![FailureRecord {
            t_ms: 10_000.0,
            cause: FailureCause::CommandLoss,
            outage_ms: 1_000.0,
        }];
        assert_eq!(m.total_events(), 4);
        assert!((m.failure_ratio() - 0.25).abs() < 1e-12);
        assert!((m.failure_ratio_by(FailureCause::CommandLoss) - 0.25).abs() < 1e-12);
        assert_eq!(m.failure_ratio_by(FailureCause::MissedCell), 0.0);
        assert!((m.avg_handover_interval_s() - 20.0).abs() < 1e-9);
        assert_eq!(m.outage_intervals_ms(), vec![(10_000.0, 11_000.0)]);
    }

    #[test]
    fn hole_exclusion() {
        let mut m = RunMetrics { duration_s: 10.0, ..Default::default() };
        m.handovers = vec![ho(0.0, 1, 2)];
        m.failures = vec![
            FailureRecord { t_ms: 1.0, cause: FailureCause::CoverageHole, outage_ms: 100.0 },
            FailureRecord { t_ms: 2.0, cause: FailureCause::CommandLoss, outage_ms: 100.0 },
        ];
        assert!((m.failure_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.failure_ratio_no_holes() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = RunMetrics { duration_s: 5.0, ..Default::default() };
        assert_eq!(m.failure_ratio(), 0.0);
        assert_eq!(m.avg_handover_interval_s(), 5.0);
        assert_eq!(m.avg_loop_interval_s(), 5.0);
        assert_eq!(m.avg_handovers_per_loop(), 0.0);
        assert_eq!(m.handovers_in_loops_fraction(), 0.0);
        assert_eq!(m.intra_freq_loop_fraction(), 0.0);
    }

    #[test]
    fn loop_stats() {
        let mut m = RunMetrics { duration_s: 200.0, ..Default::default() };
        m.handovers = (0..10).map(|i| ho(i as f64 * 1000.0, i, i + 1)).collect();
        m.loops = vec![
            LoopRecord { start_ms: 0.0, end_ms: 1.0, handovers: 3, intra_freq: true, policy_conflict: true, disruption_ms: 150.0 },
            LoopRecord { start_ms: 2.0, end_ms: 3.0, handovers: 5, intra_freq: false, policy_conflict: true, disruption_ms: 250.0 },
        ];
        assert!((m.avg_loop_interval_s() - 100.0).abs() < 1e-9);
        assert!((m.avg_handovers_per_loop() - 4.0).abs() < 1e-9);
        assert!((m.intra_freq_loop_fraction() - 0.5).abs() < 1e-9);
        assert!((m.handovers_in_loops_fraction() - 0.8).abs() < 1e-9);
        assert!((m.avg_disruption_per_loop_s() - 0.2).abs() < 1e-9);
    }
}
