//! Multi-client (whole-train) simulation: signaling load at the network.
//!
//! A high-speed train carries hundreds of active clients that cross
//! every cell boundary *together*, so their handover signaling arrives
//! in bursts — and policy-conflict loops multiply that burst (the
//! "signaling storm" of paper §3.2). This module runs one campaign per
//! client (offset along the train), merges the per-client signaling
//! traces on the deterministic event queue, and reports burst
//! statistics.

use crate::run::{simulate_run, RunConfig};
use serde::{Deserialize, Serialize};

/// Result of a whole-train replay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainMetrics {
    /// Clients simulated.
    pub n_clients: usize,
    /// Total signaling messages across clients.
    pub total_messages: usize,
    /// Mean signaling rate (messages/s across the run).
    pub mean_rate_per_s: f64,
    /// Peak signaling rate over any `window_ms` window (messages/s).
    pub peak_rate_per_s: f64,
    /// The burst window used (ms).
    pub window_ms: f64,
    /// Total failures across clients.
    pub failures: usize,
    /// Total handovers across clients.
    pub handovers: usize,
}

/// One client's contribution to a whole-train study: the network-side
/// signaling timestamps (already shifted by the client's car offset)
/// plus its failure/handover counts.
///
/// A `ClientTrial` is a pure function of `(scenario, client index)` and
/// serializes, so the campaign service checkpoints train studies
/// client-by-client and [`TrainScenario::merge_trials`] reproduces the
/// exact [`TrainMetrics`] of an uninterrupted [`TrainScenario::run`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClientTrial {
    /// Signaling event times (ms), car offset applied.
    pub event_t_ms: Vec<f64>,
    /// Failures this client observed.
    pub failures: usize,
    /// Handovers this client performed.
    pub handovers: usize,
    /// This client's replay duration (ms).
    pub duration_ms: f64,
}

/// A whole-train signaling-storm study: `clients` clients spread over
/// `train_len_m` of train, each replaying the base configuration's
/// plane, their signaling merged into network-side burst statistics.
///
/// Builder-style. Defaults mirror the CLI: 8 clients over a 400 m
/// train, a 1 s burst window, all available threads.
///
/// ```
/// use rem_sim::{DatasetSpec, Plane, RunConfig, TrainScenario};
/// let base = RunConfig::new(DatasetSpec::beijing_taiyuan(10.0, 300.0), Plane::Legacy, 5);
/// let metrics = TrainScenario::new(base).with_clients(4).with_threads(1).run();
/// assert_eq!(metrics.n_clients, 4);
/// ```
///
/// Each client's events are time-shifted by its car's offset (the cars
/// cross each boundary `offset / speed` seconds apart), then merged on
/// the event queue.
///
/// Clients are independent trials — client `i` derives its seed from
/// `(base.seed, i)` alone — so they run on `threads` workers
/// (`0` = all available) and merge in canonical client order; the
/// result is bit-identical for every thread count.
#[derive(Clone, Debug)]
pub struct TrainScenario {
    /// Per-client run configuration (plane, dataset, base seed).
    pub base: RunConfig,
    /// Active clients spread over the train.
    pub clients: usize,
    /// Train length (m).
    pub train_len_m: f64,
    /// Burst window (ms).
    pub window_ms: f64,
    /// Worker threads (`0` = all available).
    pub threads: usize,
}

impl TrainScenario {
    /// A train study over `base` with the CLI's defaults.
    pub fn new(base: RunConfig) -> Self {
        Self { base, clients: 8, train_len_m: 400.0, window_ms: 1_000.0, threads: 0 }
    }

    /// Sets the number of clients (must stay > 0).
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Sets the train length (m).
    pub fn with_train_len_m(mut self, train_len_m: f64) -> Self {
        self.train_len_m = train_len_m;
        self
    }

    /// Sets the burst window (ms).
    pub fn with_window_ms(mut self, window_ms: f64) -> Self {
        self.window_ms = window_ms;
        self
    }

    /// Sets the worker thread count (`0` = all available).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replays client `i` (of `self.clients`) and returns its trial:
    /// seed and fault schedule derive from `(base.seed, i)` alone, and
    /// the car offset — clients further back cross each boundary later
    /// — is already applied to the event times. Pure in `(self, i)`.
    pub fn client_trial(&self, i: usize) -> ClientTrial {
        let mut cfg = self.base.clone();
        cfg.record_trace = true;
        // Same environment, different link/measurement randomness —
        // and a distinct fault schedule when injection is enabled.
        cfg.seed = self.base.seed.wrapping_add(1_000_003u64.wrapping_mul(i as u64 + 1));
        cfg.client_id = i as u64;
        let m = simulate_run(&cfg);
        let speed = self.base.spec.speed_ms();
        let offset_ms = if speed > 0.0 {
            (i as f64 / self.clients.max(1) as f64) * self.train_len_m / speed * 1e3
        } else {
            0.0
        };
        ClientTrial {
            event_t_ms: m.trace.events.iter().map(|e| e.t_ms() + offset_ms).collect(),
            failures: m.failures.len(),
            handovers: m.handovers.len(),
            duration_ms: m.duration_s * 1e3,
        }
    }

    /// Merges per-client trials (canonical client order) into the
    /// network-side burst statistics. `trials[i]` must be
    /// `self.client_trial(i)`; the result is then bit-identical to
    /// [`TrainScenario::run`].
    pub fn merge_trials(&self, trials: &[ClientTrial]) -> TrainMetrics {
        let mut failures = 0usize;
        let mut handovers = 0usize;
        let mut duration_ms = 0.0f64;
        let mut times = Vec::with_capacity(trials.iter().map(|t| t.event_t_ms.len()).sum());
        for t in trials {
            failures += t.failures;
            handovers += t.handovers;
            duration_ms = duration_ms.max(t.duration_ms);
            times.extend_from_slice(&t.event_t_ms);
        }

        // Chronological order (equal-time order is irrelevant: only the
        // times enter the window scan), then slide the burst window.
        times.sort_by(f64::total_cmp);
        let total = times.len();
        let mut peak = 0usize;
        let mut lo = 0usize;
        for hi in 0..total {
            while times[hi] - times[lo] > self.window_ms {
                lo += 1;
            }
            peak = peak.max(hi - lo + 1);
        }
        let mean_rate =
            if duration_ms > 0.0 { total as f64 / (duration_ms / 1e3) } else { 0.0 };
        let peak_rate = peak as f64 / (self.window_ms / 1e3);

        TrainMetrics {
            n_clients: trials.len(),
            total_messages: total,
            mean_rate_per_s: mean_rate,
            peak_rate_per_s: peak_rate,
            window_ms: self.window_ms,
            failures,
            handovers,
        }
    }

    /// Runs the study and aggregates the burst statistics.
    ///
    /// # Panics
    /// Panics when `clients` is zero.
    pub fn run(&self) -> TrainMetrics {
        assert!(self.clients > 0);
        let trials = rem_exec::par_map(self.threads, self.clients, |i| self.client_trial(i));
        self.merge_trials(&trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use crate::run::Plane;

    fn base(plane: Plane) -> RunConfig {
        RunConfig::new(DatasetSpec::beijing_taiyuan(10.0, 300.0), plane, 5)
    }

    fn train(plane: Plane, clients: usize) -> TrainScenario {
        TrainScenario::new(base(plane))
            .with_clients(clients)
            .with_train_len_m(200.0)
            .with_window_ms(1_000.0)
            .with_threads(1)
    }

    #[test]
    fn train_aggregates_clients() {
        let one = train(Plane::Legacy, 1).run();
        let four = train(Plane::Legacy, 4).run();
        assert!(four.total_messages > one.total_messages);
        assert!(four.handovers >= one.handovers);
        assert_eq!(four.n_clients, 4);
    }

    #[test]
    fn bursts_exceed_mean_rate() {
        // Clients cross boundaries together: the peak windowed rate is
        // far above the average — the signaling-storm shape.
        let t = train(Plane::Legacy, 6).run();
        assert!(t.peak_rate_per_s > 2.0 * t.mean_rate_per_s, "peak={} mean={}", t.peak_rate_per_s, t.mean_rate_per_s);
    }

    #[test]
    fn deterministic() {
        let s = train(Plane::Rem, 3).with_train_len_m(150.0).with_window_ms(500.0);
        let a = s.run();
        let b = s.run();
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.peak_rate_per_s, b.peak_rate_per_s);
    }

    #[test]
    fn thread_count_invariant() {
        let serial = train(Plane::Legacy, 4).run();
        let parallel = train(Plane::Legacy, 4).with_threads(4).run();
        assert_eq!(serial.total_messages, parallel.total_messages);
        assert_eq!(serial.peak_rate_per_s, parallel.peak_rate_per_s);
        assert_eq!(serial.mean_rate_per_s, parallel.mean_rate_per_s);
        assert_eq!(serial.failures, parallel.failures);
        assert_eq!(serial.handovers, parallel.handovers);
    }

    #[test]
    fn merged_client_trials_match_run_exactly() {
        let s = train(Plane::Legacy, 4);
        let trials: Vec<ClientTrial> = (0..4).map(|i| s.client_trial(i)).collect();
        let merged = s.merge_trials(&trials);
        let direct = s.run();
        assert_eq!(merged.total_messages, direct.total_messages);
        assert_eq!(merged.peak_rate_per_s, direct.peak_rate_per_s);
        assert_eq!(merged.mean_rate_per_s, direct.mean_rate_per_s);
        assert_eq!(merged.failures, direct.failures);
        assert_eq!(merged.handovers, direct.handovers);
        assert_eq!(merged.n_clients, direct.n_clients);
    }

    #[test]
    fn client_trials_are_pure_and_serializable() {
        let s = train(Plane::Rem, 3);
        let a = s.client_trial(1);
        let b = s.client_trial(1);
        assert_eq!(a.event_t_ms, b.event_t_ms, "client trials are pure in (scenario, i)");
        assert_eq!(a.failures, b.failures);
        let json = serde_json::to_string(&a).expect("serialize");
        let back: ClientTrial = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.event_t_ms, a.event_t_ms);
        assert_eq!(back.duration_ms, a.duration_ms);
    }
}
