//! The radio environment: per-cell RSRP/SINR along the trajectory.
//!
//! Received power combines the deterministic rural-macro path loss
//! with per-site correlated log-normal shadowing. The per-cell SINR
//! divides by thermal noise *plus co-channel interference* from every
//! other cell on the same carrier (reuse-1): this is what makes the
//! cell boundary sharp — SINR crosses 0 dB right where the next cell
//! takes over and collapses quickly past it, which is exactly the
//! short execution window that breaks legacy handovers in extreme
//! mobility (§3). Fast fading is applied by the message-level link
//! model, not here — the slow envelope is what measurement reports
//! carry.

use rem_channel::radio::{rural_macro_pl_db, ShadowingTrack};
use rem_mobility::CellId;
use rem_num::SimRng;
use std::collections::HashMap;

use crate::deployment::{BaseStationId, Deployment};

/// Shadowing configuration.
#[derive(Clone, Copy, Debug)]
pub struct ShadowingCfg {
    /// Standard deviation (dB); rural macro is typically 4–8 dB.
    pub sigma_db: f64,
    /// Decorrelation distance (m).
    pub d_corr_m: f64,
}

impl Default for ShadowingCfg {
    fn default() -> Self {
        Self { sigma_db: 4.0, d_corr_m: 100.0 }
    }
}

/// One cell's instantaneous radio state as seen from the client.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellRadio {
    /// The cell.
    pub cell: CellId,
    /// RSRP in dBm.
    pub rsrp_dbm: f64,
    /// SINR in dB (thermal noise + co-channel interference).
    pub snr_db: f64,
}

/// The radio environment along a deployment.
pub struct RadioEnv {
    deployment: Deployment,
    shadowing_cfg: ShadowingCfg,
    // Shadowing is a property of the propagation paths, i.e. of the
    // *site*: co-sited cells share one track (they share the mast).
    tracks: HashMap<BaseStationId, ShadowingTrack>,
    last_pos_m: f64,
    /// Extra attenuation inside coverage holes (dB).
    hole_extra_loss_db: f64,
    noise_figure_db: f64,
}

impl RadioEnv {
    /// Creates an environment over a deployment.
    pub fn new(deployment: Deployment, shadowing_cfg: ShadowingCfg) -> Self {
        Self {
            deployment,
            shadowing_cfg,
            tracks: HashMap::new(),
            last_pos_m: 0.0,
            hole_extra_loss_db: 40.0,
            noise_figure_db: 7.0,
        }
    }

    /// The deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Per-resource-element thermal noise floor (dBm):
    /// `-174 + 10 log10(15 kHz) + NF` (~-125 dBm). RSRP is per-RE, so
    /// the SINR uses the matching per-RE floor; co-channel
    /// interference is added per cell in [`observe`](Self::observe).
    pub fn noise_floor_dbm(&self) -> f64 {
        -174.0 + 10.0 * 15e3f64.log10() + self.noise_figure_db
    }

    /// Advances the client to `pos_m` and returns the radio state of
    /// every cell within `max_range_m` of the client, sorted by
    /// descending RSRP.
    pub fn observe(&mut self, pos_m: f64, max_range_m: f64, rng: &mut SimRng) -> Vec<CellRadio> {
        let delta = (pos_m - self.last_pos_m).abs();
        self.last_pos_m = pos_m;
        let in_hole = self.deployment.in_hole(pos_m);

        let mut out = Vec::new();
        // Borrow split: iterate site/cell data cloned to satisfy the
        // shadowing-track mutation below.
        let sites: Vec<(BaseStationId, f64, f64, Vec<crate::deployment::Cell>)> = self
            .deployment
            .sites
            .iter()
            .filter(|s| (s.along_m - pos_m).abs() <= max_range_m)
            .map(|s| (s.id, s.along_m, s.lateral_m, s.cells.clone()))
            .collect();
        let shadow_cfg = self.shadowing_cfg;
        // First pass: received powers (and each cell's carrier).
        let mut rx: Vec<(CellId, rem_mobility::Earfcn, f64)> = Vec::new();
        for (bs, along, lateral, cells) in sites {
            let dist = ((pos_m - along).powi(2) + lateral.powi(2)).sqrt();
            let track = self
                .tracks
                .entry(bs)
                .or_insert_with(|| ShadowingTrack::new(shadow_cfg.sigma_db, shadow_cfg.d_corr_m));
            let shadow = track.advance(rng, delta);
            for cell in cells {
                let mut rsrp =
                    cell.tx_power_dbm - rural_macro_pl_db(dist, cell.carrier_hz) + shadow;
                if in_hole {
                    rsrp -= self.hole_extra_loss_db;
                }
                rx.push((cell.id, cell.earfcn, rsrp));
            }
        }
        // Second pass: SINR with same-carrier (reuse-1) interference.
        let noise_lin = 10f64.powf(self.noise_floor_dbm() / 10.0);
        for &(id, earfcn, rsrp) in &rx {
            let interference: f64 = rx
                .iter()
                .filter(|&&(oid, oearfcn, _)| oid != id && oearfcn == earfcn)
                .map(|&(_, _, p)| 10f64.powf(p / 10.0))
                .sum();
            let sinr = rsrp - 10.0 * (noise_lin + interference).log10();
            out.push(CellRadio { cell: id, rsrp_dbm: rsrp, snr_db: sinr });
        }
        out.sort_by(|a, b| b.rsrp_dbm.partial_cmp(&a.rsrp_dbm).unwrap());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::DeploymentSpec;
    use rem_num::rng::rng_from_seed;

    fn env() -> RadioEnv {
        let d = DeploymentSpec::hsr_default().generate(&mut rng_from_seed(1));
        RadioEnv::new(d, ShadowingCfg::default())
    }

    #[test]
    fn noise_floor_values() {
        let e = env();
        // Per-RE thermal: -174 + 41.8 + 7 = -125.2 dBm.
        assert!((e.noise_floor_dbm() + 125.2).abs() < 0.1);
    }

    #[test]
    fn observation_sorted_and_plausible() {
        let mut e = env();
        let mut rng = rng_from_seed(2);
        let obs = e.observe(5_000.0, 5_000.0, &mut rng);
        assert!(obs.len() >= 3);
        for w in obs.windows(2) {
            assert!(w[0].rsrp_dbm >= w[1].rsrp_dbm);
        }
        // Best cell should be in the dataset RSRP range (Table 4).
        assert!((-136.0..-59.0).contains(&obs[0].rsrp_dbm), "rsrp={}", obs[0].rsrp_dbm);
    }

    #[test]
    fn nearest_site_usually_strongest() {
        let mut e = env();
        let mut rng = rng_from_seed(3);
        let site_pos = e.deployment().sites[5].along_m;
        let site_id = e.deployment().sites[5].id;
        let obs = e.observe(site_pos, 4_000.0, &mut rng);
        let best_site = e.deployment().site_of(obs[0].cell).unwrap().id;
        // With modest shadowing the serving site is the nearest one
        // (allow the immediate neighbours as shadowing can flip order).
        let diff = (best_site.0 as i64 - site_id.0 as i64).abs();
        assert!(diff <= 1, "best={best_site:?} expected~{site_id:?}");
    }

    #[test]
    fn rsrp_decays_with_distance() {
        let mut e = env();
        let mut rng = rng_from_seed(4);
        let s = e.deployment().sites[10].clone();
        let cell = s.cells[0].id;
        let near = e
            .observe(s.along_m, 8_000.0, &mut rng)
            .into_iter()
            .find(|c| c.cell == cell)
            .unwrap()
            .rsrp_dbm;
        let far = e
            .observe(s.along_m + 3_000.0, 8_000.0, &mut rng)
            .into_iter()
            .find(|c| c.cell == cell)
            .unwrap()
            .rsrp_dbm;
        assert!(near > far + 10.0, "near={near} far={far}");
    }

    #[test]
    fn coverage_hole_suppresses_everything() {
        let mut e = env();
        let mut rng = rng_from_seed(5);
        let Some(h) = e.deployment().holes.first().copied() else {
            return; // this seed produced no holes
        };
        let mid = (h.start_m + h.end_m) / 2.0;
        let inside = e.observe(mid, 4_000.0, &mut rng);
        let outside = e.observe(h.end_m + 2_000.0, 4_000.0, &mut rng);
        if let (Some(i), Some(o)) = (inside.first(), outside.first()) {
            assert!(i.rsrp_dbm < o.rsrp_dbm - 20.0, "in={} out={}", i.rsrp_dbm, o.rsrp_dbm);
        }
    }

    #[test]
    fn sinr_bounded_by_thermal_snr() {
        // Interference can only lower SINR below RSRP - thermal floor.
        let mut e = env();
        let mut rng = rng_from_seed(6);
        let obs = e.observe(10_000.0, 4_000.0, &mut rng);
        let floor = e.noise_floor_dbm();
        for c in obs {
            assert!(c.snr_db <= c.rsrp_dbm - floor + 1e-9);
        }
    }

    #[test]
    fn boundary_sinr_is_near_zero() {
        // Equidistant between two same-carrier sites the serving SINR
        // is interference-limited: close to 0 dB (within shadowing).
        let mut e = env();
        let mut rng = rng_from_seed(7);
        let (a, b) = {
            let d = e.deployment();
            (d.sites[8].along_m, d.sites[9].along_m)
        };
        let mid = (a + b) / 2.0;
        let obs = e.observe(mid, 4_000.0, &mut rng);
        let best = obs[0];
        assert!((-10.0..12.0).contains(&best.snr_db), "sinr={}", best.snr_db);
    }
}
