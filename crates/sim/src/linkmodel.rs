//! Fast per-message signaling error model.
//!
//! The campaign simulator decides tens of thousands of message
//! deliveries per run; running the full coded Monte-Carlo pipeline of
//! `rem-phy` for each would dominate runtime. This model reproduces
//! the pipeline's *behaviour* analytically and is cross-checked
//! against it in tests:
//!
//! * **Fading**: one Rayleigh/Rician power draw per message (a 1 ms
//!   signaling block sits well within one coherence interval at HSR
//!   speeds). OTFS spreads each message over the grid, so it sees the
//!   mean channel, not the draw.
//! * **CSI aging** (OFDM only): pilot-hold equalisation leaves a
//!   residual-error floor `SIR = 3 / (2 pi fd P T)^2` for pilot period
//!   `P` symbols — the mechanism measured in `rem_phy::link`.
//! * **ICI**: the Jakes second-order term, both waveforms.
//! * The resulting effective SINR feeds the calibrated BLER waterfall
//!   of [`rem_phy::link::bler_estimate`].

use rand::Rng;
use rem_channel::doppler::max_doppler_hz;
use rem_channel::noise::ici_relative_power;
use rem_num::rng::complex_gaussian;
use rem_num::stats::{db_to_lin, lin_to_db};
use rem_num::{Complex64, SimRng};
use rem_phy::link::bler_estimate;
use rem_phy::{Modulation, Waveform};
use serde::{Deserialize, Serialize};

/// LTE symbol duration (s) used by the aging/ICI terms.
const T_SYM: f64 = 66.7e-6;
/// Pilot period in symbols for the legacy pilot-hold receiver.
const PILOT_PERIOD: f64 = 4.0;

/// Link-model parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SignalingLinkCfg {
    /// Rician K-factor (dB) of the fading draw; `None` = Rayleigh.
    pub k_factor_db: Option<f64>,
    /// Residual implementation loss of the OTFS receiver (dB).
    pub otfs_loss_db: f64,
    /// Signaling protection gain (dB): control messages ride heavily
    /// protected formats (PDCCH aggregation, very low effective code
    /// rate), reaching several dB below the data waterfall. Applied to
    /// the effective SINR before the BLER lookup.
    pub signaling_gain_db: f64,
}

impl Default for SignalingLinkCfg {
    fn default() -> Self {
        // Trackside HSR links are strongly line-of-sight.
        Self { k_factor_db: Some(8.0), otfs_loss_db: 0.5, signaling_gain_db: 6.0 }
    }
}

/// Draws one fading power gain (linear, unit mean).
fn fade_gain(cfg: &SignalingLinkCfg, rng: &mut SimRng) -> f64 {
    match cfg.k_factor_db {
        None => {
            // Rayleigh: |CN(0,1)|^2 ~ Exp(1).
            complex_gaussian(rng, 1.0).norm_sqr()
        }
        Some(k_db) => {
            let k = db_to_lin(k_db);
            let los = (k / (k + 1.0)).sqrt();
            let nlos = complex_gaussian(rng, 1.0 / (k + 1.0));
            (Complex64::from_real(los) + nlos).norm_sqr()
        }
    }
}

/// Effective post-receiver SINR (dB) of one signaling message.
///
/// Exposed separately from [`message_outcome`] so Fig 2b can histogram
/// the SINR/BLER near failures.
pub fn effective_sinr_db(
    cfg: &SignalingLinkCfg,
    mean_snr_db: f64,
    speed_ms: f64,
    carrier_hz: f64,
    waveform: Waveform,
    rng: &mut SimRng,
) -> f64 {
    let snr = db_to_lin(mean_snr_db);
    let fd = max_doppler_hz(speed_ms, carrier_hz);
    let ici = ici_relative_power(fd, T_SYM);
    let sinr = match waveform {
        Waveform::Ofdm => {
            let faded = snr * fade_gain(cfg, rng);
            // CSI-aging self-interference floor.
            let phase = 2.0 * std::f64::consts::PI * fd * PILOT_PERIOD * T_SYM;
            let aging = if phase > 0.0 { 3.0 / (phase * phase) } else { f64::INFINITY };
            1.0 / (1.0 / faded.max(1e-12) + 1.0 / aging + ici)
        }
        Waveform::Otfs => {
            // Grid-spread: sees the mean channel; small implementation loss.
            let loss = db_to_lin(-cfg.otfs_loss_db);
            1.0 / (1.0 / (snr * loss) + ici)
        }
    };
    lin_to_db(sinr.max(1e-12)) + cfg.signaling_gain_db
}

/// Outcome of one message: `(delivered, effective_sinr_db, bler)`.
pub fn message_outcome(
    cfg: &SignalingLinkCfg,
    mean_snr_db: f64,
    speed_ms: f64,
    carrier_hz: f64,
    waveform: Waveform,
    rng: &mut SimRng,
) -> (bool, f64, f64) {
    let sinr = effective_sinr_db(cfg, mean_snr_db, speed_ms, carrier_hz, waveform, rng);
    let bler = bler_estimate(sinr, Modulation::Qpsk);
    let delivered = rng.gen::<f64>() >= bler;
    (delivered, sinr, bler)
}

/// Delivery attempt with `max_harq` retransmissions (each an
/// independent draw); returns `(delivered, attempts, last_bler)`.
pub fn deliver_with_harq(
    cfg: &SignalingLinkCfg,
    mean_snr_db: f64,
    speed_ms: f64,
    carrier_hz: f64,
    waveform: Waveform,
    max_harq: usize,
    rng: &mut SimRng,
) -> (bool, usize, f64) {
    let mut last_bler = 1.0;
    for attempt in 1..=max_harq.max(1) {
        let (ok, _, bler) = message_outcome(cfg, mean_snr_db, speed_ms, carrier_hz, waveform, rng);
        last_bler = bler;
        if ok {
            return (true, attempt, bler);
        }
    }
    (false, max_harq.max(1), last_bler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_channel::doppler::kmh_to_ms;
    use rem_num::rng::rng_from_seed;

    fn mean_delivery(
        cfg: &SignalingLinkCfg,
        snr: f64,
        speed: f64,
        wf: Waveform,
        seed: u64,
    ) -> f64 {
        let mut rng = rng_from_seed(seed);
        let n = 2000;
        let ok = (0..n)
            .filter(|_| message_outcome(cfg, snr, speed, 2.6e9, wf, &mut rng).0)
            .count();
        ok as f64 / n as f64
    }

    #[test]
    fn high_snr_static_both_reliable() {
        let cfg = SignalingLinkCfg::default();
        for wf in [Waveform::Ofdm, Waveform::Otfs] {
            let p = mean_delivery(&cfg, 20.0, 0.0, wf, 1);
            assert!(p > 0.97, "{wf:?} p={p}");
        }
    }

    #[test]
    fn hsr_speed_degrades_ofdm_not_otfs() {
        // The Fig 10 relationship at the message level, at the SINR
        // regime where handovers execute (cell edge, ~0 dB).
        let cfg = SignalingLinkCfg::default();
        let speed = kmh_to_ms(350.0);
        let p_ofdm = mean_delivery(&cfg, -2.0, speed, Waveform::Ofdm, 2);
        let p_otfs = mean_delivery(&cfg, -2.0, speed, Waveform::Otfs, 2);
        assert!(p_otfs > 0.9, "otfs p={p_otfs}");
        assert!(p_ofdm < p_otfs - 0.1, "ofdm={p_ofdm} otfs={p_otfs}");
    }

    #[test]
    fn static_parity_between_waveforms() {
        // Backward compatibility: no mobility, no penalty worth noting.
        let cfg = SignalingLinkCfg::default();
        let p_ofdm = mean_delivery(&cfg, 8.0, 0.0, Waveform::Ofdm, 3);
        let p_otfs = mean_delivery(&cfg, 8.0, 0.0, Waveform::Otfs, 3);
        assert!((p_ofdm - p_otfs).abs() < 0.15, "ofdm={p_ofdm} otfs={p_otfs}");
    }

    #[test]
    fn delivery_monotone_in_snr() {
        let cfg = SignalingLinkCfg::default();
        let speed = kmh_to_ms(300.0);
        let lo = mean_delivery(&cfg, -5.0, speed, Waveform::Otfs, 4);
        let hi = mean_delivery(&cfg, 15.0, speed, Waveform::Otfs, 4);
        assert!(hi > lo);
    }

    #[test]
    fn aging_floor_dominates_ofdm_at_high_snr_and_speed() {
        // At 350 km/h the pilot-hold aging floor bounds the legacy
        // effective SINR regardless of SNR: delivery at 40 dB is no
        // better than at 15 dB, while a static client is perfect.
        let cfg = SignalingLinkCfg::default();
        let speed = kmh_to_ms(350.0);
        let p40 = mean_delivery(&cfg, 40.0, speed, Waveform::Ofdm, 5);
        let p15 = mean_delivery(&cfg, 15.0, speed, Waveform::Ofdm, 5);
        assert!((p40 - p15).abs() < 0.02, "p40={p40} p15={p15}");
        let p_static = mean_delivery(&cfg, 40.0, 0.0, Waveform::Ofdm, 5);
        assert!(p_static > p40 - 0.01, "static={p_static} hsr={p40}");
    }

    #[test]
    fn harq_improves_delivery() {
        let cfg = SignalingLinkCfg::default();
        let speed = kmh_to_ms(300.0);
        let mut rng = rng_from_seed(6);
        let n = 1500;
        let one = (0..n)
            .filter(|_| {
                deliver_with_harq(&cfg, 3.0, speed, 2.6e9, Waveform::Ofdm, 1, &mut rng).0
            })
            .count();
        let mut rng = rng_from_seed(6);
        let three = (0..n)
            .filter(|_| {
                deliver_with_harq(&cfg, 3.0, speed, 2.6e9, Waveform::Ofdm, 3, &mut rng).0
            })
            .count();
        assert!(three > one, "three={three} one={one}");
    }

    #[test]
    fn rayleigh_vs_rician_severity() {
        // Rayleigh (no LOS) fades deeper: worse delivery at mid SNR.
        let rician = SignalingLinkCfg { k_factor_db: Some(10.0), ..Default::default() };
        let rayleigh = SignalingLinkCfg { k_factor_db: None, ..Default::default() };
        let p_ric = mean_delivery(&rician, 8.0, 10.0, Waveform::Ofdm, 7);
        let p_ray = mean_delivery(&rayleigh, 8.0, 10.0, Waveform::Ofdm, 7);
        assert!(p_ric > p_ray, "rician={p_ric} rayleigh={p_ray}");
    }
}
