//! The mobility-management campaign simulator.
//!
//! Replays a client moving along a synthetic route (dataset spec) under
//! either the legacy 4G/5G signaling plane or REM's delay-Doppler
//! overlay, reproducing the paper's replay methodology (§7): same
//! radio environment, same policies, different mobility machinery.
//!
//! Per measurement epoch (20 ms):
//!
//! 1. advance the client, observe per-cell RSRP/SNR (slow envelope);
//! 2. evaluate measurement events on *stale* observations — the
//!    staleness models the sequential measurement + reporting pipeline
//!    of §3.1 (legacy intra ≈ 160 ms, inter ≈ 640 ms; REM ≈ 40 ms via
//!    cross-band estimation);
//! 3. fired events start a handover attempt: uplink report, decision,
//!    downlink command, attach — each message drawn from the
//!    waveform-dependent link model (OFDM for legacy, OTFS for REM);
//! 4. radio-link failure (serving SINR below `Q_out` for 200 ms) ends
//!    connectivity; the failure is classified with the Table 2 taxonomy
//!    and an outage runs until re-establishment.

use crate::dataset::DatasetSpec;
use crate::deployment::Deployment;
use crate::linkmodel::{deliver_with_harq, effective_sinr_db, SignalingLinkCfg};
use crate::metrics::{detect_loops, FailureRecord, HandoverRecord, RunMetrics};
use crate::radio::{CellRadio, RadioEnv, ShadowingCfg};
use crate::trace::SignalingEvent;
use rem_faults::{FaultConfig, FaultKind, FaultMode, FaultPlan, InjectedFault, OraclePair};
use rem_mobility::events::{EventConfig, EventKind, EventMonitor};
use rem_mobility::x2::target_handle_request;
use rem_mobility::{
    AdmissionControl, CellId, FailureCause, HandoverAttempt, HandoverPreparation, RrcMessage,
    SupervisionTimers, UeId, X2Message,
};
use rem_num::rng::{child_rng, normal};
use rem_num::SimRng;
use rem_phy::link::bler_estimate;
use rem_phy::{Modulation, Waveform};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Which signaling plane drives mobility.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Plane {
    /// Wireless-signal-strength-based 4G/5G (OFDM signaling,
    /// multi-stage policy, sequential measurements).
    Legacy,
    /// REM: delay-Doppler overlay (OTFS signaling, cross-band
    /// estimation, simplified conflict-free A3 policy).
    Rem,
}

/// Which REM components are active (component ablations). Defaults to
/// the full system; switching parts off isolates each mechanism's
/// contribution to the failure reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemAblation {
    /// Delay-Doppler OTFS signaling overlay (§5.1). Off = REM's
    /// policies/feedback ride legacy OFDM signaling.
    pub otfs_signaling: bool,
    /// Cross-band estimation (§5.2). Off = REM measures with legacy
    /// sequential staleness.
    pub crossband_feedback: bool,
}

impl Default for RemAblation {
    fn default() -> Self {
        Self { otfs_signaling: true, crossband_feedback: true }
    }
}

/// One simulation run's configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The dataset (route, radio plan, policy mix, speed).
    pub spec: DatasetSpec,
    /// Signaling plane under test.
    pub plane: Plane,
    /// Master seed (environment stream is shared across planes so both
    /// replay the *same* radio conditions).
    pub seed: u64,
    /// Whether REM clamps negative A3 offsets (Theorem 2 repair).
    /// Fig 15 evaluates failures with this on.
    pub rem_clamp_offsets: bool,
    /// REM component switches (ablation studies).
    pub ablation: RemAblation,
    /// Record the full signaling event trace into
    /// [`RunMetrics::trace`] (off by default: long campaigns produce
    /// large traces).
    pub record_trace: bool,
    /// Link model for signaling messages.
    pub link: SignalingLinkCfg,
    /// Client index within a multi-client campaign. Decorrelates the
    /// per-client fault plans (and nothing else): the `(seed,
    /// client_id)` pair fully determines the injected schedule.
    pub client_id: u64,
    /// Fault-injection configuration; `None` disables injection and
    /// leaves the run on the exact healthy code path.
    pub faults: Option<FaultConfig>,
    /// T310/T304-style supervision deadlines for in-flight attempts.
    pub timers: SupervisionTimers,
    /// RRC re-establishment retry policy after radio link failure.
    pub reestablish: ReestablishCfg,
}

impl RunConfig {
    /// Standard configuration for a spec/plane/seed triple.
    pub fn new(spec: DatasetSpec, plane: Plane, seed: u64) -> Self {
        Self {
            spec,
            plane,
            seed,
            rem_clamp_offsets: true,
            ablation: RemAblation::default(),
            record_trace: false,
            link: SignalingLinkCfg::default(),
            client_id: 0,
            faults: None,
            timers: SupervisionTimers::default(),
            reestablish: ReestablishCfg::default(),
        }
    }
}

/// Bounded-retry RRC re-establishment with exponential backoff.
///
/// After a radio link failure the client scans (cell search + RACH,
/// ~2 s), then attempts re-establishment. A failed
/// attempt (no admissible cell, or an injected blackout) backs off
/// exponentially; once `max_attempts` retries are exhausted the client
/// abandons re-establishment and falls back to a full scan + RRC setup
/// from scratch, resetting the ladder.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReestablishCfg {
    /// Retries before falling back to RRC setup from scratch.
    pub max_attempts: u32,
    /// First retry backoff (ms).
    pub initial_backoff_ms: f64,
    /// Multiplier applied per successive retry.
    pub backoff_factor: f64,
}

impl Default for ReestablishCfg {
    fn default() -> Self {
        Self { max_attempts: 4, initial_backoff_ms: 200.0, backoff_factor: 2.0 }
    }
}

const EPOCH_MS: f64 = 20.0;
const RANGE_M: f64 = 4_000.0;
/// Minimum target SINR to attach (dB).
const ATTACH_MIN_SNR_DB: f64 = -6.0;
/// Q_out: serving SINR below this arms the RLF timer (dB).
const RLF_SNR_DB: f64 = -8.0;
/// RLF timer (ms) — T310-like.
const RLF_TIMER_MS: f64 = 200.0;
/// HARQ attempts per signaling message.
const HARQ_ATTEMPTS: usize = 3;
/// Per-HARQ-attempt airtime (ms).
const HARQ_MS: f64 = 8.0;
/// Serving-cell decision processing (ms).
const DECISION_MS: f64 = 10.0;
/// Random-access + attach time at the target (ms).
const ATTACH_MS: f64 = 30.0;
/// Radio-link-failure recovery time before service resumes: cell
/// scan + RACH + RRC re-establishment + context recovery (ms).
const REESTABLISH_SCAN_MS: f64 = 2_000.0;
/// Ping-pong window (Fig 3 shows 8 handovers within 15 s).
const LOOP_WINDOW_MS: f64 = 15_000.0;
/// Service interruption per handover (ms).
const HO_DISRUPTION_MS: f64 = 100.0;
/// Post-handover measurement settling guard (ms): L3 filtering and
/// re-synchronisation keep the next trigger ~seconds away (Fig 3b
/// shows ping-pong at a ~2 s cadence, not per-TTT).
const POST_HO_GUARD_MS: f64 = 1_500.0;
/// Legacy multi-stage thresholds (Fig 1b).
const A2_THRESH_DBM: f64 = -112.0;
const A1_THRESH_DBM: f64 = -100.0;
const A4_THRESH_DBM: f64 = -110.0;
/// X2 handover-preparation round trip on the backhaul (ms).
const X2_PREP_MS: f64 = 5.0;
/// Serving-cell guard timer on a lost X2 preparation (ms).
const X2_PREP_TIMEOUT_MS: f64 = 120.0;
/// How long after a measurement-masking window closes a missed-cell
/// failure is still attributed to it (the fade + RLF timer lag the
/// blinding that caused them).
const MASK_ATTRIB_SLACK_MS: f64 = 1_000.0;
/// Cross-band estimates outside this envelope (Fig 12's 90% bound) are
/// low-confidence: REM degrades to directly-measured cells only.
const CONF_LIMIT_DB: f64 = 2.0;

#[derive(Clone, Copy, Debug)]
enum UeState {
    Connected {
        serving: CellId,
    },
    /// A handover attempt resolving at `resolve_at_ms`.
    Attempting {
        serving: CellId,
        target: CellId,
        resolve_at_ms: f64,
        outcome: AttemptOutcome,
        feedback_delay_ms: f64,
        /// Typed procedure state, supervised by the T310/T304 timers.
        sm: HandoverAttempt,
        /// The fault class that bit this attempt's messages, if any
        /// (ground truth for the classification oracle).
        injected: Option<FaultKind>,
        /// X2 preparation context at the target, when admitted.
        prep: Option<HandoverPreparation>,
    },
    Outage {
        since_ms: f64,
        cause: FailureCause,
        next_try_ms: f64,
        attempt: u32,
    },
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum AttemptOutcome {
    Success,
    ReportLost,
    /// X2 preparation failed: the command could never be issued.
    PrepFailed,
    CommandLost,
    TargetFaded,
}

/// Runs one campaign and returns its metrics.
pub fn simulate_run(cfg: &RunConfig) -> RunMetrics {
    let spec = &cfg.spec;
    let mut env_rng = child_rng(cfg.seed, "environment");
    let mut link_rng = child_rng(cfg.seed, &format!("link-{:?}", cfg.plane));
    let mut est_rng = child_rng(cfg.seed, "estimation");

    let deployment = spec.deployment.generate(&mut env_rng);
    let mut env = RadioEnv::new(
        deployment.clone(),
        ShadowingCfg { sigma_db: spec.shadow_sigma_db, d_corr_m: spec.shadow_dcorr_m },
    );

    let trajectory = spec.trajectory();
    let duration_ms = spec.duration_s() * 1e3;
    let waveform = match cfg.plane {
        Plane::Legacy => Waveform::Ofdm,
        Plane::Rem if cfg.ablation.otfs_signaling => Waveform::Otfs,
        Plane::Rem => Waveform::Ofdm,
    };
    // Cross-band ablation: REM falls back to legacy measurement
    // staleness when it must measure every band sequentially.
    let rem_staleness = if cfg.ablation.crossband_feedback {
        spec.rem_staleness_ms
    } else {
        spec.intra_staleness_ms.max(spec.inter_staleness_ms)
    };

    // Measurement history for staleness lookups (slots of EPOCH_MS).
    let hist_len = (1_000.0 / EPOCH_MS) as usize + 2;
    let mut history: VecDeque<(f64, HashMap<CellId, CellRadio>)> =
        VecDeque::with_capacity(hist_len);

    // Event-monitor state.
    let mut a3_monitors: HashMap<CellId, EventMonitor> = HashMap::new();
    let mut a4_monitors: HashMap<CellId, EventMonitor> = HashMap::new();
    let mut a2_monitor = EventMonitor::default();
    let mut a1_monitor = EventMonitor::default();
    let mut stage2 = false;
    let mut stage2_since_ms = f64::NAN;

    // REM cross-band estimation error: slowly-varying per-cell AR(1)
    // (the delay-Doppler profile drifts on path-geometry timescales,
    // so the estimation error is correlated over hundreds of ms).
    let mut est_err: HashMap<CellId, f64> = HashMap::new();

    // RLF bookkeeping. The message-failure latch remembers when the
    // last signaling exchange broke, with what cause, and — when an
    // injected fault broke it — the ground-truth fault class for the
    // classification oracle.
    let mut below_since: Option<f64> = None;
    let mut last_msg_failure: Option<(f64, FailureCause, Option<FaultKind>)> = None;
    let mut guard_until_ms = 0.0f64;

    // Rolling BLER window for Fig 2b (5 s).
    let mut bler_window: VecDeque<(f64, f64, f64)> = VecDeque::new();

    let mut metrics = RunMetrics { duration_s: spec.duration_s(), ..Default::default() };

    // The fault schedule is a pure function of (seed, client_id) drawn
    // from its own child_rng streams: it never touches the simulation
    // RNGs above, so campaigns stay bit-identical on any thread count
    // and an unfaulted run is byte-for-byte the pre-injection run.
    let plan = match &cfg.faults {
        Some(fc) => FaultPlan::generate(fc, cfg.seed, cfg.client_id, duration_ms),
        None => FaultPlan::empty(),
    };
    let extra_delay_ms = cfg.faults.as_ref().map_or(0.0, |f| f.extra_delay_ms);

    // X2 endpoint state: one client, so target-side admission control
    // is modeled as a single shared pool, released as attempts resolve.
    let ue = UeId(cfg.client_id as u32);
    let mut admission = AdmissionControl::new(8);
    let mut rach_preamble: u8 = 0;

    // Initial attach.
    let first_obs = env.observe(0.0, RANGE_M, &mut env_rng);
    let mut state = match first_obs.first() {
        Some(best) => {
            if cfg.record_trace {
                metrics.trace.push(SignalingEvent::Attach { t_ms: 0.0, cell: best.cell });
            }
            UeState::Connected { serving: best.cell }
        }
        None => UeState::Outage {
            since_ms: 0.0,
            cause: FailureCause::CoverageHole,
            next_try_ms: REESTABLISH_SCAN_MS,
            attempt: 0,
        },
    };

    let mut t = 0.0f64;
    while t < duration_ms {
        let (pos, speed) = trajectory.state_at(t / 1e3);
        let obs_vec = env.observe(pos, RANGE_M, &mut env_rng);
        let obs: HashMap<CellId, CellRadio> =
            obs_vec.iter().map(|c| (c.cell, *c)).collect();
        history.push_back((t, obs.clone()));
        if history.len() > hist_len {
            history.pop_front();
        }
        let stale = |delay_ms: f64| -> &HashMap<CellId, CellRadio> {
            let cutoff = t - delay_ms;
            history
                .iter()
                .rev()
                .find(|(ht, _)| *ht <= cutoff)
                .map(|(_, m)| m)
                .unwrap_or(&history.front().unwrap().1)
        };

        // An injected blackout: no cell receivable for the window. The
        // environment was still observed above, so the `environment`
        // RNG stream is identical with and without the fault.
        let forced_hole = plan.active(FaultKind::CoverageHole, t).is_some();

        match state {
            UeState::Connected { serving } => {
                let serving_now = obs.get(&serving);
                let serving_cell = deployment.cell(serving);

                // --- BLER window sample (serving link, both directions).
                if let (Some(sr), Some(sc)) = (serving_now, serving_cell) {
                    let ul = bler_estimate(
                        effective_sinr_db(&cfg.link, sr.snr_db, speed, sc.carrier_hz, waveform, &mut link_rng),
                        Modulation::Qpsk,
                    );
                    let dl = bler_estimate(
                        effective_sinr_db(&cfg.link, sr.snr_db, speed, sc.carrier_hz, waveform, &mut link_rng),
                        Modulation::Qpsk,
                    );
                    bler_window.push_back((t, ul, dl));
                    while bler_window.front().is_some_and(|(wt, _, _)| t - wt > 5_000.0) {
                        bler_window.pop_front();
                    }
                }

                // --- RLF detection (an injected blackout reads as no
                // receivable serving signal).
                let snr_now = if forced_hole {
                    -30.0
                } else {
                    serving_now.map(|c| c.snr_db).unwrap_or(-30.0)
                };
                if snr_now < RLF_SNR_DB {
                    if below_since.is_none() {
                        below_since = Some(t);
                    }
                } else {
                    below_since = None;
                }
                if below_since.is_some_and(|b| t - b >= RLF_TIMER_MS) {
                    let missed_possible =
                        missed_cell_possible(&deployment, &obs_vec, serving, stage2, cfg.plane);
                    let cause = classify_rlf(
                        &deployment,
                        pos,
                        &obs_vec,
                        serving,
                        forced_hole,
                        missed_possible,
                        t,
                        last_msg_failure,
                    );
                    // Oracle bookkeeping: when the failure is
                    // attributable to an injected fault, pair the
                    // fault's ground truth with the classification.
                    if let Some(kind) = attribute_failure(
                        &plan,
                        forced_hole,
                        deployment.in_hole(pos),
                        last_msg_failure,
                        missed_possible,
                        t,
                    ) {
                        if matches!(kind, FaultKind::CoverageHole | FaultKind::MaskCell) {
                            metrics.injected.push(InjectedFault {
                                t_ms: t,
                                kind,
                                mode: FaultMode::Drop,
                            });
                        }
                        metrics.fault_oracle.push(OraclePair {
                            t_ms: t,
                            kind,
                            truth: kind.ground_truth(),
                            classified: cause,
                        });
                    }
                    for (_, ul, dl) in &bler_window {
                        metrics.bler_before_failure_ul.push(*ul);
                        metrics.bler_before_failure_dl.push(*dl);
                    }
                    if cfg.record_trace {
                        metrics.trace.push(SignalingEvent::RadioLinkFailure {
                            t_ms: t,
                            serving,
                            cause,
                        });
                    }
                    state = UeState::Outage {
                        since_ms: t,
                        cause,
                        next_try_ms: t + REESTABLISH_SCAN_MS,
                        attempt: 0,
                    };
                    below_since = None;
                    last_msg_failure = None;
                    reset_monitors(&mut a3_monitors, &mut a4_monitors, &mut a2_monitor, &mut a1_monitor, &mut stage2);
                    t += EPOCH_MS;
                    continue;
                }

                // --- Event evaluation on stale measurements (suppressed
                // during the post-handover settling guard, during an
                // injected blackout, and while an injected mask blinds
                // the measurement pipeline).
                let masked = plan.active(FaultKind::MaskCell, t).is_some();
                let stage2_before = stage2;
                let trigger = if t < guard_until_ms || forced_hole || masked {
                    None
                } else {
                    match cfg.plane {
                    Plane::Legacy => evaluate_legacy(
                        spec,
                        &deployment,
                        serving,
                        t,
                        stale(spec.intra_staleness_ms),
                        stale(spec.inter_staleness_ms),
                        &mut a3_monitors,
                        &mut a4_monitors,
                        &mut a2_monitor,
                        &mut a1_monitor,
                        &mut stage2,
                        &mut stage2_since_ms,
                    ),
                    Plane::Rem => evaluate_rem(
                        spec,
                        &deployment,
                        serving,
                        t,
                        stale(rem_staleness),
                        rem_staleness,
                        cfg.rem_clamp_offsets,
                        // Cross-band inputs lost: degrade gracefully to
                        // directly-measured cells (legacy single-cell
                        // handover) rather than trusting stale or
                        // missing estimates.
                        plan.active(FaultKind::DropFeedback, t).is_some(),
                        &mut a3_monitors,
                        &mut est_err,
                        &mut est_rng,
                        &mut metrics.rem_fallback_epochs,
                    ),
                    }
                };

                // Legacy stage transitions cost a reconfiguration
                // message each (A2 -> configure inter-freq, A1 -> tear
                // down).
                if stage2 != stage2_before {
                    metrics.signaling.reconfigs += 1;
                }

                if let Some((target, ttt_ms, staleness_ms)) = trigger {
                    // Run the attempt's message exchanges now; the
                    // resolution lands after the accumulated airtime.
                    let (s_snr, carrier) = match (serving_now, serving_cell) {
                        (Some(sr), Some(sc)) => (sr.snr_db, sc.carrier_hz),
                        _ => (-30.0, 2e9),
                    };
                    // Signaling faults scheduled over this instant. The
                    // channel is always sampled first so the link RNG
                    // stream is unchanged by injection.
                    let feedback_fault = plan.active(FaultKind::DropFeedback, t).map(|f| f.mode);
                    let command_fault = plan.active(FaultKind::DropCommand, t).map(|f| f.mode);
                    let x2_fault = plan.active(FaultKind::DropX2, t).is_some();

                    let (chan_report_ok, report_tries, _) = deliver_with_harq(
                        &cfg.link, s_snr, speed, carrier, waveform, HARQ_ATTEMPTS, &mut link_rng,
                    );
                    let delayed = matches!(feedback_fault, Some(FaultMode::Delay));
                    let report_ok = match feedback_fault {
                        None => chan_report_ok,
                        // Arrives, but far too late (handled below).
                        Some(FaultMode::Delay) => chan_report_ok,
                        Some(FaultMode::Corrupt) => {
                            // The report arrives garbled; the RRC codec
                            // gets the final vote and must reject it.
                            let msg =
                                RrcMessage::MeasurementReport { cells: vec![(target, s_snr)] };
                            let mut raw = msg.encode().to_vec();
                            rem_faults::corrupt(&mut raw);
                            chan_report_ok && RrcMessage::decode(bytes::Bytes::from(raw)).is_some()
                        }
                        Some(FaultMode::Drop) => false,
                    };
                    if let Some(mode) = feedback_fault {
                        metrics.injected.push(InjectedFault {
                            t_ms: t,
                            kind: FaultKind::DropFeedback,
                            mode,
                        });
                    }
                    metrics.signaling.reports += 1;
                    metrics.signaling.harq_transmissions += report_tries;
                    if cfg.record_trace {
                        metrics.trace.push(SignalingEvent::MeasurementReport {
                            t_ms: t,
                            serving,
                            target,
                            delivered: report_ok && !delayed,
                        });
                    }
                    let mut sm = HandoverAttempt::trigger(t);
                    let mut elapsed = report_tries as f64 * HARQ_MS;
                    let mut outcome = AttemptOutcome::ReportLost;
                    let mut injected = feedback_fault.map(|_| FaultKind::DropFeedback);
                    let mut prep: Option<HandoverPreparation> = None;
                    if delayed {
                        // The report is in flight well past the T310
                        // deadline; supervision will kill the attempt.
                        elapsed += extra_delay_ms;
                    } else if report_ok {
                        sm.report_received(t + elapsed).expect("report follows trigger");
                        elapsed += DECISION_MS;
                        // X2 preparation with the target eNB gates the
                        // command (admission + RACH preamble).
                        let (mut p, req) = HandoverPreparation::start(ue, target);
                        metrics.signaling.x2_messages += 1;
                        let prep_ok = if x2_fault {
                            // Request (or its ack) lost on the
                            // backhaul: the serving cell waits out its
                            // preparation guard timer and gives up.
                            elapsed += X2_PREP_TIMEOUT_MS;
                            injected = Some(FaultKind::DropX2);
                            metrics.injected.push(InjectedFault {
                                t_ms: t,
                                kind: FaultKind::DropX2,
                                mode: FaultMode::Drop,
                            });
                            false
                        } else {
                            elapsed += X2_PREP_MS;
                            rach_preamble = rach_preamble.wrapping_add(1);
                            let resp = target_handle_request(&mut admission, &req, rach_preamble)
                                .expect("handover request draws a response");
                            metrics.signaling.x2_messages += 1;
                            p.on_response(&resp).expect("response matches the request");
                            if p.ready_to_command() {
                                prep = Some(p);
                                true
                            } else {
                                // Admission denied by the target.
                                false
                            }
                        };
                        if prep_ok {
                            let (chan_cmd_ok, cmd_tries, _) = deliver_with_harq(
                                &cfg.link, s_snr, speed, carrier, waveform, HARQ_ATTEMPTS,
                                &mut link_rng,
                            );
                            let cmd_ok = match command_fault {
                                None => chan_cmd_ok,
                                Some(FaultMode::Corrupt) => {
                                    let msg = RrcMessage::HandoverCommand { target };
                                    let mut raw = msg.encode().to_vec();
                                    rem_faults::corrupt(&mut raw);
                                    chan_cmd_ok
                                        && RrcMessage::decode(bytes::Bytes::from(raw)).is_some()
                                }
                                Some(_) => false,
                            };
                            if let Some(mode) = command_fault {
                                injected = Some(FaultKind::DropCommand);
                                metrics.injected.push(InjectedFault {
                                    t_ms: t,
                                    kind: FaultKind::DropCommand,
                                    mode,
                                });
                            }
                            metrics.signaling.commands += 1;
                            metrics.signaling.harq_transmissions += cmd_tries;
                            if cfg.record_trace {
                                metrics.trace.push(SignalingEvent::HandoverCommand {
                                    t_ms: t,
                                    serving,
                                    target,
                                    delivered: cmd_ok,
                                });
                            }
                            elapsed += cmd_tries as f64 * HARQ_MS;
                            if cmd_ok {
                                sm.command_received(t + elapsed).expect("command follows report");
                                // The UE obeyed the command: transfer
                                // PDCP state so the target can resume
                                // lossless.
                                if let Some(p) = prep.as_mut() {
                                    let sn = metrics.signaling.commands as u32;
                                    p.send_sn_status(sn, sn).expect("prepared before command");
                                    metrics.signaling.x2_messages += 1;
                                }
                                elapsed += ATTACH_MS;
                                outcome = AttemptOutcome::Success; // target checked at resolve
                            } else {
                                outcome = AttemptOutcome::CommandLost;
                            }
                        } else {
                            outcome = AttemptOutcome::PrepFailed;
                        }
                    }
                    let feedback_delay = staleness_ms + ttt_ms + report_tries as f64 * HARQ_MS;
                    metrics.feedback_delays_ms.push(feedback_delay);
                    state = UeState::Attempting {
                        serving,
                        target,
                        resolve_at_ms: t + elapsed,
                        outcome,
                        feedback_delay_ms: feedback_delay,
                        sm,
                        injected,
                        prep,
                    };
                }
            }

            UeState::Attempting {
                serving,
                target,
                resolve_at_ms,
                outcome,
                feedback_delay_ms,
                sm,
                injected,
                prep,
            } => {
                // RLF can still strike mid-attempt.
                let snr_now = if forced_hole {
                    -30.0
                } else {
                    obs.get(&serving).map(|c| c.snr_db).unwrap_or(-30.0)
                };
                if snr_now < RLF_SNR_DB {
                    if below_since.is_none() {
                        below_since = Some(t);
                    }
                } else {
                    below_since = None;
                }
                let rlf = below_since.is_some_and(|b| t - b >= RLF_TIMER_MS);

                // T310/T304 supervision: a silently in-flight message
                // (the delay-fault manifestation) must not hang the
                // procedure past its deadline.
                let expired =
                    if t < resolve_at_ms && !rlf { cfg.timers.supervise(&sm, t) } else { None };

                if let Some(expiry) = expired {
                    let cause = expiry.cause();
                    let mut sm = sm;
                    sm.fail(t.max(sm.last_event_ms()), cause)
                        .expect("supervised attempt is non-terminal");
                    if prep.is_some() {
                        admission.release();
                    }
                    last_msg_failure = Some((t, cause, injected));
                    state = UeState::Connected { serving };
                    a3_monitors.clear();
                    a4_monitors.clear();
                } else if t >= resolve_at_ms || rlf {
                    let mut outcome = outcome;
                    if rlf && outcome == AttemptOutcome::Success && t < resolve_at_ms {
                        // Lost the link before the procedure finished.
                        outcome = AttemptOutcome::TargetFaded;
                    }
                    // The attempt concludes now; transitions clamp to
                    // the last recorded procedure event because the
                    // exchange was pre-computed at trigger time.
                    let mut sm = sm;
                    let sm_now = t.max(sm.last_event_ms());
                    match outcome {
                        AttemptOutcome::Success => {
                            let target_ok = !forced_hole
                                && obs
                                    .get(&target)
                                    .is_some_and(|c| c.snr_db >= ATTACH_MIN_SNR_DB);
                            if target_ok {
                                sm.complete(sm_now).expect("executing attempt completes");
                                if let Some(mut p) = prep {
                                    // UE arrived: the target releases
                                    // the old serving-side context.
                                    p.on_response(&X2Message::UeContextRelease { ue })
                                        .expect("release follows forwarding");
                                    admission.release();
                                    metrics.signaling.x2_messages += 1;
                                }
                                let from_cell = deployment.cell(serving);
                                let to_cell = deployment.cell(target);
                                let intra = match (from_cell, to_cell) {
                                    (Some(a), Some(b)) => a.earfcn == b.earfcn,
                                    _ => false,
                                };
                                metrics.handovers.push(HandoverRecord {
                                    t_ms: t,
                                    from: serving,
                                    to: target,
                                    intra_freq: intra,
                                    feedback_delay_ms,
                                });
                                if cfg.record_trace {
                                    metrics.trace.push(SignalingEvent::HandoverComplete {
                                        t_ms: t,
                                        from: serving,
                                        to: target,
                                    });
                                }
                                state = UeState::Connected { serving: target };
                                below_since = None;
                                guard_until_ms = t + POST_HO_GUARD_MS;
                                reset_monitors(&mut a3_monitors, &mut a4_monitors, &mut a2_monitor, &mut a1_monitor, &mut stage2);
                            } else {
                                // Too late: the chosen target already faded.
                                sm.fail(sm_now, FailureCause::FeedbackDelayLoss)
                                    .expect("non-terminal attempt fails");
                                if prep.is_some() {
                                    admission.release();
                                }
                                last_msg_failure =
                                    Some((t, FailureCause::FeedbackDelayLoss, injected));
                                state = UeState::Connected { serving };
                                a3_monitors.clear();
                                a4_monitors.clear();
                            }
                        }
                        AttemptOutcome::ReportLost | AttemptOutcome::TargetFaded => {
                            sm.fail(sm_now, FailureCause::FeedbackDelayLoss)
                                .expect("non-terminal attempt fails");
                            if prep.is_some() {
                                admission.release();
                            }
                            last_msg_failure =
                                Some((t, FailureCause::FeedbackDelayLoss, injected));
                            state = UeState::Connected { serving };
                            // The UE keeps reporting: clear the latched
                            // monitors so the trigger can re-fire.
                            a3_monitors.clear();
                            a4_monitors.clear();
                        }
                        AttemptOutcome::PrepFailed | AttemptOutcome::CommandLost => {
                            sm.fail(sm_now, FailureCause::CommandLoss)
                                .expect("non-terminal attempt fails");
                            if prep.is_some() {
                                admission.release();
                            }
                            last_msg_failure = Some((t, FailureCause::CommandLoss, injected));
                            state = UeState::Connected { serving };
                            a3_monitors.clear();
                            a4_monitors.clear();
                        }
                    }
                }
            }

            UeState::Outage { since_ms, cause, next_try_ms, attempt } => {
                if t >= next_try_ms {
                    let blocked = forced_hole || deployment.in_hole(pos);
                    let candidate = if blocked {
                        None
                    } else {
                        obs_vec.iter().find(|c| c.snr_db >= ATTACH_MIN_SNR_DB)
                    };
                    metrics.reestablish_attempts += 1;
                    let tries = attempt + 1;
                    if cfg.record_trace {
                        metrics.trace.push(SignalingEvent::Reestablish {
                            t_ms: t,
                            attempt: tries,
                            success: candidate.is_some(),
                        });
                    }
                    if let Some(best) = candidate {
                        metrics.failures.push(FailureRecord {
                            t_ms: since_ms,
                            cause,
                            outage_ms: t - since_ms,
                        });
                        if cfg.record_trace {
                            metrics.trace.push(SignalingEvent::Attach { t_ms: t, cell: best.cell });
                        }
                        state = UeState::Connected { serving: best.cell };
                        bler_window.clear();
                    } else if tries >= cfg.reestablish.max_attempts {
                        // Retries exhausted: abandon re-establishment
                        // and restart from a full scan + RRC setup,
                        // resetting the backoff ladder.
                        state = UeState::Outage {
                            since_ms,
                            cause,
                            next_try_ms: t + REESTABLISH_SCAN_MS,
                            attempt: 0,
                        };
                    } else {
                        let backoff = cfg.reestablish.initial_backoff_ms
                            * cfg.reestablish.backoff_factor.powi(tries as i32 - 1);
                        state = UeState::Outage {
                            since_ms,
                            cause,
                            next_try_ms: t + backoff,
                            attempt: tries,
                        };
                    }
                }
            }
        }

        t += EPOCH_MS;
    }

    // A run ending inside an outage still records the failure.
    if let UeState::Outage { since_ms, cause, .. } = state {
        metrics.failures.push(FailureRecord { t_ms: since_ms, cause, outage_ms: duration_ms - since_ms });
    }

    // Loop semantics: a bounce is a *policy conflict* when the pair's
    // effective A3 offsets sum below zero (Theorem 2's violated
    // condition); under REM's clamping that sum is always >= 0.
    let clamp = cfg.plane == Plane::Rem && cfg.rem_clamp_offsets;
    metrics.loops = detect_loops(&metrics.handovers, LOOP_WINDOW_MS, HO_DISRUPTION_MS, |a, b| {
        let mut fwd = spec.a3_offset(a, b);
        let mut back = spec.a3_offset(b, a);
        if clamp {
            fwd = fwd.max(0.0);
            back = back.max(0.0);
        }
        fwd + back < 0.0
    });

    rem_obs::metrics::inc("rem_sim_runs_total");
    rem_obs::metrics::add("rem_sim_handovers_total", metrics.handovers.len() as u64);
    rem_obs::metrics::add("rem_sim_failures_total", metrics.failures.len() as u64);
    rem_obs::metrics::add(
        "rem_sim_reestablish_attempts_total",
        metrics.reestablish_attempts as u64,
    );
    rem_obs::trace::emit(
        "sim",
        "run_done",
        &[
            ("plane", format!("{:?}", cfg.plane).into()),
            ("seed", cfg.seed.into()),
            ("handovers", metrics.handovers.len().into()),
            ("failures", metrics.failures.len().into()),
            ("loops", metrics.loops.len().into()),
        ],
    );
    metrics
}

fn reset_monitors(
    a3: &mut HashMap<CellId, EventMonitor>,
    a4: &mut HashMap<CellId, EventMonitor>,
    a2: &mut EventMonitor,
    a1: &mut EventMonitor,
    stage2: &mut bool,
) {
    a3.clear();
    a4.clear();
    a2.reset();
    a1.reset();
    *stage2 = false;
}

/// Whether a viable cell existed on another frequency that legacy
/// stage-1 monitoring never measured (the §3.2 missed-cell condition).
/// Shared by the classifier and the oracle attribution so both reason
/// from the same evidence.
fn missed_cell_possible(
    deployment: &Deployment,
    obs: &[CellRadio],
    serving: CellId,
    stage2: bool,
    plane: Plane,
) -> bool {
    if plane != Plane::Legacy || stage2 {
        return false;
    }
    let serving_earfcn = deployment.cell(serving).map(|c| c.earfcn);
    obs.iter().any(|c| {
        c.snr_db > 0.0
            && deployment.cell(c.cell).map(|cc| Some(cc.earfcn) != serving_earfcn).unwrap_or(false)
    })
}

/// Classifies a radio-link failure per the Table 2 taxonomy.
#[allow(clippy::too_many_arguments)]
fn classify_rlf(
    deployment: &Deployment,
    pos_m: f64,
    obs: &[CellRadio],
    serving: CellId,
    forced_hole: bool,
    missed_possible: bool,
    now_ms: f64,
    last_msg_failure: Option<(f64, FailureCause, Option<FaultKind>)>,
) -> FailureCause {
    if forced_hole || deployment.in_hole(pos_m) {
        return FailureCause::CoverageHole;
    }
    if let Some((ft, cause, _)) = last_msg_failure {
        if now_ms - ft <= 5_000.0 {
            return cause;
        }
    }
    if missed_possible {
        return FailureCause::MissedCell;
    }
    // No in-coverage candidate at all behaves like a hole.
    if !obs.iter().any(|c| c.cell != serving && c.snr_db > ATTACH_MIN_SNR_DB) {
        return FailureCause::CoverageHole;
    }
    FailureCause::FeedbackDelayLoss
}

/// Decides which injected fault (if any) a just-classified failure is
/// attributable to. Mirrors [`classify_rlf`]'s precedence exactly so
/// the oracle only claims failures the classifier reasons about from
/// the same evidence: a genuine (deployment) hole pre-empting an
/// injected message fault is ambiguous and claimed by neither.
fn attribute_failure(
    plan: &FaultPlan,
    forced_hole: bool,
    genuine_hole: bool,
    last_msg_failure: Option<(f64, FailureCause, Option<FaultKind>)>,
    missed_possible: bool,
    now_ms: f64,
) -> Option<FaultKind> {
    if forced_hole {
        return Some(FaultKind::CoverageHole);
    }
    if genuine_hole {
        return None;
    }
    if let Some((ft, _, injected)) = last_msg_failure {
        if now_ms - ft <= 5_000.0 {
            return injected;
        }
    }
    if missed_possible
        && plan.active_within(FaultKind::MaskCell, now_ms, MASK_ATTRIB_SLACK_MS).is_some()
    {
        return Some(FaultKind::MaskCell);
    }
    None
}

/// Legacy event evaluation: intra-frequency A3 per neighbour, A2/A1
/// gated stage 2 with A4 per inter-frequency neighbour. Returns the
/// chosen `(target, ttt, staleness)` when a handover fires.
#[allow(clippy::too_many_arguments)]
fn evaluate_legacy(
    spec: &DatasetSpec,
    deployment: &Deployment,
    serving: CellId,
    t: f64,
    intra_obs: &HashMap<CellId, CellRadio>,
    inter_obs: &HashMap<CellId, CellRadio>,
    a3_monitors: &mut HashMap<CellId, EventMonitor>,
    a4_monitors: &mut HashMap<CellId, EventMonitor>,
    a2_monitor: &mut EventMonitor,
    a1_monitor: &mut EventMonitor,
    stage2: &mut bool,
    stage2_since_ms: &mut f64,
) -> Option<(CellId, f64, f64)> {
    let serving_earfcn = deployment.cell(serving)?.earfcn;
    let serving_rsrp_intra = intra_obs.get(&serving).map(|c| c.rsrp_dbm).unwrap_or(-140.0);
    let serving_rsrp_inter = inter_obs.get(&serving).map(|c| c.rsrp_dbm).unwrap_or(-140.0);

    // Stage gates on (stale) serving RSRP.
    if !*stage2 {
        let a2 = EventConfig {
            kind: EventKind::A2 { thresh: A2_THRESH_DBM },
            ttt_ms: spec.inter_ttt_ms,
            hysteresis_db: 1.0,
        };
        if a2_monitor.observe(&a2, t, serving_rsrp_inter, 0.0) {
            *stage2 = true;
            *stage2_since_ms = t;
            a1_monitor.reset();
        }
    } else {
        let a1 = EventConfig {
            kind: EventKind::A1 { thresh: A1_THRESH_DBM },
            ttt_ms: spec.inter_ttt_ms,
            hysteresis_db: 1.0,
        };
        if a1_monitor.observe(&a1, t, serving_rsrp_inter, 0.0) {
            *stage2 = false;
            a4_monitors.clear();
            a2_monitor.reset();
        }
    }

    let mut best: Option<(f64, CellId, f64, f64)> = None; // (quality, cell, ttt, staleness)

    // Intra-frequency A3.
    for (cell_id, radio) in intra_obs {
        if *cell_id == serving {
            continue;
        }
        let Some(cell) = deployment.cell(*cell_id) else { continue };
        if cell.earfcn != serving_earfcn {
            continue;
        }
        let a3 = EventConfig {
            kind: EventKind::A3 { offset: spec.a3_offset(serving, *cell_id) },
            ttt_ms: spec.intra_ttt_ms,
            hysteresis_db: 1.0,
        };
        let mon = a3_monitors.entry(*cell_id).or_default();
        if mon.observe(&a3, t, serving_rsrp_intra, radio.rsrp_dbm)
            && best.is_none_or(|(q, _, _, _)| radio.rsrp_dbm > q)
        {
            best = Some((radio.rsrp_dbm, *cell_id, spec.intra_ttt_ms, spec.intra_staleness_ms));
        }
    }

    // Inter-frequency A4, stage 2 only (the §3.2 missed-cell mechanism:
    // these cells are simply invisible until the A2 gate opens).
    if *stage2 {
        for (cell_id, radio) in inter_obs {
            if *cell_id == serving {
                continue;
            }
            let Some(cell) = deployment.cell(*cell_id) else { continue };
            if cell.earfcn == serving_earfcn {
                continue;
            }
            let a4 = EventConfig {
                kind: EventKind::A4 { thresh: A4_THRESH_DBM },
                ttt_ms: spec.inter_ttt_ms,
                hysteresis_db: 1.0,
            };
            let mon = a4_monitors.entry(*cell_id).or_default();
            if mon.observe(&a4, t, serving_rsrp_inter, radio.rsrp_dbm)
                && best.is_none_or(|(q, _, _, _)| radio.rsrp_dbm > q)
            {
                best = Some((radio.rsrp_dbm, *cell_id, spec.inter_ttt_ms, spec.inter_staleness_ms));
            }
        }
    }

    best.map(|(_, cell, ttt, stale)| (cell, ttt, stale))
}

/// REM event evaluation: single-stage A3 over delay-Doppler SNR for
/// *every* cell (cross-band estimation covers other frequencies), with
/// Theorem-2-clamped offsets and a short TTT.
///
/// Graceful degradation: when the cross-band inputs were dropped
/// (`degraded`) or an estimate leaves the Fig 12 confidence envelope,
/// the estimated cell is ignored for the epoch and REM behaves like a
/// legacy single-cell handover over directly-measured cells;
/// `fallback_epochs` counts epochs where that happened.
#[allow(clippy::too_many_arguments)]
fn evaluate_rem(
    spec: &DatasetSpec,
    deployment: &Deployment,
    serving: CellId,
    t: f64,
    obs: &HashMap<CellId, CellRadio>,
    staleness_ms: f64,
    clamp_offsets: bool,
    degraded: bool,
    a3_monitors: &mut HashMap<CellId, EventMonitor>,
    est_err: &mut HashMap<CellId, f64>,
    est_rng: &mut SimRng,
    fallback_epochs: &mut usize,
) -> Option<(CellId, f64, f64)> {
    let serving_snr = obs.get(&serving).map(|c| c.snr_db).unwrap_or(-30.0);
    let serving_site = deployment.site_of(serving).map(|s| s.id);
    let rem_ttt = 40.0;
    // AR(1) error evolution: ~300 ms time constant per 20 ms epoch.
    const RHO: f64 = 0.935;

    let mut best: Option<(f64, CellId)> = None;
    let mut fell_back = false;
    for (cell_id, radio) in obs {
        if *cell_id == serving {
            continue;
        }
        let Some(cell) = deployment.cell(*cell_id) else { continue };
        // Cross-band estimated cells (not the per-site representative)
        // carry a small, slowly-varying estimation error (Fig 12:
        // <= 2 dB for 90% of measurements).
        let site = deployment.site_of(*cell_id).map(|s| s.id);
        let representative = deployment
            .site_of(*cell_id)
            .map(|s| s.cells.iter().map(|c| c.id).min().unwrap())
            .unwrap_or(*cell_id);
        let estimated = representative != *cell_id && site != serving_site;
        let quality = if estimated {
            let sigma = spec.rem_estimation_err_db;
            // The AR(1) state always evolves — degradation must not
            // shift the estimation RNG stream.
            let e = est_err.entry(*cell_id).or_insert_with(|| normal(est_rng, 0.0, sigma));
            *e = RHO * *e + (1.0 - RHO * RHO).sqrt() * normal(est_rng, 0.0, sigma);
            if degraded || e.abs() > CONF_LIMIT_DB {
                fell_back = true;
                continue;
            }
            radio.snr_db + *e
        } else {
            radio.snr_db
        };
        let mut offset = spec.a3_offset(serving, *cell_id);
        if clamp_offsets {
            offset = offset.max(0.0);
        }
        let a3 = EventConfig {
            kind: EventKind::A3 { offset },
            ttt_ms: rem_ttt,
            hysteresis_db: 1.0,
        };
        let mon = a3_monitors.entry(*cell_id).or_default();
        if mon.observe(&a3, t, serving_snr, quality)
            && best.is_none_or(|(q, _)| quality > q)
        {
            best = Some((quality, *cell_id));
        }
        let _ = cell;
    }
    if fell_back {
        *fallback_epochs += 1;
    }
    best.map(|(_, cell)| (cell, rem_ttt, staleness_ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(speed: f64) -> DatasetSpec {
        DatasetSpec::beijing_taiyuan(20.0, speed)
    }

    #[test]
    fn legacy_run_produces_handovers() {
        let cfg = RunConfig::new(quick_spec(250.0), Plane::Legacy, 1);
        let m = simulate_run(&cfg);
        assert!(m.handovers.len() >= 5, "handovers={}", m.handovers.len());
        // HSR handover cadence: paper Table 2 reports 11-20 s.
        let iv = m.avg_handover_interval_s();
        assert!((5.0..60.0).contains(&iv), "interval={iv}");
    }

    #[test]
    fn legacy_hsr_has_nonneglible_failures() {
        let cfg = RunConfig::new(quick_spec(300.0), Plane::Legacy, 2);
        let m = simulate_run(&cfg);
        assert!(m.failure_ratio() > 0.01, "ratio={}", m.failure_ratio());
    }

    #[test]
    fn rem_reduces_failures_at_hsr_speed() {
        let spec = quick_spec(300.0);
        let legacy = simulate_run(&RunConfig::new(spec.clone(), Plane::Legacy, 3));
        let rem = simulate_run(&RunConfig::new(spec, Plane::Rem, 3));
        assert!(
            rem.failure_ratio_no_holes() <= legacy.failure_ratio_no_holes(),
            "rem={} legacy={}",
            rem.failure_ratio_no_holes(),
            legacy.failure_ratio_no_holes()
        );
    }

    #[test]
    fn rem_eliminates_conflict_loops() {
        let spec = quick_spec(300.0);
        let rem = simulate_run(&RunConfig::new(spec, Plane::Rem, 4));
        assert_eq!(rem.conflict_loops().count(), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = RunConfig::new(quick_spec(250.0), Plane::Legacy, 5);
        let a = simulate_run(&cfg);
        let b = simulate_run(&cfg);
        assert_eq!(a.handovers, b.handovers);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn feedback_delays_recorded() {
        let cfg = RunConfig::new(quick_spec(250.0), Plane::Legacy, 6);
        let m = simulate_run(&cfg);
        assert!(!m.feedback_delays_ms.is_empty());
        for &d in &m.feedback_delays_ms {
            assert!(d > 0.0 && d < 5_000.0, "delay={d}");
        }
    }

    #[test]
    fn rem_feedback_faster_than_legacy() {
        let spec = quick_spec(300.0);
        let legacy = simulate_run(&RunConfig::new(spec.clone(), Plane::Legacy, 7));
        let rem = simulate_run(&RunConfig::new(spec, Plane::Rem, 7));
        let ml = rem_num::stats::mean(&legacy.feedback_delays_ms);
        let mr = rem_num::stats::mean(&rem.feedback_delays_ms);
        assert!(mr < ml, "rem={mr} legacy={ml}");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use std::collections::HashSet;

    fn faulted_cfg(plane: Plane, seed: u64) -> RunConfig {
        let mut cfg = RunConfig::new(DatasetSpec::beijing_taiyuan(20.0, 300.0), plane, seed);
        cfg.faults = Some(FaultConfig::aggressive());
        cfg
    }

    #[test]
    fn unfaulted_runs_carry_no_fault_artifacts() {
        let m = simulate_run(&RunConfig::new(DatasetSpec::beijing_taiyuan(15.0, 250.0), Plane::Legacy, 1));
        assert!(m.injected.is_empty());
        assert!(m.fault_oracle.is_empty());
        assert_eq!(m.rem_fallback_epochs, 0);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let cfg = faulted_cfg(Plane::Legacy, 11);
        let a = simulate_run(&cfg);
        let b = simulate_run(&cfg);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.handovers, b.handovers);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.fault_oracle, b.fault_oracle);
        assert_eq!(a.reestablish_attempts, b.reestablish_attempts);
    }

    #[test]
    fn client_id_decorrelates_fault_schedules() {
        let cfg = faulted_cfg(Plane::Legacy, 11);
        let mut other = cfg.clone();
        other.client_id = 1;
        let a = simulate_run(&cfg);
        let b = simulate_run(&other);
        assert_ne!(a.injected, b.injected);
    }

    #[test]
    fn injection_provokes_failures() {
        let spec = DatasetSpec::beijing_taiyuan(20.0, 300.0);
        let clean = simulate_run(&RunConfig::new(spec.clone(), Plane::Legacy, 21));
        let mut cfg = RunConfig::new(spec, Plane::Legacy, 21);
        cfg.faults = Some(FaultConfig::aggressive());
        let faulted = simulate_run(&cfg);
        assert!(!faulted.injected.is_empty());
        assert!(
            faulted.failures.len() > clean.failures.len(),
            "faulted={} clean={}",
            faulted.failures.len(),
            clean.failures.len()
        );
    }

    #[test]
    fn oracle_classification_matches_ground_truth() {
        let mut kinds: HashSet<FaultKind> = HashSet::new();
        let mut pairs = 0usize;
        for seed in 1u64..=5 {
            for plane in [Plane::Legacy, Plane::Rem] {
                let m = simulate_run(&faulted_cfg(plane, seed));
                for pair in &m.fault_oracle {
                    assert!(pair.matches(), "{plane:?} seed {seed}: {pair:?}");
                    kinds.insert(pair.kind);
                    pairs += 1;
                }
            }
        }
        assert!(pairs > 0, "no fault was ever held responsible for a failure");
        // Injected blackouts reliably bring the link down.
        assert!(kinds.contains(&FaultKind::CoverageHole), "kinds={kinds:?}");
    }

    #[test]
    fn reestablishment_is_counted_and_traced() {
        let mut cfg = faulted_cfg(Plane::Legacy, 7);
        cfg.record_trace = true;
        let m = simulate_run(&cfg);
        assert!(!m.failures.is_empty());
        // Every mid-run recovery took at least one attempt; only a
        // failure still open at run end may lack one.
        assert!(m.reestablish_attempts >= m.failures.len().saturating_sub(1));
        assert_eq!(m.trace.count("REESTABLISH"), m.reestablish_attempts);
    }

    #[test]
    fn rem_degrades_gracefully_under_feedback_faults() {
        let m = simulate_run(&faulted_cfg(Plane::Rem, 9));
        assert!(m.rem_fallback_epochs > 0, "REM never fell back");
    }

    #[test]
    fn x2_preparation_is_exercised() {
        let m = simulate_run(&RunConfig::new(DatasetSpec::beijing_taiyuan(20.0, 250.0), Plane::Legacy, 1));
        assert!(!m.handovers.is_empty());
        // Request + ack + SN status + context release per completed
        // handover, plus whatever failed attempts spent.
        assert!(m.signaling.x2_messages >= 4 * m.handovers.len());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    #[test]
    fn trace_recording_captures_the_procedure() {
        let spec = DatasetSpec::beijing_taiyuan(15.0, 250.0);
        let mut cfg = RunConfig::new(spec, Plane::Legacy, 1);
        cfg.record_trace = true;
        let m = simulate_run(&cfg);
        assert!(!m.trace.is_empty());
        // Every completed handover appears in the trace.
        assert_eq!(m.trace.count("HO_COMPLETE"), m.handovers.len());
        // Every failure appears as an RLF.
        assert_eq!(m.trace.count("RLF"), m.failures.len());
        // Reports precede commands precede completions.
        assert!(m.trace.count("MEAS_REPORT") >= m.trace.count("HO_COMMAND"));
        assert!(m.trace.count("HO_COMMAND") >= m.trace.count("HO_COMPLETE"));
        // Chronological order.
        for w in m.trace.events.windows(2) {
            assert!(w[1].t_ms() >= w[0].t_ms());
        }
        // JSONL round trip.
        let back = crate::trace::SignalingTrace::from_jsonl(&m.trace.to_jsonl()).unwrap();
        assert_eq!(back.events.len(), m.trace.events.len());
    }

    #[test]
    fn trace_off_by_default() {
        let spec = DatasetSpec::beijing_taiyuan(10.0, 250.0);
        let m = simulate_run(&RunConfig::new(spec, Plane::Legacy, 2));
        assert!(m.trace.is_empty());
    }
}

#[cfg(test)]
mod trajectory_run_tests {
    use super::*;
    use crate::trajectory::SpeedProfile;

    #[test]
    fn station_profile_campaign_runs() {
        let mut spec = DatasetSpec::beijing_taiyuan(25.0, 300.0);
        // 300 km/h at 0.5 m/s^2 needs ~14 km of ramp: stops every 20 km.
        spec.speed_profile = SpeedProfile::Stations {
            stop_every_m: 20_000.0,
            dwell_s: 90.0,
            accel_ms2: 0.5,
        };
        // Stops lengthen the journey.
        let constant = DatasetSpec::beijing_taiyuan(25.0, 300.0);
        assert!(spec.duration_s() > constant.duration_s() + 120.0);

        let m = simulate_run(&RunConfig::new(spec, Plane::Rem, 3));
        assert!(m.handovers.len() >= 5, "handovers={}", m.handovers.len());
        // The run covers the same cells, just over more time.
        assert!(m.duration_s > constant.duration_s());
    }

    #[test]
    fn station_profile_is_deterministic() {
        let mut spec = DatasetSpec::beijing_taiyuan(15.0, 250.0);
        spec.speed_profile = SpeedProfile::Stations {
            stop_every_m: 12_000.0,
            dwell_s: 60.0,
            accel_ms2: 0.5,
        };
        let cfg = RunConfig::new(spec, Plane::Legacy, 9);
        let a = simulate_run(&cfg);
        let b = simulate_run(&cfg);
        assert_eq!(a.handovers, b.handovers);
    }
}
