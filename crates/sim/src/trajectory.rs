//! Client trajectories: constant cruise or station-stop profiles.
//!
//! The paper's Appendix A notes the delay-Doppler channel only drifts
//! when the client *accelerates* — "infrequent in high-speed rails" —
//! and its Table 2 bins journeys by speed. A piecewise
//! accelerate/cruise/brake/dwell profile lets one run sweep through
//! speeds the way a real service does, instead of pinning a synthetic
//! constant speed.

use serde::{Deserialize, Serialize};

/// How the client's speed evolves along the route.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum SpeedProfile {
    /// Constant cruise speed for the whole route.
    #[default]
    Constant,
    /// Station stops: every `stop_every_m` metres the train brakes to a
    /// stop, dwells `dwell_s` seconds, and accelerates back to cruise
    /// at `accel_ms2` (used for both acceleration and braking).
    Stations {
        /// Distance between stops (m).
        stop_every_m: f64,
        /// Dwell time at each stop (s).
        dwell_s: f64,
        /// Acceleration/braking magnitude (m/s²); HSR ~0.5.
        accel_ms2: f64,
    },
}

/// A deterministic position/speed function of time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    cruise_ms: f64,
    profile: SpeedProfile,
}

impl Trajectory {
    /// Creates a trajectory with the given cruise speed (m/s).
    ///
    /// # Panics
    /// Panics on nonpositive cruise speed, or a `Stations` profile
    /// whose inter-stop distance cannot fit the accelerate+brake ramp.
    pub fn new(cruise_ms: f64, profile: SpeedProfile) -> Self {
        assert!(cruise_ms > 0.0, "cruise speed must be positive");
        if let SpeedProfile::Stations { stop_every_m, dwell_s, accel_ms2 } = profile {
            assert!(accel_ms2 > 0.0 && dwell_s >= 0.0);
            let ramp = cruise_ms * cruise_ms / accel_ms2; // accel + brake distance
            assert!(
                stop_every_m > ramp,
                "stops too close for the ramp: need > {ramp} m"
            );
        }
        Self { cruise_ms, profile }
    }

    /// Cruise speed (m/s).
    pub fn cruise_ms(&self) -> f64 {
        self.cruise_ms
    }

    /// `(position_m, speed_ms)` at time `t_s >= 0`.
    pub fn state_at(&self, t_s: f64) -> (f64, f64) {
        match self.profile {
            SpeedProfile::Constant => (self.cruise_ms * t_s, self.cruise_ms),
            SpeedProfile::Stations { stop_every_m, dwell_s, accel_ms2 } => {
                let v = self.cruise_ms;
                let a = accel_ms2;
                let t_ramp = v / a;
                let d_ramp = 0.5 * v * v / a;
                let d_cruise = stop_every_m - 2.0 * d_ramp;
                let t_cruise = d_cruise / v;
                let t_cycle = dwell_s + 2.0 * t_ramp + t_cruise;

                let cycles = (t_s / t_cycle).floor();
                let base = cycles * stop_every_m;
                let mut t = t_s - cycles * t_cycle;

                // Phase 1: dwell at the station.
                if t < dwell_s {
                    return (base, 0.0);
                }
                t -= dwell_s;
                // Phase 2: accelerate.
                if t < t_ramp {
                    return (base + 0.5 * a * t * t, a * t);
                }
                t -= t_ramp;
                // Phase 3: cruise.
                if t < t_cruise {
                    return (base + d_ramp + v * t, v);
                }
                t -= t_cruise;
                // Phase 4: brake.
                let pos = base + d_ramp + d_cruise + v * t - 0.5 * a * t * t;
                (pos, (v - a * t).max(0.0))
            }
        }
    }

    /// Time (s) to reach `route_m`.
    pub fn time_to(&self, route_m: f64) -> f64 {
        match self.profile {
            SpeedProfile::Constant => route_m / self.cruise_ms,
            SpeedProfile::Stations { stop_every_m, dwell_s, accel_ms2 } => {
                let v = self.cruise_ms;
                let t_ramp = v / accel_ms2;
                let d_ramp = 0.5 * v * v / accel_ms2;
                let t_cycle = dwell_s + 2.0 * t_ramp + (stop_every_m - 2.0 * d_ramp) / v;
                let full = (route_m / stop_every_m).floor();
                let rem = route_m - full * stop_every_m;
                // Walk the final partial cycle numerically (it is short).
                let t = full * t_cycle;
                let mut step_t = t;
                while self.state_at(step_t).0 < full * stop_every_m + rem - 0.5 {
                    step_t += 0.5;
                    if step_t - t > 10.0 * t_cycle {
                        break; // safety net
                    }
                }
                step_t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stations() -> Trajectory {
        // 300 km/h cruise, stops every 30 km, 120 s dwell, 0.5 m/s².
        Trajectory::new(83.3, SpeedProfile::Stations {
            stop_every_m: 30_000.0,
            dwell_s: 120.0,
            accel_ms2: 0.5,
        })
    }

    #[test]
    fn constant_profile_is_linear() {
        let tr = Trajectory::new(80.0, SpeedProfile::Constant);
        assert_eq!(tr.state_at(10.0), (800.0, 80.0));
        assert_eq!(tr.time_to(8_000.0), 100.0);
    }

    #[test]
    fn position_is_monotone_and_speed_bounded() {
        let tr = stations();
        let mut prev = -1.0;
        for i in 0..5_000 {
            let (pos, v) = tr.state_at(i as f64);
            assert!(pos >= prev - 1e-9, "t={i}");
            assert!((0.0..=83.3 + 1e-9).contains(&v), "v={v}");
            prev = pos;
        }
    }

    #[test]
    fn dwell_keeps_the_train_still() {
        let tr = stations();
        let (p0, v0) = tr.state_at(0.0);
        let (p1, v1) = tr.state_at(60.0);
        assert_eq!((p0, v0), (0.0, 0.0));
        assert_eq!((p1, v1), (0.0, 0.0));
    }

    #[test]
    fn reaches_cruise_between_stations() {
        let tr = stations();
        // Mid-segment (after dwell 120 s + ramp ~167 s): cruising.
        let (_, v) = tr.state_at(400.0);
        assert!((v - 83.3).abs() < 1e-9);
    }

    #[test]
    fn cycle_repeats_exactly() {
        let tr = stations();
        let v = 83.3;
        let t_cycle = 120.0 + 2.0 * v / 0.5 + (30_000.0 - v * v / 0.5) / v;
        let (p1, s1) = tr.state_at(77.0);
        let (p2, s2) = tr.state_at(77.0 + t_cycle);
        assert!((p2 - p1 - 30_000.0).abs() < 1e-6);
        assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn time_to_accounts_for_stops() {
        let tr = stations();
        let constant = Trajectory::new(83.3, SpeedProfile::Constant);
        let with_stops = tr.time_to(60_000.0);
        let without = constant.time_to(60_000.0);
        assert!(with_stops > without + 200.0, "stops={with_stops} constant={without}");
        // And the position at that time is (approximately) the route end.
        let (pos, _) = tr.state_at(with_stops);
        assert!((pos - 60_000.0).abs() < 100.0, "pos={pos}");
    }

    #[test]
    #[should_panic(expected = "stops too close")]
    fn impossible_profile_rejected() {
        Trajectory::new(100.0, SpeedProfile::Stations {
            stop_every_m: 1_000.0,
            dwell_s: 30.0,
            accel_ms2: 0.5,
        });
    }
}
