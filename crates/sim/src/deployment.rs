//! Rail-line geometry and radio deployment.
//!
//! High-speed-rail coverage is effectively one-dimensional: trackside
//! base stations every 1–3 km at an 80–550 m lateral offset (paper
//! §5.2 cites that geometry), each hosting one to three cells on
//! different carriers — the paper's datasets show 53.4% of cells share
//! a base station with another cell (§3.1). Coverage holes (tunnels,
//! cuttings) appear as marked intervals along the track.

use rand::Rng;
use rem_mobility::{CellId, Earfcn};
use rem_num::SimRng;
use serde::{Deserialize, Serialize};

pub use rem_mobility::policy::BaseStationId;

/// A carrier frequency option in the deployment's spectrum plan.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CarrierPlan {
    /// Channel number.
    pub earfcn: Earfcn,
    /// Carrier frequency in Hz.
    pub carrier_hz: f64,
    /// Bandwidth in MHz (5/10/15/20 in the datasets).
    pub bandwidth_mhz: f64,
}

/// One cell of a base station.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Globally unique id.
    pub id: CellId,
    /// Hosting site.
    pub bs: BaseStationId,
    /// Frequency.
    pub earfcn: Earfcn,
    /// Carrier in Hz.
    pub carrier_hz: f64,
    /// Bandwidth in MHz.
    pub bandwidth_mhz: f64,
    /// Reference-signal EIRP per resource element in dBm.
    pub tx_power_dbm: f64,
}

/// A trackside site.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Site id.
    pub id: BaseStationId,
    /// Position along the track (m).
    pub along_m: f64,
    /// Lateral offset from the track (m).
    pub lateral_m: f64,
    /// Cells hosted here.
    pub cells: Vec<Cell>,
}

/// A no-coverage interval along the track (tunnel, deep cutting).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoverageHole {
    /// Start along the track (m).
    pub start_m: f64,
    /// End along the track (m).
    pub end_m: f64,
}

impl CoverageHole {
    /// Whether the position is inside the hole.
    pub fn contains(&self, x_m: f64) -> bool {
        x_m >= self.start_m && x_m < self.end_m
    }
}

/// The full radio deployment along a route.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// All sites ordered by track position.
    pub sites: Vec<Site>,
    /// Coverage holes.
    pub holes: Vec<CoverageHole>,
    /// Route length (m).
    pub route_m: f64,
}

impl Deployment {
    /// All cells of the deployment.
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.sites.iter().flat_map(|s| s.cells.iter())
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.sites.iter().map(|s| s.cells.len()).sum()
    }

    /// Looks up a cell.
    pub fn cell(&self, id: CellId) -> Option<&Cell> {
        self.cells().find(|c| c.id == id)
    }

    /// Looks up a cell's site.
    pub fn site_of(&self, id: CellId) -> Option<&Site> {
        self.sites.iter().find(|s| s.cells.iter().any(|c| c.id == id))
    }

    /// 2-D distance from track position `x_m` to the site (m).
    pub fn distance_to_site(&self, site: &Site, x_m: f64) -> f64 {
        ((x_m - site.along_m).powi(2) + site.lateral_m.powi(2)).sqrt()
    }

    /// Whether `x_m` sits in a coverage hole.
    pub fn in_hole(&self, x_m: f64) -> bool {
        self.holes.iter().any(|h| h.contains(x_m))
    }

    /// Fraction of cells that share their site with another cell.
    pub fn cosited_fraction(&self) -> f64 {
        let total = self.num_cells();
        if total == 0 {
            return 0.0;
        }
        let cosited: usize =
            self.sites.iter().filter(|s| s.cells.len() > 1).map(|s| s.cells.len()).sum();
        cosited as f64 / total as f64
    }
}

/// Deployment generation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeploymentSpec {
    /// Route length in metres.
    pub route_m: f64,
    /// Mean site spacing along the track (m).
    pub site_spacing_m: f64,
    /// Lateral offset range (m) — the paper cites 80–550 m.
    pub lateral_range_m: (f64, f64),
    /// Spectrum plan; the first entry is the primary rail carrier.
    pub carriers: Vec<CarrierPlan>,
    /// Probability that a site hosts a second (co-sited,
    /// other-frequency) cell — calibrates the 53.4% co-siting stat.
    pub second_cell_prob: f64,
    /// Probability of a third cell given a second.
    pub third_cell_prob: f64,
    /// Reference-signal EIRP per resource element in dBm (RSRP is a
    /// per-RE quantity: a 46 dBm/20 MHz carrier is ~15 dBm per RE).
    pub tx_power_dbm: f64,
    /// Expected number of coverage holes per 100 km.
    pub holes_per_100km: f64,
    /// Hole length range (m).
    pub hole_len_m: (f64, f64),
}

impl DeploymentSpec {
    /// A typical Chinese HSR deployment plan (three LTE carriers).
    pub fn hsr_default() -> Self {
        Self {
            route_m: 200_000.0,
            site_spacing_m: 1_600.0,
            lateral_range_m: (80.0, 550.0),
            carriers: vec![
                CarrierPlan { earfcn: Earfcn(1825), carrier_hz: 1.86e9, bandwidth_mhz: 20.0 },
                CarrierPlan { earfcn: Earfcn(2452), carrier_hz: 2.59e9, bandwidth_mhz: 20.0 },
                CarrierPlan { earfcn: Earfcn(100), carrier_hz: 2.12e9, bandwidth_mhz: 10.0 },
            ],
            second_cell_prob: 0.36,
            third_cell_prob: 0.15,
            tx_power_dbm: 15.0,
            holes_per_100km: 2.0,
            hole_len_m: (300.0, 1_500.0),
        }
    }

    /// Generates a deployment.
    pub fn generate(&self, rng: &mut SimRng) -> Deployment {
        let mut sites = Vec::new();
        let mut next_cell = 0u32;
        let mut next_bs = 0u32;
        let mut along = self.site_spacing_m * 0.5;
        while along < self.route_m {
            let bs = BaseStationId(next_bs);
            next_bs += 1;
            let lateral = rng.gen_range(self.lateral_range_m.0..self.lateral_range_m.1);
            // Primary cell on the rail carrier; optional co-sited cells
            // on the other carriers.
            let mut cells = Vec::new();
            let mut carriers = vec![self.carriers[0]];
            if self.carriers.len() > 1 && rng.gen_bool(self.second_cell_prob) {
                carriers.push(self.carriers[1 + (next_bs as usize % (self.carriers.len() - 1))]);
                if self.carriers.len() > 2 && rng.gen_bool(self.third_cell_prob) {
                    let pick = 1 + ((next_bs as usize + 1) % (self.carriers.len() - 1));
                    if carriers.iter().all(|c| c.earfcn != self.carriers[pick].earfcn) {
                        carriers.push(self.carriers[pick]);
                    }
                }
            }
            for plan in carriers {
                cells.push(Cell {
                    id: CellId(next_cell),
                    bs,
                    earfcn: plan.earfcn,
                    carrier_hz: plan.carrier_hz,
                    bandwidth_mhz: plan.bandwidth_mhz,
                    tx_power_dbm: self.tx_power_dbm,
                });
                next_cell += 1;
            }
            sites.push(Site { id: bs, along_m: along, lateral_m: lateral, cells });
            // Jittered spacing.
            along += self.site_spacing_m * rng.gen_range(0.75..1.25);
        }

        // Coverage holes.
        let expected = self.holes_per_100km * self.route_m / 100_000.0;
        let n_holes = expected.floor() as usize
            + usize::from(rng.gen_bool(expected.fract().clamp(0.0, 1.0)));
        let mut holes = Vec::new();
        for _ in 0..n_holes {
            let len = rng.gen_range(self.hole_len_m.0..self.hole_len_m.1);
            let start = rng.gen_range(0.0..(self.route_m - len).max(1.0));
            holes.push(CoverageHole { start_m: start, end_m: start + len });
        }
        holes.sort_by(|a, b| a.start_m.partial_cmp(&b.start_m).unwrap());

        Deployment { sites, holes, route_m: self.route_m }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    fn gen() -> Deployment {
        DeploymentSpec::hsr_default().generate(&mut rng_from_seed(1))
    }

    #[test]
    fn sites_span_route_in_order() {
        let d = gen();
        assert!(d.sites.len() > 100, "sites={}", d.sites.len());
        for w in d.sites.windows(2) {
            assert!(w[1].along_m > w[0].along_m);
        }
        assert!(d.sites.last().unwrap().along_m <= d.route_m);
    }

    #[test]
    fn unique_cell_ids() {
        let d = gen();
        let mut ids: Vec<u32> = d.cells().map(|c| c.id.0).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn cosited_fraction_matches_paper_ballpark() {
        // Paper §3.1: 53.4% of cells share a base station.
        let d = gen();
        let f = d.cosited_fraction();
        assert!((0.4..0.8).contains(&f), "cosited={f}");
    }

    #[test]
    fn lateral_offsets_in_range() {
        let d = gen();
        for s in &d.sites {
            assert!((80.0..550.0).contains(&s.lateral_m));
        }
    }

    #[test]
    fn distance_geometry() {
        let d = gen();
        let s = &d.sites[0];
        let at_site = d.distance_to_site(s, s.along_m);
        assert!((at_site - s.lateral_m).abs() < 1e-9);
        let away = d.distance_to_site(s, s.along_m + 1000.0);
        assert!(away > 1000.0 && away < 1000.0 + s.lateral_m);
    }

    #[test]
    fn holes_inside_route() {
        let d = gen();
        for h in &d.holes {
            assert!(h.start_m >= 0.0 && h.end_m <= d.route_m + 1500.0);
            assert!(h.end_m > h.start_m);
        }
        if let Some(h) = d.holes.first() {
            assert!(d.in_hole((h.start_m + h.end_m) / 2.0));
        }
        assert!(!d.in_hole(-1.0));
    }

    #[test]
    fn lookup_functions() {
        let d = gen();
        let c = *d.cells().next().unwrap();
        assert_eq!(d.cell(c.id), Some(&c));
        assert_eq!(d.site_of(c.id).unwrap().id, c.bs);
        assert!(d.cell(CellId(999_999)).is_none());
    }

    #[test]
    fn deterministic_generation() {
        let a = DeploymentSpec::hsr_default().generate(&mut rng_from_seed(9));
        let b = DeploymentSpec::hsr_default().generate(&mut rng_from_seed(9));
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    #[test]
    fn hole_boundaries_are_half_open() {
        let h = CoverageHole { start_m: 100.0, end_m: 200.0 };
        assert!(h.contains(100.0));
        assert!(h.contains(199.999));
        assert!(!h.contains(200.0));
        assert!(!h.contains(99.999));
    }

    #[test]
    fn single_carrier_deployment_has_no_cositing() {
        let spec = DeploymentSpec {
            carriers: vec![DeploymentSpec::hsr_default().carriers[0]],
            ..DeploymentSpec::hsr_default()
        };
        let d = spec.generate(&mut rng_from_seed(1));
        assert_eq!(d.cosited_fraction(), 0.0);
        assert!(d.sites.iter().all(|s| s.cells.len() == 1));
    }

    #[test]
    fn no_holes_when_rate_is_zero() {
        let spec = DeploymentSpec { holes_per_100km: 0.0, ..DeploymentSpec::hsr_default() };
        let d = spec.generate(&mut rng_from_seed(2));
        assert!(d.holes.is_empty());
        assert!(!d.in_hole(5_000.0));
    }
}
