#![warn(missing_docs)]

//! # rem-sim
//!
//! The discrete-event extreme-mobility simulator of the REM
//! reproduction: rail-line radio deployments, correlated-shadowing
//! radio environments, synthetic datasets calibrated to the paper's
//! Table 4, a fast waveform-aware signaling link model, and the
//! campaign runner that replays a client under the legacy 4G/5G plane
//! or REM's delay-Doppler overlay, producing the failure/conflict
//! metrics behind Tables 2/3/5 and Figs 2/3/4/9/15.
//!
//! ```
//! use rem_sim::{DatasetSpec, Plane, RunConfig, simulate_run};
//!
//! let spec = DatasetSpec::beijing_taiyuan(10.0, 300.0);
//! let legacy = simulate_run(&RunConfig::new(spec.clone(), Plane::Legacy, 7));
//! let rem = simulate_run(&RunConfig::new(spec, Plane::Rem, 7));
//! assert!(!legacy.handovers.is_empty());
//! assert!(rem.failure_ratio() <= legacy.failure_ratio());
//! ```

pub mod dataset;
pub mod deployment;
pub mod engine;
pub mod error;
pub mod linkmodel;
pub mod metrics;
pub mod predict;
pub mod radio;
pub mod run;
pub mod trace;
pub mod trajectory;
pub mod train;

pub use dataset::DatasetSpec;
pub use deployment::{Deployment, DeploymentSpec};
pub use error::ParseError;
pub use metrics::{FailureRecord, HandoverRecord, LoopRecord, RunMetrics, SignalingCounts};
pub use predict::TrajectoryFilter;
pub use radio::{RadioEnv, ShadowingCfg};
pub use rem_faults::{FaultConfig, FaultKind, FaultMode, FaultPlan, InjectedFault, OraclePair};
pub use run::{simulate_run, Plane, ReestablishCfg, RunConfig};
pub use trace::{SignalingEvent, SignalingTrace};
pub use train::{ClientTrial, TrainMetrics, TrainScenario};
pub use trajectory::{SpeedProfile, Trajectory};
