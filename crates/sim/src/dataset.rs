//! Synthetic dataset specifications calibrated to the paper's Table 4.
//!
//! The paper evaluates on two Chinese HSR datasets (Beijing–Taiyuan,
//! fine-grained; Beijing–Shanghai, coarse-grained) and a Los Angeles
//! driving dataset. Those traces are proprietary; these specs generate
//! synthetic routes whose *statistics* match Table 4 (route length,
//! cell/site counts, carrier plan, RSRP/SNR ranges, policy mix) so the
//! legacy pipeline reproduces Table 2/3 and REM is evaluated on the
//! same replays (DESIGN.md §1 documents the substitution).

use crate::deployment::{CarrierPlan, DeploymentSpec};
use crate::error::ParseError;
use crate::trajectory::{SpeedProfile, Trajectory};
use rem_mobility::Earfcn;
use serde::{Deserialize, Serialize};

/// Everything needed to synthesise and replay one dataset at one
/// speed bin.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Display name.
    pub name: String,
    /// Radio deployment plan.
    pub deployment: DeploymentSpec,
    /// Client cruise speed for the run (km/h, the bin midpoint).
    pub speed_kmh: f64,
    /// Speed profile over the route (constant cruise by default).
    #[serde(default)]
    pub speed_profile: SpeedProfile,
    /// Fraction of neighbour relations configured *proactively*
    /// (negative A3 offset) — the operators' failure-mitigation
    /// practice that amplifies conflicts (§3.2).
    pub proactive_prob: f64,
    /// The proactive offset (dB), e.g. -3.
    pub proactive_offset_db: f64,
    /// The conservative offset (dB), e.g. +3.
    pub normal_offset_db: f64,
    /// Intra-frequency time-to-trigger (ms): operators use 40–80.
    pub intra_ttt_ms: f64,
    /// Inter-frequency time-to-trigger (ms): 128–640.
    pub inter_ttt_ms: f64,
    /// Measurement staleness for intra-frequency feedback (ms).
    pub intra_staleness_ms: f64,
    /// Measurement staleness for inter-frequency feedback (ms):
    /// the sequential multi-band measurement of Fig 2a.
    pub inter_staleness_ms: f64,
    /// REM's measurement staleness (one cell per site + cross-band).
    pub rem_staleness_ms: f64,
    /// Cross-band estimation error std (dB) applied to REM's derived
    /// cells (Fig 12: <=2 dB for 90%).
    pub rem_estimation_err_db: f64,
    /// Shadowing sigma (dB).
    pub shadow_sigma_db: f64,
    /// Shadowing decorrelation distance (m).
    pub shadow_dcorr_m: f64,
}

impl DatasetSpec {
    /// Beijing–Taiyuan-like fine-grained HSR dataset (Table 4: 1136 km,
    /// 200–300 km/h, ~1.5 cells/site). `route_km` trims the route for
    /// faster runs; speed defaults to the 250 km/h bin midpoint.
    pub fn beijing_taiyuan(route_km: f64, speed_kmh: f64) -> Self {
        Self {
            name: "Beijing-Taiyuan".into(),
            deployment: DeploymentSpec { route_m: route_km * 1e3, ..DeploymentSpec::hsr_default() },
            speed_kmh,
            speed_profile: SpeedProfile::default(),
            proactive_prob: 0.06,
            proactive_offset_db: -3.0,
            normal_offset_db: 2.0,
            intra_ttt_ms: 80.0,
            inter_ttt_ms: 320.0,
            intra_staleness_ms: 160.0,
            inter_staleness_ms: 640.0,
            rem_staleness_ms: 40.0,
            rem_estimation_err_db: 0.8,
            shadow_sigma_db: 3.0,
            shadow_dcorr_m: 120.0,
        }
    }

    /// Beijing–Shanghai-like coarse-grained HSR dataset (Table 4:
    /// 200–350 km/h, denser conflicts).
    pub fn beijing_shanghai(route_km: f64, speed_kmh: f64) -> Self {
        Self {
            name: "Beijing-Shanghai".into(),
            deployment: DeploymentSpec {
                route_m: route_km * 1e3,
                site_spacing_m: 1_300.0,
                carriers: vec![
                    CarrierPlan { earfcn: Earfcn(1850), carrier_hz: 1.88e9, bandwidth_mhz: 20.0 },
                    CarrierPlan { earfcn: Earfcn(2452), carrier_hz: 2.66e9, bandwidth_mhz: 20.0 },
                    CarrierPlan { earfcn: Earfcn(450), carrier_hz: 2.12e9, bandwidth_mhz: 15.0 },
                ],
                ..DeploymentSpec::hsr_default()
            },
            speed_kmh,
            speed_profile: SpeedProfile::default(),
            proactive_prob: 0.09,
            proactive_offset_db: -3.0,
            normal_offset_db: 2.0,
            intra_ttt_ms: 64.0,
            inter_ttt_ms: 256.0,
            intra_staleness_ms: 160.0,
            inter_staleness_ms: 640.0,
            rem_staleness_ms: 40.0,
            rem_estimation_err_db: 0.8,
            shadow_sigma_db: 3.5,
            shadow_dcorr_m: 110.0,
        }
    }

    /// Los-Angeles-like low-mobility driving dataset (Table 4: 619 km,
    /// 0–100 km/h, urban macro spacing).
    pub fn la_driving(route_km: f64, speed_kmh: f64) -> Self {
        Self {
            name: "LA-driving".into(),
            deployment: DeploymentSpec {
                route_m: route_km * 1e3,
                site_spacing_m: 1_200.0,
                lateral_range_m: (120.0, 450.0),
                carriers: vec![
                    CarrierPlan { earfcn: Earfcn(5780), carrier_hz: 0.7315e9, bandwidth_mhz: 10.0 },
                    CarrierPlan { earfcn: Earfcn(2000), carrier_hz: 2.1e9, bandwidth_mhz: 20.0 },
                    CarrierPlan { earfcn: Earfcn(950), carrier_hz: 1.9e9, bandwidth_mhz: 10.0 },
                ],
                holes_per_100km: 1.0,
                ..DeploymentSpec::hsr_default()
            },
            speed_kmh,
            speed_profile: SpeedProfile::default(),
            // Low mobility: operators have no reason for proactive
            // offsets; residual conflicts are inter-frequency load
            // balancing (Table 2: 100% inter-frequency loops).
            proactive_prob: 0.012,
            proactive_offset_db: -2.0,
            normal_offset_db: 2.0,
            intra_ttt_ms: 160.0,
            inter_ttt_ms: 640.0,
            intra_staleness_ms: 200.0,
            inter_staleness_ms: 800.0,
            rem_staleness_ms: 40.0,
            rem_estimation_err_db: 0.6,
            shadow_sigma_db: 4.0,
            shadow_dcorr_m: 90.0,
        }
    }

    /// A 5G-like dense small-cell deployment (§3.4: "5G adopts small
    /// dense cells under high carrier frequency, which incurs more
    /// frequent handovers that are more prone to Doppler shifts and
    /// failures"): 500 m site spacing on a 3.5 GHz carrier plus a
    /// 2.1 GHz coverage layer.
    pub fn nr_smallcell(route_km: f64, speed_kmh: f64) -> Self {
        Self {
            name: "5G-smallcell".into(),
            deployment: DeploymentSpec {
                route_m: route_km * 1e3,
                site_spacing_m: 500.0,
                lateral_range_m: (30.0, 200.0),
                carriers: vec![
                    CarrierPlan { earfcn: Earfcn(630_000), carrier_hz: 3.5e9, bandwidth_mhz: 20.0 },
                    CarrierPlan { earfcn: Earfcn(2000), carrier_hz: 2.1e9, bandwidth_mhz: 20.0 },
                ],
                second_cell_prob: 0.3,
                third_cell_prob: 0.0,
                holes_per_100km: 2.0,
                ..DeploymentSpec::hsr_default()
            },
            speed_kmh,
            speed_profile: SpeedProfile::default(),
            proactive_prob: 0.06,
            proactive_offset_db: -3.0,
            normal_offset_db: 2.0,
            intra_ttt_ms: 64.0,
            inter_ttt_ms: 256.0,
            intra_staleness_ms: 160.0,
            inter_staleness_ms: 640.0,
            rem_staleness_ms: 40.0,
            rem_estimation_err_db: 0.8,
            shadow_sigma_db: 3.5,
            shadow_dcorr_m: 60.0,
        }
    }

    /// Parses a spec from a JSON document and validates it. Malformed
    /// or physically meaningless input yields a typed [`ParseError`]
    /// instead of surfacing later as a panic deep in the simulator.
    pub fn from_json(s: &str) -> Result<Self, ParseError> {
        let spec: DatasetSpec = serde_json::from_str(s)
            .map_err(|err| ParseError::Json { line: err.line(), reason: err.to_string() })?;
        spec.validate().map_err(|reason| ParseError::Invalid {
            context: format!("dataset spec \"{}\"", spec.name),
            reason,
        })?;
        Ok(spec)
    }

    /// Loads and validates a spec from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<Self, ParseError> {
        let s = std::fs::read_to_string(path).map_err(|err| ParseError::Io {
            path: path.display().to_string(),
            reason: err.to_string(),
        })?;
        Self::from_json(&s)
    }

    /// Checks the spec's structural invariants; returns the first
    /// violation as a human-readable reason.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("name must be non-empty".into());
        }
        let d = &self.deployment;
        for (field, v) in [
            ("deployment.route_m", d.route_m),
            ("deployment.site_spacing_m", d.site_spacing_m),
            ("speed_kmh", self.speed_kmh),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{field} must be finite and > 0, got {v}"));
            }
        }
        if d.carriers.is_empty() {
            return Err("deployment.carriers must list at least one carrier".into());
        }
        for (i, c) in d.carriers.iter().enumerate() {
            if !c.carrier_hz.is_finite() || c.carrier_hz <= 0.0 {
                return Err(format!("carriers[{i}].carrier_hz must be > 0, got {}", c.carrier_hz));
            }
            if !c.bandwidth_mhz.is_finite() || c.bandwidth_mhz <= 0.0 {
                return Err(format!(
                    "carriers[{i}].bandwidth_mhz must be > 0, got {}",
                    c.bandwidth_mhz
                ));
            }
        }
        for (field, p) in [
            ("proactive_prob", self.proactive_prob),
            ("deployment.second_cell_prob", d.second_cell_prob),
            ("deployment.third_cell_prob", d.third_cell_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{field} must be in [0, 1], got {p}"));
            }
        }
        for (field, v) in [
            ("intra_ttt_ms", self.intra_ttt_ms),
            ("inter_ttt_ms", self.inter_ttt_ms),
            ("intra_staleness_ms", self.intra_staleness_ms),
            ("inter_staleness_ms", self.inter_staleness_ms),
            ("rem_staleness_ms", self.rem_staleness_ms),
            ("rem_estimation_err_db", self.rem_estimation_err_db),
            ("shadow_sigma_db", self.shadow_sigma_db),
            ("deployment.holes_per_100km", d.holes_per_100km),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{field} must be finite and >= 0, got {v}"));
            }
        }
        if !self.shadow_dcorr_m.is_finite() || self.shadow_dcorr_m <= 0.0 {
            return Err(format!(
                "shadow_dcorr_m must be finite and > 0, got {}",
                self.shadow_dcorr_m
            ));
        }
        if d.lateral_range_m.0 > d.lateral_range_m.1 {
            return Err(format!(
                "deployment.lateral_range_m must be a non-empty range, got ({}, {})",
                d.lateral_range_m.0, d.lateral_range_m.1
            ));
        }
        if d.hole_len_m.0 > d.hole_len_m.1 || d.hole_len_m.0 < 0.0 {
            return Err(format!(
                "deployment.hole_len_m must be a non-negative range, got ({}, {})",
                d.hole_len_m.0, d.hole_len_m.1
            ));
        }
        Ok(())
    }

    /// Client cruise speed in m/s.
    pub fn speed_ms(&self) -> f64 {
        self.speed_kmh / 3.6
    }

    /// The trajectory implied by the cruise speed and profile.
    pub fn trajectory(&self) -> Trajectory {
        Trajectory::new(self.speed_ms(), self.speed_profile)
    }

    /// Run duration implied by route length, speed and profile (s).
    pub fn duration_s(&self) -> f64 {
        self.trajectory().time_to(self.deployment.route_m)
    }

    /// Deterministic per-neighbour-relation A3 offset: a hash of the
    /// ordered cell pair decides whether this relation got a proactive
    /// (negative) or conservative offset. Stable across runs so the
    /// same conflicts recur at the same places — like a real config.
    pub fn a3_offset(&self, from: rem_mobility::CellId, to: rem_mobility::CellId) -> f64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for v in [from.0 as u64, to.0 as u64] {
            h ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = h.rotate_left(31).wrapping_mul(0x94D0_49BB_1331_11EB);
        }
        // Use an unordered pair bit to make *mutually* proactive pairs
        // (the paper's Fig 4 conflict shape) common among proactive
        // relations: both directions draw from the same coin, with a
        // direction-dependent tweak of the magnitude.
        let mut hp: u64 = 0xA076_1D64_78BD_642F;
        let (lo, hi) = if from.0 < to.0 { (from.0, to.0) } else { (to.0, from.0) };
        for v in [lo as u64, hi as u64] {
            hp ^= v.wrapping_mul(0xE703_7ED1_A0B4_28DB);
            hp = hp.rotate_left(29).wrapping_mul(0x8EBC_6AF0_9C88_C6E3);
        }
        let pair_coin = (hp >> 11) as f64 / (1u64 << 53) as f64;
        if pair_coin < self.proactive_prob {
            // Proactive pair: asymmetric negative offsets (e.g. -3/-1).
            let tweak = ((h >> 17) & 1) as f64; // 0 or 1
            self.proactive_offset_db + if from.0 < to.0 { tweak } else { 2.0 - tweak }
        } else {
            self.normal_offset_db
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_mobility::CellId;

    #[test]
    fn spec_constructors() {
        let bt = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        assert_eq!(bt.deployment.route_m, 50_000.0);
        assert!((bt.speed_ms() - 69.44).abs() < 0.01);
        assert!((bt.duration_s() - 720.0).abs() < 1.0);
        let bs = DatasetSpec::beijing_shanghai(50.0, 325.0);
        assert!(bs.proactive_prob > bt.proactive_prob);
        let la = DatasetSpec::la_driving(50.0, 50.0);
        assert!(la.proactive_prob < 0.1);
    }

    #[test]
    fn a3_offsets_are_deterministic() {
        let s = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        let a = s.a3_offset(CellId(3), CellId(9));
        let b = s.a3_offset(CellId(3), CellId(9));
        assert_eq!(a, b);
    }

    #[test]
    fn proactive_fraction_close_to_spec() {
        let s = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        let mut neg = 0;
        let n = 3000;
        for i in 0..n {
            if s.a3_offset(CellId(i), CellId(i + 1000)) < 0.0 {
                neg += 1;
            }
        }
        let frac = neg as f64 / n as f64;
        assert!((frac - s.proactive_prob).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn proactive_pairs_are_mutual() {
        // When i->j is proactive, j->i must be too (pair coin).
        let s = DatasetSpec::beijing_shanghai(50.0, 325.0);
        for i in 0..500u32 {
            let fwd = s.a3_offset(CellId(i), CellId(i + 7));
            let back = s.a3_offset(CellId(i + 7), CellId(i));
            assert_eq!(fwd < 0.0, back < 0.0, "pair {i}");
            if fwd < 0.0 {
                // Negative sums: a genuine Theorem-2 violation.
                assert!(fwd + back < 0.0);
            }
        }
    }

    #[test]
    fn conservative_offsets_satisfy_theorem2_locally() {
        let s = DatasetSpec::la_driving(50.0, 50.0);
        let fwd = s.a3_offset(CellId(1), CellId(2));
        if fwd > 0.0 {
            assert_eq!(fwd, s.normal_offset_db);
        }
    }

    #[test]
    fn builtin_specs_validate() {
        for s in [
            DatasetSpec::beijing_taiyuan(50.0, 250.0),
            DatasetSpec::beijing_shanghai(50.0, 325.0),
            DatasetSpec::la_driving(50.0, 50.0),
            DatasetSpec::nr_smallcell(20.0, 300.0),
        ] {
            s.validate().unwrap_or_else(|r| panic!("{}: {r}", s.name));
        }
    }

    #[test]
    fn json_round_trip_through_loader() {
        let s = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        let json = serde_json::to_string(&s).unwrap();
        let back = DatasetSpec::from_json(&json).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.deployment.route_m, s.deployment.route_m);
    }

    #[test]
    fn malformed_json_is_a_typed_error_not_a_panic() {
        use crate::error::ParseError;
        match DatasetSpec::from_json("{\"name\": \"x\",") {
            Err(ParseError::Json { .. }) => {}
            other => panic!("expected Json error, got {other:?}"),
        }
        // Well-formed JSON, wrong shape.
        assert!(matches!(
            DatasetSpec::from_json("{\"name\": \"x\"}"),
            Err(ParseError::Json { .. })
        ));
    }

    #[test]
    fn semantically_invalid_specs_are_rejected() {
        let mut s = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        s.speed_kmh = 0.0;
        assert!(s.validate().is_err());

        let mut s = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        s.proactive_prob = 1.5;
        let json = serde_json::to_string(&s).unwrap();
        use crate::error::ParseError;
        assert!(matches!(DatasetSpec::from_json(&json), Err(ParseError::Invalid { .. })));

        let mut s = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        s.deployment.carriers.clear();
        assert!(s.validate().is_err());

        let mut s = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        s.deployment.route_m = f64::NAN;
        assert!(s.validate().is_err());

        let mut s = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        s.intra_ttt_ms = -1.0;
        assert!(s.validate().is_err());

        let mut s = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        s.deployment.lateral_range_m = (500.0, 100.0);
        assert!(s.validate().is_err());

        let mut s = DatasetSpec::beijing_taiyuan(50.0, 250.0);
        s.name = "  ".into();
        assert!(s.validate().is_err());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        use crate::error::ParseError;
        let err = DatasetSpec::load(std::path::Path::new("/nonexistent/spec.json")).unwrap_err();
        assert!(matches!(err, ParseError::Io { .. }));
    }
}

#[cfg(test)]
mod nr_tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    #[test]
    fn smallcell_spec_is_denser() {
        let nr = DatasetSpec::nr_smallcell(20.0, 300.0);
        let lte = DatasetSpec::beijing_shanghai(20.0, 300.0);
        assert!(nr.deployment.site_spacing_m < lte.deployment.site_spacing_m / 2.0);
        assert!(nr.deployment.carriers[0].carrier_hz > 3e9);
        let d = nr.deployment.generate(&mut rng_from_seed(1));
        let d_lte = lte.deployment.generate(&mut rng_from_seed(1));
        assert!(d.sites.len() > 2 * d_lte.sites.len());
    }
}
