//! Movement prediction (paper §10: "predictive client trajectory").
//!
//! REM's core philosophy is that *client movement is more robust and
//! predictable than wireless*. This module makes that concrete with a
//! 1-D constant-velocity Kalman filter along the rail: noisy position
//! fixes in, smoothed position/velocity out, with forward prediction
//! of both the client's position and the per-site Doppler trajectory
//! (via [`rem_channel::doppler::hst_doppler_hz`]) — the ingredients
//! for proactive, movement-driven handover scheduling.

use rem_channel::doppler::hst_doppler_hz;
use serde::{Deserialize, Serialize};

/// A 1-D constant-velocity Kalman filter over (position, velocity).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrajectoryFilter {
    /// State estimate: position (m), velocity (m/s).
    x: [f64; 2],
    /// State covariance (2x2, row major).
    p: [[f64; 2]; 2],
    /// Process noise: acceleration spectral density ((m/s^2)^2).
    q_accel: f64,
    /// Measurement noise variance (m^2).
    r_pos: f64,
    initialized: bool,
}

impl TrajectoryFilter {
    /// Creates a filter.
    ///
    /// * `q_accel` — how much unmodelled acceleration to allow; trains
    ///   hold speed well, so ~0.1 (m/s²)² is typical.
    /// * `r_pos` — position-fix noise variance (GNSS-grade: ~25 m²).
    pub fn new(q_accel: f64, r_pos: f64) -> Self {
        Self {
            x: [0.0, 0.0],
            p: [[1e6, 0.0], [0.0, 1e4]],
            q_accel,
            r_pos,
            initialized: false,
        }
    }

    /// Current position estimate (m).
    pub fn position_m(&self) -> f64 {
        self.x[0]
    }

    /// Current velocity estimate (m/s).
    pub fn velocity_ms(&self) -> f64 {
        self.x[1]
    }

    /// Position uncertainty (standard deviation, m).
    pub fn position_std_m(&self) -> f64 {
        self.p[0][0].max(0.0).sqrt()
    }

    /// Advances the state by `dt` seconds and fuses a position fix.
    pub fn step(&mut self, dt_s: f64, measured_pos_m: f64) {
        if !self.initialized {
            self.x = [measured_pos_m, 0.0];
            self.initialized = true;
            return;
        }
        // Predict: x' = F x, P' = F P F^T + Q.
        let (dt, q) = (dt_s, self.q_accel);
        let x0 = self.x[0] + dt * self.x[1];
        let x1 = self.x[1];
        let p = self.p;
        let p00 = p[0][0] + dt * (p[1][0] + p[0][1]) + dt * dt * p[1][1]
            + q * dt.powi(4) / 4.0;
        let p01 = p[0][1] + dt * p[1][1] + q * dt.powi(3) / 2.0;
        let p10 = p[1][0] + dt * p[1][1] + q * dt.powi(3) / 2.0;
        let p11 = p[1][1] + q * dt * dt;

        // Update with z = position.
        let s = p00 + self.r_pos;
        let k0 = p00 / s;
        let k1 = p10 / s;
        let innov = measured_pos_m - x0;
        self.x = [x0 + k0 * innov, x1 + k1 * innov];
        self.p = [
            [(1.0 - k0) * p00, (1.0 - k0) * p01],
            [p10 - k1 * p00, p11 - k1 * p01],
        ];
    }

    /// Predicted position `horizon_s` seconds ahead.
    pub fn predict_position_m(&self, horizon_s: f64) -> f64 {
        self.x[0] + horizon_s * self.x[1]
    }

    /// Predicted Doppler shift from a trackside site `horizon_s`
    /// seconds ahead — movement-based channel prediction.
    pub fn predict_doppler_hz(
        &self,
        horizon_s: f64,
        bs_along_m: f64,
        bs_lateral_m: f64,
        carrier_hz: f64,
    ) -> f64 {
        hst_doppler_hz(
            self.predict_position_m(horizon_s),
            bs_along_m,
            bs_lateral_m,
            self.velocity_ms(),
            carrier_hz,
        )
    }

    /// Predicted time (s from now) until the client passes abeam of a
    /// site (the natural handover point); `None` when receding or
    /// stationary.
    pub fn time_to_site_s(&self, bs_along_m: f64) -> Option<f64> {
        let v = self.velocity_ms();
        if v.abs() < 1e-6 {
            return None;
        }
        let t = (bs_along_m - self.position_m()) / v;
        (t >= 0.0).then_some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::rng::{normal, rng_from_seed};

    fn run_filter(true_v: f64, r: f64, steps: usize, seed: u64) -> TrajectoryFilter {
        let mut f = TrajectoryFilter::new(0.1, r * r);
        let mut rng = rng_from_seed(seed);
        let dt = 0.5;
        for i in 0..steps {
            let true_pos = true_v * dt * i as f64;
            f.step(dt, normal(&mut rng, true_pos, r));
        }
        f
    }

    #[test]
    fn converges_to_true_velocity() {
        let f = run_filter(83.3, 5.0, 120, 1); // 300 km/h, 5 m GNSS noise
        assert!((f.velocity_ms() - 83.3).abs() < 1.5, "v={}", f.velocity_ms());
    }

    #[test]
    fn position_tracks_with_bounded_error() {
        let f = run_filter(97.2, 5.0, 200, 2);
        let true_pos = 97.2 * 0.5 * 199.0;
        assert!((f.position_m() - true_pos).abs() < 10.0);
        assert!(f.position_std_m() < 5.0);
    }

    #[test]
    fn prediction_extrapolates_linearly() {
        let f = run_filter(70.0, 3.0, 150, 3);
        let now = f.position_m();
        let ahead = f.predict_position_m(2.0);
        assert!((ahead - now - 2.0 * f.velocity_ms()).abs() < 1e-9);
    }

    #[test]
    fn doppler_prediction_matches_geometry() {
        let f = run_filter(97.2, 4.0, 200, 4);
        // A site 1 km ahead of the predicted position: Doppler near
        // +nu_max; far behind: near -nu_max.
        let pos = f.predict_position_m(1.0);
        let ahead = f.predict_doppler_hz(1.0, pos + 3_000.0, 150.0, 2.6e9);
        let behind = f.predict_doppler_hz(1.0, pos - 3_000.0, 150.0, 2.6e9);
        assert!(ahead > 0.0 && behind < 0.0);
        assert!((ahead + behind).abs() < 0.05 * ahead.abs());
    }

    #[test]
    fn time_to_site_semantics() {
        let f = run_filter(80.0, 3.0, 150, 5);
        let pos = f.position_m();
        let t = f.time_to_site_s(pos + 800.0).unwrap();
        assert!((t - 800.0 / f.velocity_ms()).abs() < 0.1);
        // A site behind (receding): None.
        assert!(f.time_to_site_s(pos - 500.0).is_none());
        // Stationary client: None.
        let idle = TrajectoryFilter::new(0.1, 25.0);
        assert!(idle.time_to_site_s(100.0).is_none());
    }

    #[test]
    fn noisier_fixes_give_wider_uncertainty() {
        let tight = run_filter(80.0, 2.0, 100, 6);
        let loose = run_filter(80.0, 20.0, 100, 6);
        assert!(loose.position_std_m() > tight.position_std_m());
    }
}
