//! Typed errors for loading external inputs (trace dumps, dataset
//! specs).
//!
//! Loaders used to `unwrap()`/propagate raw `serde_json` errors;
//! malformed input must instead surface a structured, recoverable
//! error so batch tooling (CLI, campaign runners) can report the
//! offending file/line and move on.

use std::fmt;

/// Why an external input could not be loaded.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// The file could not be read at all.
    Io {
        /// Path we tried to read.
        path: String,
        /// OS-level reason.
        reason: String,
    },
    /// A line (1-based; 0 when the input is a single document) failed
    /// to deserialise.
    Json {
        /// Offending line within the input.
        line: usize,
        /// Deserialiser message.
        reason: String,
    },
    /// The input deserialised but violates a structural invariant.
    Invalid {
        /// What was being parsed (e.g. a field or file description).
        context: String,
        /// Violated invariant.
        reason: String,
    },
    /// A trace event is timestamped earlier than its predecessor.
    NotChronological {
        /// Offending line (1-based).
        line: usize,
        /// Event timestamp (ms).
        t_ms: f64,
        /// Predecessor timestamp (ms).
        prev_ms: f64,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io { path, reason } => write!(f, "cannot read {path}: {reason}"),
            ParseError::Json { line, reason } => {
                if *line == 0 {
                    write!(f, "malformed JSON: {reason}")
                } else {
                    write!(f, "malformed JSON on line {line}: {reason}")
                }
            }
            ParseError::Invalid { context, reason } => write!(f, "invalid {context}: {reason}"),
            ParseError::NotChronological { line, t_ms, prev_ms } => write!(
                f,
                "trace not chronological on line {line}: t={t_ms} ms after t={prev_ms} ms"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ParseError::Io { path: "x.jsonl".into(), reason: "no such file".into() };
        assert!(e.to_string().contains("x.jsonl"));
        let e = ParseError::Json { line: 3, reason: "expected value".into() };
        assert!(e.to_string().contains("line 3"));
        let e = ParseError::Json { line: 0, reason: "expected value".into() };
        assert!(!e.to_string().contains("line"));
        let e = ParseError::Invalid { context: "dataset spec".into(), reason: "speed".into() };
        assert!(e.to_string().starts_with("invalid dataset spec"));
        let e = ParseError::NotChronological { line: 2, t_ms: 1.0, prev_ms: 5.0 };
        assert!(e.to_string().contains("line 2"));
    }
}
