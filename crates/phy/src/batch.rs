//! Stage-major batched link pipeline.
//!
//! [`LinkBatch`] pushes N independent coded blocks through the link
//! stages in lockstep — encode all, map all, propagate all, demap all,
//! decode all — instead of running each block start-to-finish. Every
//! stage's code and lookup tables stay hot in the i-cache/d-cache
//! across the whole batch, and the per-stage SIMD kernels (FFT
//! butterflies, QAM soft-demap, Viterbi add-compare-select) run
//! back-to-back over uniform work.
//!
//! ## Bit-identity
//!
//! A batch produces *exactly* the outcomes of running
//! [`crate::link::simulate_block_with`] per block, because:
//!
//! * the stages are the same `pub(crate)` functions the per-block path
//!   composes, called in the same order per block;
//! * each [`BatchJob`] carries its own RNG stream (derived from
//!   `(seed, trial index)` upstream), so stage-major execution reorders
//!   draws only *across* independent streams, never within one;
//! * the DSP scratch is a pure cache — plans are functions of length,
//!   buffers are fully overwritten per call.
//!
//! [`crate::link::BlerScenario::outcomes`] chunks its trials through
//! one `LinkBatch` per worker; the `link::tests` suite gates the
//! batched path against the per-trial path bit-for-bit.

use crate::convcode;
use crate::crc::{attach_crc, check_crc};
use crate::dsp::DspScratch;
use crate::interleaver::BlockInterleaver;
use crate::link::{self, BlockOutcome, LinkConfig};
use rem_channel::MultipathChannel;
use rem_num::{CMatrix, SimRng};

/// One block's independent inputs: the channel realization it rides,
/// the payload it carries, and the RNG stream the pipeline draws its
/// noise from (positioned exactly where the per-trial path would have
/// it after realizing the channel and payload).
pub struct BatchJob {
    /// Channel realization for this block.
    pub ch: MultipathChannel,
    /// Information bits (must fit [`LinkConfig::max_payload_bits`]).
    pub payload: Vec<bool>,
    /// The block's private noise stream.
    pub rng: SimRng,
}

/// Reusable stage-major batch driver; see the module docs.
///
/// Holds the staged intermediates between stages so a worker can reuse
/// the allocations across every chunk it processes.
#[derive(Default)]
pub struct LinkBatch {
    meta: Vec<(usize, usize)>,
    tx: Vec<CMatrix>,
    eq: Vec<link::Equalized>,
    dellrs: Vec<Vec<f64>>,
    effs: Vec<f64>,
}

impl LinkBatch {
    /// Creates an empty driver; staging buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs every job through the coded pipeline in stage lockstep and
    /// returns the outcomes in job order. Bit-identical to calling
    /// [`crate::link::simulate_block_with`] on each job in sequence.
    ///
    /// # Panics
    /// Panics if any payload exceeds [`LinkConfig::max_payload_bits`].
    pub fn run(
        &mut self,
        cfg: &LinkConfig,
        snr_db: f64,
        jobs: &mut [BatchJob],
        ws: &mut DspScratch,
    ) -> Vec<BlockOutcome> {
        let _timing = rem_obs::metrics::span("rem_phy_batch_us");
        rem_obs::metrics::add("rem_phy_blocks_total", jobs.len() as u64);
        rem_obs::metrics::observe("rem_phy_batch_size", jobs.len() as u64);
        let cap_bits = cfg.capacity_bits();
        let il = BlockInterleaver::for_len(cap_bits);

        // Stage 1 — encode + map: CRC, convolutional code, pad,
        // interleave, modulate onto the grid.
        self.meta.clear();
        self.tx.clear();
        for job in jobs.iter() {
            assert!(
                job.payload.len() <= cfg.max_payload_bits(),
                "payload exceeds block capacity"
            );
            let block = attach_crc(&job.payload);
            let coded = convcode::encode(&block);
            let coded_len = coded.len();
            let mut padded = coded;
            padded.resize(cap_bits, false);
            self.meta.push((block.len(), coded_len));
            self.tx.push(link::map_block(cfg, &padded, &il));
        }

        // Stage 2 — propagate + equalise, each block on its own RNG.
        self.eq.clear();
        for (job, tx) in jobs.iter_mut().zip(&self.tx) {
            self.eq
                .push(link::propagate_and_equalize(cfg, &job.ch, snr_db, tx, &mut job.rng, ws));
        }

        // Stage 3 — demap + deinterleave (SIMD-batched per grid).
        self.dellrs.clear();
        self.effs.clear();
        for eq in &self.eq {
            let (dellrs, eff) = link::demap_and_deinterleave(cfg, eq, &il, ws);
            self.dellrs.push(dellrs);
            self.effs.push(eff);
        }

        // Stage 4 — decode + CRC check.
        let mut out = Vec::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            let (block_len, coded_len) = self.meta[i];
            let decoded =
                convcode::decode_soft_with(&self.dellrs[i][..coded_len], block_len, &mut ws.trellis)
                    .expect("length checked");
            let crc_ok = check_crc(&decoded).is_some();
            let bit_errors = job
                .payload
                .iter()
                .zip(&decoded)
                .filter(|(a, b)| a != b)
                .count();
            if !(crc_ok && bit_errors == 0) {
                rem_obs::metrics::inc("rem_phy_crc_fail_total");
            }
            rem_obs::metrics::observe("rem_phy_bit_errors", bit_errors as u64);
            out.push(BlockOutcome {
                crc_ok: crc_ok && bit_errors == 0,
                bit_errors,
                effective_sinr_db: rem_num::stats::lin_to_db(self.effs[i].max(1e-12)),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{simulate_block_with, BlerScenario, CsiModel, OtfsReceiver, Waveform};
    use rand::Rng;
    use rem_channel::models::ChannelModel;
    use rem_num::rng::child_rng;

    fn jobs_for(scenario: &BlerScenario, n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|i| {
                let mut rng = child_rng(scenario.seed, &format!("bler-trial-{i}"));
                let ch = scenario
                    .model
                    .realize(&mut rng, scenario.speed_ms, scenario.carrier_hz);
                let payload: Vec<bool> =
                    (0..scenario.cfg.max_payload_bits()).map(|_| rng.gen()).collect();
                BatchJob { ch, payload, rng }
            })
            .collect()
    }

    #[test]
    fn batch_run_is_bit_identical_to_per_block_path() {
        for (wf, receiver) in [
            (Waveform::Ofdm, OtfsReceiver::TwoStep),
            (Waveform::Otfs, OtfsReceiver::TwoStep),
            (Waveform::Otfs, OtfsReceiver::MessagePassing),
        ] {
            let mut scenario = BlerScenario::signaling(wf, ChannelModel::Hst)
                .with_snr_db(4.0)
                .with_seed(91);
            scenario.cfg.otfs_receiver = receiver;

            let mut batch_jobs = jobs_for(&scenario, 6);
            let mut lb = LinkBatch::new();
            let mut ws = DspScratch::new();
            let batched = lb.run(&scenario.cfg, scenario.snr_db, &mut batch_jobs, &mut ws);

            let mut serial_jobs = jobs_for(&scenario, 6);
            let serial: Vec<_> = serial_jobs
                .iter_mut()
                .map(|j| {
                    simulate_block_with(
                        &scenario.cfg,
                        &j.ch,
                        scenario.snr_db,
                        &j.payload,
                        &mut j.rng,
                        &mut ws,
                    )
                })
                .collect();
            assert_eq!(batched, serial, "{wf:?} {receiver:?}");
        }
    }

    #[test]
    fn batch_reuse_across_chunks_is_bit_identical() {
        let scenario = BlerScenario::signaling(Waveform::Otfs, ChannelModel::Etu)
            .with_speed_kmh(300.0)
            .with_snr_db(2.0)
            .with_seed(17);
        let mut lb = LinkBatch::new();
        let mut ws = DspScratch::new();
        // Two uneven chunks through one driver vs fresh drivers.
        let mut first = jobs_for(&scenario, 5);
        let mut second = jobs_for(&scenario, 3);
        let reused: Vec<_> = lb
            .run(&scenario.cfg, scenario.snr_db, &mut first, &mut ws)
            .into_iter()
            .chain(lb.run(&scenario.cfg, scenario.snr_db, &mut second, &mut ws))
            .collect();

        let mut first2 = jobs_for(&scenario, 5);
        let mut second2 = jobs_for(&scenario, 3);
        let fresh: Vec<_> = LinkBatch::new()
            .run(&scenario.cfg, scenario.snr_db, &mut first2, &mut DspScratch::new())
            .into_iter()
            .chain(LinkBatch::new().run(
                &scenario.cfg,
                scenario.snr_db,
                &mut second2,
                &mut DspScratch::new(),
            ))
            .collect();
        assert_eq!(reused, fresh);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let cfg = crate::link::LinkConfig::signaling(Waveform::Ofdm);
        assert_eq!(cfg.csi, CsiModel::PilotHold { period: 4 });
        let out = LinkBatch::new().run(&cfg, 5.0, &mut [], &mut DspScratch::new());
        assert!(out.is_empty());
    }
}
