//! OTFS modulation: the symplectic finite Fourier transform pair.
//!
//! OTFS places symbols on the `M x N` delay-Doppler grid `x[k, l]` and
//! converts them to the OFDM time-frequency grid `X[n, m]` with the
//! SFFT (paper Eq. 2), transmitting the result over the legacy OFDM
//! radio. The receiver applies the ISFFT (Eq. 3). Because each
//! delay-Doppler symbol is spread over *every* time-frequency slot,
//! it experiences the grid-averaged channel — the full time-frequency
//! diversity that stabilises REM's signaling (paper §5.1).
//!
//! Matrix convention throughout: rows index delay `k` (equivalently
//! subcarrier `m`), columns index Doppler `l` (equivalently OFDM symbol
//! `n`). So a `CMatrix` in the TF domain has entry `(m, n) = X[n, m]`
//! of the paper.

use crate::dsp::{with_thread_scratch, DspScratch};
use rem_num::CMatrix;

/// SFFT, paper convention (no normalisation):
/// `X[n, m] = sum_{k, l} x[k, l] e^{-j 2 pi (m k / M - n l / N)}`.
pub fn sfft(x: &CMatrix) -> CMatrix {
    with_thread_scratch(|ws| {
        let mut out = CMatrix::zeros(x.rows(), x.cols());
        sfft_into(x, &mut out, ws);
        out
    })
}

/// [`sfft`] into a caller-provided output matrix with reused plans and
/// buffers: zero heap allocations in steady state.
///
/// # Panics
/// Panics if `out` is not the same shape as `x`.
pub fn sfft_into(x: &CMatrix, out: &mut CMatrix, ws: &mut DspScratch) {
    let (m, n) = x.shape();
    assert_eq!(out.shape(), (m, n), "output shape mismatch");
    // Step 1: unnormalised inverse DFT along the Doppler axis (l -> n),
    // written straight into `out`'s rows. The plan's unnormalised
    // inverse replaces the old `ifft` + multiply-back-by-`n` pair.
    let row_plan = ws.planner.plan(n);
    for k in 0..m {
        let row = out.row_mut(k);
        row.copy_from_slice(x.row(k));
        row_plan.inverse_unnormalized(row, &mut ws.fft);
    }
    // Step 2: forward DFT along the delay axis (k -> m), in place on
    // `out`'s columns.
    let col_plan = ws.planner.plan(m);
    let col = DspScratch::buf(&mut ws.col, m);
    for nn in 0..n {
        out.copy_col_into(nn, col);
        col_plan.forward(col, &mut ws.fft);
        out.set_col(nn, col);
    }
}

/// ISFFT, paper convention (includes the `1/(N M)` factor):
/// `x[k, l] = (1/NM) sum_{n, m} X[n, m] e^{+j 2 pi (m k / M - n l / N)}`.
pub fn isfft(big_x: &CMatrix) -> CMatrix {
    with_thread_scratch(|ws| {
        let mut out = CMatrix::zeros(big_x.rows(), big_x.cols());
        isfft_into(big_x, &mut out, ws);
        out
    })
}

/// [`isfft`] into a caller-provided output matrix with reused plans and
/// buffers: zero heap allocations in steady state.
///
/// # Panics
/// Panics if `out` is not the same shape as `big_x`.
pub fn isfft_into(big_x: &CMatrix, out: &mut CMatrix, ws: &mut DspScratch) {
    let (m, n) = big_x.shape();
    assert_eq!(out.shape(), (m, n), "output shape mismatch");
    // Step 1: unnormalised inverse DFT along the delay axis (m -> k).
    let col_plan = ws.planner.plan(m);
    let col = DspScratch::buf(&mut ws.col, m);
    for nn in 0..n {
        big_x.copy_col_into(nn, col);
        col_plan.inverse_unnormalized(col, &mut ws.fft);
        out.set_col(nn, col);
    }
    // Step 2: forward DFT along the time axis (n -> l), then one fused
    // `1/(NM)` pass (was: 1/M inside ifft + 1/N per element).
    let row_plan = ws.planner.plan(n);
    for k in 0..m {
        row_plan.forward(out.row_mut(k), &mut ws.fft);
    }
    out.scale_mut(1.0 / (m * n) as f64);
}

/// Unitary (power-preserving) OTFS modulator: `sfft(x) / sqrt(MN)`.
/// Use this for symbol transmission so average TX power equals average
/// constellation power.
pub fn otfs_modulate(x_dd: &CMatrix) -> CMatrix {
    with_thread_scratch(|ws| {
        let mut out = CMatrix::zeros(x_dd.rows(), x_dd.cols());
        otfs_modulate_into(x_dd, &mut out, ws);
        out
    })
}

/// [`otfs_modulate`] into a caller-provided output matrix with reused
/// plans and buffers.
pub fn otfs_modulate_into(x_dd: &CMatrix, out: &mut CMatrix, ws: &mut DspScratch) {
    let (m, n) = x_dd.shape();
    sfft_into(x_dd, out, ws);
    out.scale_mut(1.0 / ((m * n) as f64).sqrt());
}

/// Unitary OTFS demodulator, inverse of [`otfs_modulate`].
pub fn otfs_demodulate(x_tf: &CMatrix) -> CMatrix {
    with_thread_scratch(|ws| {
        let mut out = CMatrix::zeros(x_tf.rows(), x_tf.cols());
        otfs_demodulate_into(x_tf, &mut out, ws);
        out
    })
}

/// [`otfs_demodulate`] into a caller-provided output matrix with reused
/// plans and buffers.
pub fn otfs_demodulate_into(x_tf: &CMatrix, out: &mut CMatrix, ws: &mut DspScratch) {
    let (m, n) = x_tf.shape();
    isfft_into(x_tf, out, ws);
    out.scale_mut(((m * n) as f64).sqrt());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::{c64, Complex64};
    use std::f64::consts::PI;

    fn test_grid(m: usize, n: usize) -> CMatrix {
        CMatrix::from_fn(m, n, |r, c| c64((r as f64 * 0.7).sin() + c as f64 * 0.1, (c as f64 - r as f64) * 0.05))
    }

    #[test]
    fn sfft_isfft_round_trip() {
        for (m, n) in [(4usize, 4usize), (12, 14), (8, 5), (3, 7)] {
            let x = test_grid(m, n);
            let back = isfft(&sfft(&x));
            assert!(back.frobenius_dist(&x) < 1e-9, "({m},{n})");
        }
    }

    #[test]
    fn isfft_sfft_round_trip() {
        let x = test_grid(12, 14);
        let back = sfft(&isfft(&x));
        assert!(back.frobenius_dist(&x) < 1e-9);
    }

    #[test]
    fn sfft_matches_direct_sum() {
        let (m, n) = (4usize, 3usize);
        let x = test_grid(m, n);
        let got = sfft(&x);
        // Direct evaluation of Eq. 2.
        for mm in 0..m {
            for nn in 0..n {
                let mut acc = Complex64::ZERO;
                for k in 0..m {
                    for l in 0..n {
                        let ang = -2.0 * PI * (mm as f64 * k as f64 / m as f64 - nn as f64 * l as f64 / n as f64);
                        acc += x[(k, l)] * Complex64::cis(ang);
                    }
                }
                assert!(got[(mm, nn)].dist(acc) < 1e-9, "({mm},{nn})");
            }
        }
    }

    #[test]
    fn unitary_pair_preserves_energy() {
        let x = test_grid(12, 14);
        let tx = otfs_modulate(&x);
        let ein = x.frobenius_norm();
        let eout = tx.frobenius_norm();
        assert!((ein - eout).abs() < 1e-9 * ein);
        let back = otfs_demodulate(&tx);
        assert!(back.frobenius_dist(&x) < 1e-9);
    }

    #[test]
    fn single_dd_symbol_spreads_over_full_grid() {
        // The diversity mechanism: one delay-Doppler symbol occupies
        // every time-frequency slot with equal magnitude.
        let mut x = CMatrix::zeros(6, 8);
        x[(2, 3)] = Complex64::ONE;
        let tx = otfs_modulate(&x);
        let expected = 1.0 / ((6.0 * 8.0) as f64).sqrt();
        for v in tx.as_slice() {
            assert!((v.abs() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn dd_dc_maps_to_tf_dc() {
        // An all-ones DD grid concentrates on the (0,0) TF bin.
        let x = CMatrix::from_fn(4, 6, |_, _| Complex64::ONE);
        let tx = sfft(&x);
        assert!(tx[(0, 0)].dist(c64(24.0, 0.0)) < 1e-9);
        let off: f64 = tx
            .as_slice()
            .iter()
            .map(|z| z.abs())
            .sum::<f64>()
            - tx[(0, 0)].abs();
        assert!(off < 1e-8);
    }

    #[test]
    fn into_variants_match_allocating_versions_exactly() {
        // Satellite contract: the `_into` paths are the implementation
        // of the allocating wrappers, so outputs must be bit-identical,
        // including across scratch reuse.
        let mut ws = DspScratch::new();
        for (m, n) in [(4usize, 4usize), (12, 14), (8, 5), (3, 7), (16, 12)] {
            let x = test_grid(m, n);
            let mut out = CMatrix::zeros(m, n);

            sfft_into(&x, &mut out, &mut ws);
            assert_eq!(sfft(&x).as_slice(), out.as_slice(), "sfft ({m},{n})");

            isfft_into(&x, &mut out, &mut ws);
            assert_eq!(isfft(&x).as_slice(), out.as_slice(), "isfft ({m},{n})");

            otfs_modulate_into(&x, &mut out, &mut ws);
            assert_eq!(otfs_modulate(&x).as_slice(), out.as_slice(), "mod ({m},{n})");

            otfs_demodulate_into(&x, &mut out, &mut ws);
            assert_eq!(otfs_demodulate(&x).as_slice(), out.as_slice(), "demod ({m},{n})");
        }
    }

    #[test]
    fn linearity() {
        let a = test_grid(5, 6);
        let b = CMatrix::from_fn(5, 6, |r, c| c64(c as f64, r as f64));
        let lhs = sfft(&(&a + &b));
        let rhs = &sfft(&a) + &sfft(&b);
        assert!(lhs.frobenius_dist(&rhs) < 1e-9);
    }
}
