//! Gray-coded QAM constellation mapping and soft demapping.
//!
//! The link layer carries coded signaling/data bits as QPSK, 16-QAM or
//! 64-QAM symbols. The demapper emits per-bit log-likelihood ratios
//! (max-log approximation) for the soft-decision Viterbi decoder.
//! Constellations are normalised to unit average energy.

use rem_num::simd::{self, SimdTier};
use rem_num::{c64, Complex64};
use serde::{Deserialize, Serialize};

/// Supported modulation orders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// 2 bits/symbol.
    Qpsk,
    /// 4 bits/symbol.
    Qam16,
    /// 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// Bits carried per symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Per-axis amplitude normaliser giving unit average symbol energy.
    fn scale(self) -> f64 {
        match self {
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
        }
    }

    /// Per-axis PAM levels (Gray order index -> amplitude).
    fn levels(self) -> &'static [f64] {
        match self {
            Modulation::Qpsk => &[-1.0, 1.0],
            Modulation::Qam16 => &[-3.0, -1.0, 1.0, 3.0],
            Modulation::Qam64 => &[-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0],
        }
    }
}

/// Gray-maps `bits_per_axis` bits to a PAM level index.
fn gray_to_index(bits: &[bool]) -> usize {
    // Binary-reflected Gray decode.
    let mut acc = 0usize;
    let mut prev = 0usize;
    for &b in bits {
        let cur = prev ^ (b as usize);
        acc = (acc << 1) | cur;
        prev = cur;
    }
    acc
}

/// Inverse of [`gray_to_index`].
fn index_to_gray(mut idx: usize, nbits: usize, out: &mut Vec<bool>) {
    let gray = idx ^ (idx >> 1);
    for i in (0..nbits).rev() {
        out.push((gray >> i) & 1 == 1);
    }
    idx = gray; // silence unused warning path
    let _ = idx;
}

/// Maps bits to complex symbols. Trailing bits that do not fill a
/// symbol are zero-padded.
pub fn modulate(bits: &[bool], m: Modulation) -> Vec<Complex64> {
    let bps = m.bits_per_symbol();
    let half = bps / 2;
    let levels = m.levels();
    let s = m.scale();
    let mut out = Vec::with_capacity(bits.len().div_ceil(bps));
    let mut padded: Vec<bool>;
    let bits = if bits.len().is_multiple_of(bps) {
        bits
    } else {
        padded = bits.to_vec();
        padded.resize(bits.len().div_ceil(bps) * bps, false);
        &padded
    };
    for chunk in bits.chunks(bps) {
        let i_idx = gray_to_index(&chunk[..half]);
        let q_idx = gray_to_index(&chunk[half..]);
        out.push(c64(levels[i_idx] * s, levels[q_idx] * s));
    }
    out
}

/// Hard-decision demapping: nearest constellation point.
pub fn demodulate_hard(symbols: &[Complex64], m: Modulation) -> Vec<bool> {
    let bps = m.bits_per_symbol();
    let half = bps / 2;
    let levels = m.levels();
    let s = m.scale();
    let mut out = Vec::with_capacity(symbols.len() * bps);
    for &sym in symbols {
        let i_idx = nearest_level(sym.re / s, levels);
        let q_idx = nearest_level(sym.im / s, levels);
        index_to_gray(i_idx, half, &mut out);
        index_to_gray(q_idx, half, &mut out);
    }
    out
}

/// Soft demapping to per-bit LLRs (`> 0` favours bit value 0 under the
/// convention `llr = log P(b=0) - log P(b=1)`), max-log approximation.
/// `noise_var` is the total complex noise variance per symbol.
pub fn demodulate_soft(symbols: &[Complex64], m: Modulation, noise_var: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(symbols.len() * m.bits_per_symbol());
    demodulate_soft_into(symbols, m, noise_var, &mut out);
    out
}

/// [`demodulate_soft`] appending into a caller-provided buffer, for hot
/// loops that demap without a fresh `Vec` per call. Runs on the active
/// SIMD tier (bit-identical to the scalar path, see [`rem_num::simd`]).
pub fn demodulate_soft_into(
    symbols: &[Complex64],
    m: Modulation,
    noise_var: f64,
    out: &mut Vec<f64>,
) {
    demod_dispatch(symbols, m, NvSrc::Uniform(noise_var), out, simd::active_tier());
}

/// [`demodulate_soft_into`] with one noise variance **per symbol** —
/// the OFDM receiver's case, where each resource element sees its own
/// post-equalisation noise level. Appends `bits_per_symbol` LLRs per
/// symbol. Each variance is clamped to `>= 1e-12`.
///
/// # Panics
/// Panics if `noise_vars.len() != symbols.len()`.
pub fn demodulate_soft_per_symbol_into(
    symbols: &[Complex64],
    m: Modulation,
    noise_vars: &[f64],
    out: &mut Vec<f64>,
) {
    demod_dispatch(symbols, m, NvSrc::PerSymbol(noise_vars), out, simd::active_tier());
}

/// [`demodulate_soft_into`] on an explicit SIMD tier (scalar fallback
/// when unavailable); for equivalence tests and the `dsp_json` bench.
pub fn demodulate_soft_into_with_tier(
    symbols: &[Complex64],
    m: Modulation,
    noise_var: f64,
    out: &mut Vec<f64>,
    tier: SimdTier,
) {
    demod_dispatch(symbols, m, NvSrc::Uniform(noise_var), out, tier);
}

/// [`demodulate_soft_per_symbol_into`] on an explicit SIMD tier.
pub fn demodulate_soft_per_symbol_into_with_tier(
    symbols: &[Complex64],
    m: Modulation,
    noise_vars: &[f64],
    out: &mut Vec<f64>,
    tier: SimdTier,
) {
    demod_dispatch(symbols, m, NvSrc::PerSymbol(noise_vars), out, tier);
}

/// Where the demapper takes its noise variance from.
#[derive(Clone, Copy)]
enum NvSrc<'a> {
    /// One variance for the whole slice.
    Uniform(f64),
    /// One variance per symbol (same length as the symbol slice).
    PerSymbol(&'a [f64]),
}

fn demod_dispatch(
    symbols: &[Complex64],
    m: Modulation,
    nv: NvSrc,
    out: &mut Vec<f64>,
    tier: SimdTier,
) {
    if let NvSrc::PerSymbol(vs) = nv {
        assert_eq!(vs.len(), symbols.len(), "one noise variance per symbol");
    }
    let bps = m.bits_per_symbol();
    let half = bps / 2;
    let levels = m.levels();
    let s = m.scale();
    let tier = if tier.is_available() { tier } else { SimdTier::Scalar };
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => {
            let base = out.len();
            out.resize(base + symbols.len() * bps, 0.0);
            unsafe { demod_avx2(symbols, levels, half, bps, s, nv, &mut out[base..]) };
        }
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => {
            let base = out.len();
            out.resize(base + symbols.len() * bps, 0.0);
            unsafe { demod_neon(symbols, levels, half, bps, s, nv, &mut out[base..]) };
        }
        _ => {
            out.reserve(symbols.len() * bps);
            match nv {
                NvSrc::Uniform(v) => {
                    let nv = v.max(1e-12);
                    for &sym in symbols {
                        axis_llrs(sym.re / s, levels, half, s, nv, out);
                        axis_llrs(sym.im / s, levels, half, s, nv, out);
                    }
                }
                NvSrc::PerSymbol(vs) => {
                    for (&sym, &v) in symbols.iter().zip(vs) {
                        let nv = v.max(1e-12);
                        axis_llrs(sym.re / s, levels, half, s, nv, out);
                        axis_llrs(sym.im / s, levels, half, s, nv, out);
                    }
                }
            }
        }
    }
}

fn axis_llrs(y: f64, levels: &[f64], nbits: usize, s: f64, nv: f64, out: &mut Vec<f64>) {
    // Max-log LLR per bit: min distance over constellation points with
    // that bit = 0 minus min distance with bit = 1.
    for bit in 0..nbits {
        let mut d0 = f64::INFINITY;
        let mut d1 = f64::INFINITY;
        for (idx, &lv) in levels.iter().enumerate() {
            let gray = idx ^ (idx >> 1);
            let b = (gray >> (nbits - 1 - bit)) & 1;
            let d = (y - lv) * (y - lv);
            if b == 0 {
                d0 = d0.min(d);
            } else {
                d1 = d1.min(d);
            }
        }
        out.push((d1 - d0) * s * s / nv);
    }
}

/// [`axis_llrs`] writing by index instead of pushing — used by the SIMD
/// kernels for their scalar remainder symbol. Arithmetic is verbatim
/// [`axis_llrs`], so outputs are bit-identical.
#[allow(dead_code)] // only referenced from arch-gated kernels
fn axis_llrs_into(y: f64, levels: &[f64], nbits: usize, s: f64, nv: f64, dst: &mut [f64]) {
    for (bit, slot) in dst.iter_mut().enumerate().take(nbits) {
        let mut d0 = f64::INFINITY;
        let mut d1 = f64::INFINITY;
        for (idx, &lv) in levels.iter().enumerate() {
            let gray = idx ^ (idx >> 1);
            let b = (gray >> (nbits - 1 - bit)) & 1;
            let d = (y - lv) * (y - lv);
            if b == 0 {
                d0 = d0.min(d);
            } else {
                d1 = d1.min(d);
            }
        }
        *slot = (d1 - d0) * s * s / nv;
    }
}

/// AVX2 soft demapper: two symbols per 256-bit register, lanes
/// `[I0, Q0, I1, Q1]` over the interleaved `repr(C)` symbol layout.
///
/// Every lane performs exactly the scalar [`axis_llrs`] operations in
/// order — `y = axis / s` (a real division, not a reciprocal multiply),
/// per-bit min over levels in level order, `((d1 - d0) * s) * s / nv` —
/// so finite outputs are bit-identical to the scalar path.
/// (`_mm256_min_pd`/`_mm256_max_pd` differ from `f64::min`/`f64::max`
/// only when an operand is NaN, which here requires a NaN input symbol;
/// the link pipeline sanitizes non-finite LLRs either way.)
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn demod_avx2(
    symbols: &[Complex64],
    levels: &[f64],
    half: usize,
    bps: usize,
    s: f64,
    nv: NvSrc,
    dst: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = symbols.len();
    let pairs = n / 2;
    let sp = symbols.as_ptr() as *const f64;
    let sv = _mm256_set1_pd(s);
    let eps = _mm256_set1_pd(1e-12);
    let inf = _mm256_set1_pd(f64::INFINITY);
    let uniform_nv = match nv {
        NvSrc::Uniform(v) => _mm256_max_pd(_mm256_set1_pd(v), eps),
        NvSrc::PerSymbol(_) => eps,
    };
    for p in 0..pairs {
        let y = _mm256_div_pd(_mm256_loadu_pd(sp.add(4 * p)), sv);
        let nvv = match nv {
            NvSrc::Uniform(_) => uniform_nv,
            NvSrc::PerSymbol(vs) => {
                let (v0, v1) = (vs[2 * p], vs[2 * p + 1]);
                _mm256_max_pd(_mm256_set_pd(v1, v1, v0, v0), eps)
            }
        };
        for bit in 0..half {
            let mut d0 = inf;
            let mut d1 = inf;
            for (idx, &lv) in levels.iter().enumerate() {
                let diff = _mm256_sub_pd(y, _mm256_set1_pd(lv));
                let d = _mm256_mul_pd(diff, diff);
                let gray = idx ^ (idx >> 1);
                if (gray >> (half - 1 - bit)) & 1 == 0 {
                    d0 = _mm256_min_pd(d0, d);
                } else {
                    d1 = _mm256_min_pd(d1, d);
                }
            }
            let llr = _mm256_div_pd(
                _mm256_mul_pd(_mm256_mul_pd(_mm256_sub_pd(d1, d0), sv), sv),
                nvv,
            );
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), llr);
            let o = 2 * p * bps;
            dst[o + bit] = lanes[0];
            dst[o + half + bit] = lanes[1];
            dst[o + bps + bit] = lanes[2];
            dst[o + bps + half + bit] = lanes[3];
        }
    }
    if n % 2 == 1 {
        demod_tail(symbols, levels, half, bps, s, nv, dst, n - 1);
    }
}

/// NEON soft demapper: one symbol per 128-bit register, lanes
/// `[I, Q]`; same verbatim-scalar arithmetic as the AVX2 kernel.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn demod_neon(
    symbols: &[Complex64],
    levels: &[f64],
    half: usize,
    bps: usize,
    s: f64,
    nv: NvSrc,
    dst: &mut [f64],
) {
    use std::arch::aarch64::*;
    let sp = symbols.as_ptr() as *const f64;
    let sv = vdupq_n_f64(s);
    for i in 0..symbols.len() {
        let y = vdivq_f64(vld1q_f64(sp.add(2 * i)), sv);
        let nvi = match nv {
            NvSrc::Uniform(v) => v.max(1e-12),
            NvSrc::PerSymbol(vs) => vs[i].max(1e-12),
        };
        let nvv = vdupq_n_f64(nvi);
        for bit in 0..half {
            let mut d0 = vdupq_n_f64(f64::INFINITY);
            let mut d1 = vdupq_n_f64(f64::INFINITY);
            for (idx, &lv) in levels.iter().enumerate() {
                let diff = vsubq_f64(y, vdupq_n_f64(lv));
                let d = vmulq_f64(diff, diff);
                let gray = idx ^ (idx >> 1);
                if (gray >> (half - 1 - bit)) & 1 == 0 {
                    d0 = vminq_f64(d0, d);
                } else {
                    d1 = vminq_f64(d1, d);
                }
            }
            let llr = vdivq_f64(vmulq_f64(vmulq_f64(vsubq_f64(d1, d0), sv), sv), nvv);
            dst[i * bps + bit] = vgetq_lane_f64::<0>(llr);
            dst[i * bps + half + bit] = vgetq_lane_f64::<1>(llr);
        }
    }
}

/// Scalar demap of the single symbol at `i`, writing into `dst` — the
/// odd-length remainder of the SIMD kernels.
#[allow(dead_code)] // only referenced from arch-gated kernels
#[allow(clippy::too_many_arguments)]
fn demod_tail(
    symbols: &[Complex64],
    levels: &[f64],
    half: usize,
    bps: usize,
    s: f64,
    nv: NvSrc,
    dst: &mut [f64],
    i: usize,
) {
    let sym = symbols[i];
    let nvi = match nv {
        NvSrc::Uniform(v) => v.max(1e-12),
        NvSrc::PerSymbol(vs) => vs[i].max(1e-12),
    };
    let o = i * bps;
    axis_llrs_into(sym.re / s, levels, half, s, nvi, &mut dst[o..o + half]);
    axis_llrs_into(sym.im / s, levels, half, s, nvi, &mut dst[o + half..o + bps]);
}

fn nearest_level(y: f64, levels: &[f64]) -> usize {
    let mut best = 0usize;
    let mut bd = f64::INFINITY;
    for (i, &lv) in levels.iter().enumerate() {
        let d = (y - lv).abs();
        if d < bd {
            bd = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rem_num::rng::{complex_gaussian, rng_from_seed};

    const MODS: [Modulation; 3] = [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64];

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn round_trip_noiseless() {
        for m in MODS {
            let bits = random_bits(m.bits_per_symbol() * 100, 1);
            let syms = modulate(&bits, m);
            let back = demodulate_hard(&syms, m);
            assert_eq!(bits, back, "{m:?}");
        }
    }

    #[test]
    fn unit_average_energy() {
        for m in MODS {
            let bits = random_bits(m.bits_per_symbol() * 4096, 2);
            let syms = modulate(&bits, m);
            let e: f64 = syms.iter().map(|z| z.norm_sqr()).sum::<f64>() / syms.len() as f64;
            assert!((e - 1.0).abs() < 0.05, "{m:?} energy {e}");
        }
    }

    #[test]
    fn constellation_size() {
        for m in MODS {
            let bps = m.bits_per_symbol();
            let mut pts = std::collections::BTreeSet::new();
            for v in 0..(1usize << bps) {
                let bits: Vec<bool> = (0..bps).rev().map(|i| (v >> i) & 1 == 1).collect();
                let sym = modulate(&bits, m)[0];
                pts.insert((format!("{:.6}", sym.re), format!("{:.6}", sym.im)));
            }
            assert_eq!(pts.len(), 1 << bps, "{m:?}");
        }
    }

    #[test]
    fn gray_neighbours_differ_in_one_bit() {
        // Adjacent PAM levels must differ by exactly one bit (Gray).
        for m in MODS {
            let nbits = m.bits_per_symbol() / 2;
            let levels = m.levels();
            for i in 0..levels.len() - 1 {
                let g1 = i ^ (i >> 1);
                let g2 = (i + 1) ^ ((i + 1) >> 1);
                assert_eq!((g1 ^ g2).count_ones(), 1, "{m:?} {nbits}");
            }
        }
    }

    #[test]
    fn soft_llr_sign_matches_hard_decision() {
        let mut rng = rng_from_seed(3);
        for m in MODS {
            let bits = random_bits(m.bits_per_symbol() * 200, 4);
            let mut syms = modulate(&bits, m);
            for s in syms.iter_mut() {
                *s += complex_gaussian(&mut rng, 0.001); // very high SNR
            }
            let llrs = demodulate_soft(&syms, m, 0.001);
            for (b, llr) in bits.iter().zip(&llrs) {
                // llr > 0 -> bit 0; llr < 0 -> bit 1.
                assert_eq!(*b, *llr < 0.0, "{m:?}");
            }
        }
    }

    #[test]
    fn llr_magnitude_scales_with_snr() {
        let bits = vec![false, false];
        let syms = modulate(&bits, Modulation::Qpsk);
        let l_hi = demodulate_soft(&syms, Modulation::Qpsk, 0.01);
        let l_lo = demodulate_soft(&syms, Modulation::Qpsk, 1.0);
        assert!(l_hi[0] > 10.0 * l_lo[0]);
    }

    #[test]
    fn partial_symbol_padding() {
        let bits = vec![true, false, true]; // 3 bits into QPSK: pads to 4
        let syms = modulate(&bits, Modulation::Qpsk);
        assert_eq!(syms.len(), 2);
        let back = demodulate_hard(&syms, Modulation::Qpsk);
        assert_eq!(&back[..3], &bits[..]);
        assert!(!back[3]);
    }

    #[test]
    fn noisy_qpsk_mostly_correct_at_10db() {
        let mut rng = rng_from_seed(7);
        let bits = random_bits(2000, 8);
        let mut syms = modulate(&bits, Modulation::Qpsk);
        let nv = rem_num::stats::db_to_lin(-10.0);
        for s in syms.iter_mut() {
            *s += complex_gaussian(&mut rng, nv);
        }
        let back = demodulate_hard(&syms, Modulation::Qpsk);
        let errs = bits.iter().zip(&back).filter(|(a, b)| a != b).count();
        // Uncoded QPSK at 10 dB: BER ~ 8e-4 over 2000 bits (expect a few).
        assert!(errs < 20, "errs={errs}");
    }
}

#[cfg(test)]
mod simd_tests {
    use super::*;
    use rem_num::simd::SimdTier;

    /// Deterministic "noisy" symbols without drawing from `rand`: a
    /// coarse lattice walk across and beyond the constellation.
    fn test_symbols(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                c64(0.37 * t - 0.11 * t * t % 3.0, 1.9 - 0.53 * t % 4.0)
            })
            .collect()
    }

    fn nvs(n: usize) -> Vec<f64> {
        // Includes zero and sub-clamp values to exercise the 1e-12 floor.
        (0..n).map(|i| [0.5, 0.01, 0.0, 1e-15, 2.0][i % 5]).collect()
    }

    #[test]
    fn tiers_match_scalar_for_all_remainders_and_modulations() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            for tier in [SimdTier::Avx2, SimdTier::Neon] {
                for n in 0..=11usize {
                    let syms = test_symbols(n);
                    let mut want = vec![-1.0; 3]; // non-empty prefix: appends only
                    demodulate_soft_into_with_tier(&syms, m, 0.2, &mut want, SimdTier::Scalar);
                    let mut got = vec![-1.0; 3];
                    demodulate_soft_into_with_tier(&syms, m, 0.2, &mut got, tier);
                    assert_eq!(got, want, "{m:?} uniform tier={} n={n}", tier.name());

                    let vars = nvs(n);
                    let mut want = Vec::new();
                    demodulate_soft_per_symbol_into_with_tier(
                        &syms,
                        m,
                        &vars,
                        &mut want,
                        SimdTier::Scalar,
                    );
                    let mut got = Vec::new();
                    demodulate_soft_per_symbol_into_with_tier(&syms, m, &vars, &mut got, tier);
                    assert_eq!(got, want, "{m:?} per-symbol tier={} n={n}", tier.name());
                }
            }
        }
    }

    #[test]
    fn tiers_match_scalar_on_unaligned_slices() {
        let backing = test_symbols(33);
        let vars = nvs(33);
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            for tier in [SimdTier::Avx2, SimdTier::Neon] {
                for off in 1..=3usize {
                    let mut want = Vec::new();
                    demodulate_soft_per_symbol_into_with_tier(
                        &backing[off..],
                        m,
                        &vars[off..],
                        &mut want,
                        SimdTier::Scalar,
                    );
                    let mut got = Vec::new();
                    demodulate_soft_per_symbol_into_with_tier(
                        &backing[off..],
                        m,
                        &vars[off..],
                        &mut got,
                        tier,
                    );
                    assert_eq!(got, want, "{m:?} tier={} off={off}", tier.name());
                }
            }
        }
    }

    #[test]
    fn per_symbol_with_uniform_vars_equals_uniform_entry() {
        let syms = test_symbols(24);
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let mut a = Vec::new();
            demodulate_soft_into(&syms, m, 0.3, &mut a);
            let mut b = Vec::new();
            demodulate_soft_per_symbol_into(&syms, m, &[0.3; 24], &mut b);
            assert_eq!(a, b, "{m:?}");
        }
    }
}

#[cfg(test)]
mod qam64_tests {
    use super::*;

    #[test]
    fn qam64_corner_and_center_points() {
        // All-zero bits map to the most-negative corner (Gray index 0);
        // magnitude = sqrt(2)*7/sqrt(42).
        let bits = vec![false; 6];
        let s = modulate(&bits, Modulation::Qam64)[0];
        let corner = 7.0 / 42f64.sqrt();
        assert!((s.re + corner).abs() < 1e-12);
        assert!((s.im + corner).abs() < 1e-12);
    }

    #[test]
    fn qam64_soft_llrs_order_by_reliability() {
        // The MSB of each axis has the largest decision distance: its
        // LLR magnitude must dominate the lower bits at a corner point.
        let bits = vec![false; 6];
        let s = modulate(&bits, Modulation::Qam64)[0];
        let llrs = demodulate_soft(&[s], Modulation::Qam64, 0.1);
        assert_eq!(llrs.len(), 6);
        // I-axis bits: 0..3 (MSB first); corner => |llr0| >= |llr2|.
        assert!(llrs[0] >= llrs[2] - 1e-9, "{llrs:?}");
        assert!(llrs.iter().all(|&l| l > 0.0), "all bits are 0: {llrs:?}");
    }

    #[test]
    fn higher_order_needs_more_snr_for_same_ber() {
        use rem_num::rng::{complex_gaussian, rng_from_seed};
        let mut rng = rng_from_seed(5);
        let nbits = 6_000;
        let ber = |m: Modulation, rng: &mut rem_num::SimRng| {
            let bits: Vec<bool> = (0..nbits).map(|i| i % 3 == 0).collect();
            let mut syms = modulate(&bits, m);
            for s in syms.iter_mut() {
                *s += complex_gaussian(rng, 0.05); // 13 dB
            }
            let back = demodulate_hard(&syms, m);
            bits.iter().zip(&back).filter(|(a, b)| a != b).count() as f64 / nbits as f64
        };
        let b_qpsk = ber(Modulation::Qpsk, &mut rng);
        let b_64 = ber(Modulation::Qam64, &mut rng);
        assert!(b_64 > b_qpsk, "64qam={b_64} qpsk={b_qpsk}");
    }
}
