//! Gray-coded QAM constellation mapping and soft demapping.
//!
//! The link layer carries coded signaling/data bits as QPSK, 16-QAM or
//! 64-QAM symbols. The demapper emits per-bit log-likelihood ratios
//! (max-log approximation) for the soft-decision Viterbi decoder.
//! Constellations are normalised to unit average energy.

use rem_num::{c64, Complex64};
use serde::{Deserialize, Serialize};

/// Supported modulation orders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// 2 bits/symbol.
    Qpsk,
    /// 4 bits/symbol.
    Qam16,
    /// 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// Bits carried per symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Per-axis amplitude normaliser giving unit average symbol energy.
    fn scale(self) -> f64 {
        match self {
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
        }
    }

    /// Per-axis PAM levels (Gray order index -> amplitude).
    fn levels(self) -> &'static [f64] {
        match self {
            Modulation::Qpsk => &[-1.0, 1.0],
            Modulation::Qam16 => &[-3.0, -1.0, 1.0, 3.0],
            Modulation::Qam64 => &[-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0],
        }
    }
}

/// Gray-maps `bits_per_axis` bits to a PAM level index.
fn gray_to_index(bits: &[bool]) -> usize {
    // Binary-reflected Gray decode.
    let mut acc = 0usize;
    let mut prev = 0usize;
    for &b in bits {
        let cur = prev ^ (b as usize);
        acc = (acc << 1) | cur;
        prev = cur;
    }
    acc
}

/// Inverse of [`gray_to_index`].
fn index_to_gray(mut idx: usize, nbits: usize, out: &mut Vec<bool>) {
    let gray = idx ^ (idx >> 1);
    for i in (0..nbits).rev() {
        out.push((gray >> i) & 1 == 1);
    }
    idx = gray; // silence unused warning path
    let _ = idx;
}

/// Maps bits to complex symbols. Trailing bits that do not fill a
/// symbol are zero-padded.
pub fn modulate(bits: &[bool], m: Modulation) -> Vec<Complex64> {
    let bps = m.bits_per_symbol();
    let half = bps / 2;
    let levels = m.levels();
    let s = m.scale();
    let mut out = Vec::with_capacity(bits.len().div_ceil(bps));
    let mut padded: Vec<bool>;
    let bits = if bits.len().is_multiple_of(bps) {
        bits
    } else {
        padded = bits.to_vec();
        padded.resize(bits.len().div_ceil(bps) * bps, false);
        &padded
    };
    for chunk in bits.chunks(bps) {
        let i_idx = gray_to_index(&chunk[..half]);
        let q_idx = gray_to_index(&chunk[half..]);
        out.push(c64(levels[i_idx] * s, levels[q_idx] * s));
    }
    out
}

/// Hard-decision demapping: nearest constellation point.
pub fn demodulate_hard(symbols: &[Complex64], m: Modulation) -> Vec<bool> {
    let bps = m.bits_per_symbol();
    let half = bps / 2;
    let levels = m.levels();
    let s = m.scale();
    let mut out = Vec::with_capacity(symbols.len() * bps);
    for &sym in symbols {
        let i_idx = nearest_level(sym.re / s, levels);
        let q_idx = nearest_level(sym.im / s, levels);
        index_to_gray(i_idx, half, &mut out);
        index_to_gray(q_idx, half, &mut out);
    }
    out
}

/// Soft demapping to per-bit LLRs (`> 0` favours bit value 0 under the
/// convention `llr = log P(b=0) - log P(b=1)`), max-log approximation.
/// `noise_var` is the total complex noise variance per symbol.
pub fn demodulate_soft(symbols: &[Complex64], m: Modulation, noise_var: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(symbols.len() * m.bits_per_symbol());
    demodulate_soft_into(symbols, m, noise_var, &mut out);
    out
}

/// [`demodulate_soft`] appending into a caller-provided buffer, for hot
/// loops that demap per-symbol with varying noise variances without a
/// fresh `Vec` per call.
pub fn demodulate_soft_into(
    symbols: &[Complex64],
    m: Modulation,
    noise_var: f64,
    out: &mut Vec<f64>,
) {
    let bps = m.bits_per_symbol();
    let half = bps / 2;
    let levels = m.levels();
    let s = m.scale();
    let nv = noise_var.max(1e-12);
    out.reserve(symbols.len() * bps);
    for &sym in symbols {
        axis_llrs(sym.re / s, levels, half, s, nv, out);
        axis_llrs(sym.im / s, levels, half, s, nv, out);
    }
}

fn axis_llrs(y: f64, levels: &[f64], nbits: usize, s: f64, nv: f64, out: &mut Vec<f64>) {
    // Max-log LLR per bit: min distance over constellation points with
    // that bit = 0 minus min distance with bit = 1.
    for bit in 0..nbits {
        let mut d0 = f64::INFINITY;
        let mut d1 = f64::INFINITY;
        for (idx, &lv) in levels.iter().enumerate() {
            let gray = idx ^ (idx >> 1);
            let b = (gray >> (nbits - 1 - bit)) & 1;
            let d = (y - lv) * (y - lv);
            if b == 0 {
                d0 = d0.min(d);
            } else {
                d1 = d1.min(d);
            }
        }
        out.push((d1 - d0) * s * s / nv);
    }
}

fn nearest_level(y: f64, levels: &[f64]) -> usize {
    let mut best = 0usize;
    let mut bd = f64::INFINITY;
    for (i, &lv) in levels.iter().enumerate() {
        let d = (y - lv).abs();
        if d < bd {
            bd = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rem_num::rng::{complex_gaussian, rng_from_seed};

    const MODS: [Modulation; 3] = [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64];

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn round_trip_noiseless() {
        for m in MODS {
            let bits = random_bits(m.bits_per_symbol() * 100, 1);
            let syms = modulate(&bits, m);
            let back = demodulate_hard(&syms, m);
            assert_eq!(bits, back, "{m:?}");
        }
    }

    #[test]
    fn unit_average_energy() {
        for m in MODS {
            let bits = random_bits(m.bits_per_symbol() * 4096, 2);
            let syms = modulate(&bits, m);
            let e: f64 = syms.iter().map(|z| z.norm_sqr()).sum::<f64>() / syms.len() as f64;
            assert!((e - 1.0).abs() < 0.05, "{m:?} energy {e}");
        }
    }

    #[test]
    fn constellation_size() {
        for m in MODS {
            let bps = m.bits_per_symbol();
            let mut pts = std::collections::BTreeSet::new();
            for v in 0..(1usize << bps) {
                let bits: Vec<bool> = (0..bps).rev().map(|i| (v >> i) & 1 == 1).collect();
                let sym = modulate(&bits, m)[0];
                pts.insert((format!("{:.6}", sym.re), format!("{:.6}", sym.im)));
            }
            assert_eq!(pts.len(), 1 << bps, "{m:?}");
        }
    }

    #[test]
    fn gray_neighbours_differ_in_one_bit() {
        // Adjacent PAM levels must differ by exactly one bit (Gray).
        for m in MODS {
            let nbits = m.bits_per_symbol() / 2;
            let levels = m.levels();
            for i in 0..levels.len() - 1 {
                let g1 = i ^ (i >> 1);
                let g2 = (i + 1) ^ ((i + 1) >> 1);
                assert_eq!((g1 ^ g2).count_ones(), 1, "{m:?} {nbits}");
            }
        }
    }

    #[test]
    fn soft_llr_sign_matches_hard_decision() {
        let mut rng = rng_from_seed(3);
        for m in MODS {
            let bits = random_bits(m.bits_per_symbol() * 200, 4);
            let mut syms = modulate(&bits, m);
            for s in syms.iter_mut() {
                *s += complex_gaussian(&mut rng, 0.001); // very high SNR
            }
            let llrs = demodulate_soft(&syms, m, 0.001);
            for (b, llr) in bits.iter().zip(&llrs) {
                // llr > 0 -> bit 0; llr < 0 -> bit 1.
                assert_eq!(*b, *llr < 0.0, "{m:?}");
            }
        }
    }

    #[test]
    fn llr_magnitude_scales_with_snr() {
        let bits = vec![false, false];
        let syms = modulate(&bits, Modulation::Qpsk);
        let l_hi = demodulate_soft(&syms, Modulation::Qpsk, 0.01);
        let l_lo = demodulate_soft(&syms, Modulation::Qpsk, 1.0);
        assert!(l_hi[0] > 10.0 * l_lo[0]);
    }

    #[test]
    fn partial_symbol_padding() {
        let bits = vec![true, false, true]; // 3 bits into QPSK: pads to 4
        let syms = modulate(&bits, Modulation::Qpsk);
        assert_eq!(syms.len(), 2);
        let back = demodulate_hard(&syms, Modulation::Qpsk);
        assert_eq!(&back[..3], &bits[..]);
        assert!(!back[3]);
    }

    #[test]
    fn noisy_qpsk_mostly_correct_at_10db() {
        let mut rng = rng_from_seed(7);
        let bits = random_bits(2000, 8);
        let mut syms = modulate(&bits, Modulation::Qpsk);
        let nv = rem_num::stats::db_to_lin(-10.0);
        for s in syms.iter_mut() {
            *s += complex_gaussian(&mut rng, nv);
        }
        let back = demodulate_hard(&syms, Modulation::Qpsk);
        let errs = bits.iter().zip(&back).filter(|(a, b)| a != b).count();
        // Uncoded QPSK at 10 dB: BER ~ 8e-4 over 2000 bits (expect a few).
        assert!(errs < 20, "errs={errs}");
    }
}

#[cfg(test)]
mod qam64_tests {
    use super::*;

    #[test]
    fn qam64_corner_and_center_points() {
        // All-zero bits map to the most-negative corner (Gray index 0);
        // magnitude = sqrt(2)*7/sqrt(42).
        let bits = vec![false; 6];
        let s = modulate(&bits, Modulation::Qam64)[0];
        let corner = 7.0 / 42f64.sqrt();
        assert!((s.re + corner).abs() < 1e-12);
        assert!((s.im + corner).abs() < 1e-12);
    }

    #[test]
    fn qam64_soft_llrs_order_by_reliability() {
        // The MSB of each axis has the largest decision distance: its
        // LLR magnitude must dominate the lower bits at a corner point.
        let bits = vec![false; 6];
        let s = modulate(&bits, Modulation::Qam64)[0];
        let llrs = demodulate_soft(&[s], Modulation::Qam64, 0.1);
        assert_eq!(llrs.len(), 6);
        // I-axis bits: 0..3 (MSB first); corner => |llr0| >= |llr2|.
        assert!(llrs[0] >= llrs[2] - 1e-9, "{llrs:?}");
        assert!(llrs.iter().all(|&l| l > 0.0), "all bits are 0: {llrs:?}");
    }

    #[test]
    fn higher_order_needs_more_snr_for_same_ber() {
        use rem_num::rng::{complex_gaussian, rng_from_seed};
        let mut rng = rng_from_seed(5);
        let nbits = 6_000;
        let ber = |m: Modulation, rng: &mut rem_num::SimRng| {
            let bits: Vec<bool> = (0..nbits).map(|i| i % 3 == 0).collect();
            let mut syms = modulate(&bits, m);
            for s in syms.iter_mut() {
                *s += complex_gaussian(rng, 0.05); // 13 dB
            }
            let back = demodulate_hard(&syms, m);
            bits.iter().zip(&back).filter(|(a, b)| a != b).count() as f64 / nbits as f64
        };
        let b_qpsk = ber(Modulation::Qpsk, &mut rng);
        let b_64 = ber(Modulation::Qam64, &mut rng);
        assert!(b_64 > b_qpsk, "64qam={b_64} qpsk={b_qpsk}");
    }
}
