//! Link-level simulation: the full coded block pipeline.
//!
//! This drives the paper's Fig 10 (BLER vs SNR for legacy OFDM vs REM's
//! OTFS signaling) and supplies per-message error probabilities to the
//! mobility simulator. A block travels:
//!
//! ```text
//! payload -> CRC-16 -> conv. encode (133,171) -> interleave -> QAM ->
//!   [OFDM grid | OTFS delay-Doppler grid] -> channel + ICI + AWGN ->
//!   equalise -> soft demap -> Viterbi -> CRC check
//! ```
//!
//! The OTFS path spreads every symbol over the whole grid (SFFT), so a
//! deep time/frequency fade dents every symbol slightly instead of
//! erasing a few symbols completely — the diversity the paper exploits.

use crate::convcode;
use crate::crc::{attach_crc, check_crc};
use crate::dsp::{with_thread_scratch, DspScratch};
use crate::interleaver::BlockInterleaver;
use crate::ofdm::{mmse_equalize, otfs_effective_sinr, slot_sinrs, tf_channel, transmit, zf_equalize};
use crate::otfs::{otfs_demodulate_into, otfs_modulate_into};
use crate::qam::{demodulate_soft_per_symbol_into, modulate, Modulation};
use rand::Rng;
use rem_channel::models::ChannelModel;
use rem_channel::noise::ici_relative_power;
use rem_channel::{DdGrid, MultipathChannel};
use rem_num::health;
use rem_num::stats::db_to_lin;
use rem_num::{CMatrix, SimRng};
use serde::{Deserialize, Serialize};

/// Stage-boundary spot check: a NaN/Inf anywhere in a DSP grid (post
/// equalisation, post OTFS demodulation) is recorded in the thread's
/// [`rem_num::health::DegradedStats`] ledger — once per grid, not per
/// element, so the counter reads "degraded stages", not "bad samples".
fn spot_check_stage(grid: &CMatrix) {
    if health::first_non_finite_c(grid.as_slice()).is_some() {
        health::record(|d| d.non_finite_stage += 1);
    }
}

/// Neutralises non-finite LLRs (0.0 = "no information") before they
/// reach the Viterbi decoder, recording each in the health ledger. A
/// NaN LLR would otherwise poison every path metric and turn the block
/// into undetected garbage; a zeroed LLR merely erases one bit's
/// evidence — degradation the decoder is built to absorb.
fn sanitize_llrs(llrs: &mut [f64]) {
    let mut bad = 0u64;
    for l in llrs.iter_mut() {
        if !l.is_finite() {
            *l = 0.0;
            bad += 1;
        }
    }
    if bad > 0 {
        health::record(|d| d.non_finite_llr += bad);
    }
}

/// Which waveform carries the block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Waveform {
    /// Legacy 4G/5G: symbols ride individual resource elements.
    Ofdm,
    /// REM signaling overlay: symbols spread over the grid via SFFT.
    Otfs,
}

/// How the receiver obtains channel state for equalisation.
///
/// This is the mechanism behind the paper's Fig 10 gap: a legacy OFDM
/// receiver equalises with pilot estimates that *age* within the
/// subframe — at HSR Doppler the channel rotates appreciably between
/// pilots, so the equaliser is systematically wrong and the BLER floors
/// even at high SNR. A delay-Doppler receiver tracks the multipath
/// profile `{h_p, tau_p, nu_p}`, which is stable (paper Appendix A),
/// and can *predict* the channel across the whole grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CsiModel {
    /// Genie-aided: exact gains everywhere (upper bound).
    Perfect,
    /// Pilot-symbol estimates held constant until the next pilot
    /// column (zero-order hold with the given period in OFDM symbols).
    /// LTE cell-specific reference signals give a period of ~4.
    PilotHold {
        /// Pilot spacing in OFDM symbols.
        period: usize,
    },
    /// Delay-Doppler profile tracking: the receiver knows the (slowly
    /// varying) path profile and predicts the time-frequency gains from
    /// it — accurate over the whole grid.
    DdProfile,
}

/// OTFS receiver architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OtfsReceiver {
    /// Two-step: MMSE in the time-frequency domain, then ISFFT.
    /// Cheap; loses a little to self-interference at low SNR.
    TwoStep,
    /// Sparse message-passing detection in the delay-Doppler domain
    /// (paper ref [21], [`crate::mp_detect`]). More compute, better
    /// low-SNR behaviour.
    MessagePassing,
}

/// Static configuration of a link.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Resource grid (also fixes the delay-Doppler grid for OTFS).
    pub grid: DdGrid,
    /// Constellation.
    pub modulation: Modulation,
    /// OFDM (legacy) or OTFS (REM overlay).
    pub waveform: Waveform,
    /// Receiver channel knowledge.
    pub csi: CsiModel,
    /// OTFS receiver (ignored for OFDM).
    pub otfs_receiver: OtfsReceiver,
}

impl LinkConfig {
    /// An LTE-subframe-sized signaling link (12 x 14, QPSK), the
    /// configuration the paper's Fig 10 uses (`M = 12, N = 14` for
    /// 1 ms). Legacy OFDM uses pilot-hold CSI (period 4, the LTE CRS
    /// spacing); the REM overlay tracks the delay-Doppler profile.
    pub fn signaling(waveform: Waveform) -> Self {
        let csi = match waveform {
            Waveform::Ofdm => CsiModel::PilotHold { period: 4 },
            Waveform::Otfs => CsiModel::DdProfile,
        };
        Self {
            grid: DdGrid::lte_subframe(),
            modulation: Modulation::Qpsk,
            waveform,
            csi,
            otfs_receiver: OtfsReceiver::TwoStep,
        }
    }

    /// Symbol capacity of the grid.
    pub fn capacity_symbols(&self) -> usize {
        self.grid.m * self.grid.n
    }

    /// Coded-bit capacity of the grid.
    pub fn capacity_bits(&self) -> usize {
        self.capacity_symbols() * self.modulation.bits_per_symbol()
    }

    /// Largest payload (information bits) a single block can carry
    /// after CRC, tail bits and rate-1/2 coding.
    pub fn max_payload_bits(&self) -> usize {
        (self.capacity_bits() / convcode::RATE_INV).saturating_sub(16 + convcode::TAIL_BITS)
    }
}

/// Outcome of one simulated block.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockOutcome {
    /// True when the CRC verified after decoding.
    pub crc_ok: bool,
    /// Payload bit errors after decoding (0 when `crc_ok`).
    pub bit_errors: usize,
    /// Effective post-equalisation SINR in dB seen by the decoder
    /// (per-slot mean for OFDM, grid-effective for OTFS).
    pub effective_sinr_db: f64,
}

/// Simulates one block through one channel realization at the given
/// average SNR. `payload` must fit [`LinkConfig::max_payload_bits`].
pub fn simulate_block(
    cfg: &LinkConfig,
    ch: &MultipathChannel,
    snr_db: f64,
    payload: &[bool],
    rng: &mut SimRng,
) -> BlockOutcome {
    with_thread_scratch(|ws| simulate_block_with(cfg, ch, snr_db, payload, rng, ws))
}

/// [`simulate_block`] with caller-provided DSP scratch: FFT plans, the
/// Viterbi trellis and the demapper buffers are reused across blocks
/// instead of being rebuilt per call (the Monte-Carlo workers thread
/// one scratch per worker through their whole trial stream).
pub fn simulate_block_with(
    cfg: &LinkConfig,
    ch: &MultipathChannel,
    snr_db: f64,
    payload: &[bool],
    rng: &mut SimRng,
    ws: &mut DspScratch,
) -> BlockOutcome {
    assert!(payload.len() <= cfg.max_payload_bits(), "payload exceeds block capacity");
    let _timing = rem_obs::metrics::span("rem_phy_block_us");
    rem_obs::metrics::inc("rem_phy_blocks_total");
    let cap_bits = cfg.capacity_bits();

    // Encode.
    let block = attach_crc(payload);
    let coded = convcode::encode(&block);
    let coded_len = coded.len();
    let mut padded = coded;
    padded.resize(cap_bits, false);
    let il = BlockInterleaver::for_len(cap_bits);

    let (dellrs, eff_sinr) = transmit_and_demap(cfg, ch, snr_db, &padded, &il, rng, ws);
    // Decode the full payload+CRC block, then verify integrity.
    let decoded_with_crc =
        convcode::decode_soft_with(&dellrs[..coded_len], block.len(), &mut ws.trellis)
            .expect("length checked");
    let crc_ok = check_crc(&decoded_with_crc).is_some();
    let bit_errors = payload
        .iter()
        .zip(&decoded_with_crc)
        .filter(|(a, b)| a != b)
        .count();

    if !(crc_ok && bit_errors == 0) {
        rem_obs::metrics::inc("rem_phy_crc_fail_total");
    }
    rem_obs::metrics::observe("rem_phy_bit_errors", bit_errors as u64);
    BlockOutcome {
        crc_ok: crc_ok && bit_errors == 0,
        bit_errors,
        effective_sinr_db: rem_num::stats::lin_to_db(eff_sinr.max(1e-12)),
    }
}

/// HARQ with chase combining: the same coded block is retransmitted up
/// to `max_tx` times over the evolving channel, the receiver *adds*
/// the deinterleaved LLRs of every copy (soft combining) and attempts
/// a decode after each. Returns `(crc_ok, transmissions_used,
/// effective_sinr_db_of_last_tx)`. Between transmissions the channel
/// advances by `retx_interval_s` (8 ms is the LTE HARQ RTT).
pub fn simulate_block_harq(
    cfg: &LinkConfig,
    ch: &MultipathChannel,
    snr_db: f64,
    payload: &[bool],
    max_tx: usize,
    retx_interval_s: f64,
    rng: &mut SimRng,
) -> (bool, usize, f64) {
    with_thread_scratch(|ws| {
        simulate_block_harq_with(cfg, ch, snr_db, payload, max_tx, retx_interval_s, rng, ws)
    })
}

/// [`simulate_block_harq`] with caller-provided DSP scratch.
#[allow(clippy::too_many_arguments)]
pub fn simulate_block_harq_with(
    cfg: &LinkConfig,
    ch: &MultipathChannel,
    snr_db: f64,
    payload: &[bool],
    max_tx: usize,
    retx_interval_s: f64,
    rng: &mut SimRng,
    ws: &mut DspScratch,
) -> (bool, usize, f64) {
    assert!(payload.len() <= cfg.max_payload_bits(), "payload exceeds block capacity");
    let cap_bits = cfg.capacity_bits();
    let block = attach_crc(payload);
    let coded = convcode::encode(&block);
    let coded_len = coded.len();
    let mut padded = coded;
    padded.resize(cap_bits, false);
    let il = BlockInterleaver::for_len(cap_bits);

    let mut combined = vec![0.0f64; cap_bits];
    let mut last_sinr = f64::NEG_INFINITY;
    for tx in 1..=max_tx.max(1) {
        let ch_t = ch.advanced_by((tx - 1) as f64 * retx_interval_s);
        let (dellrs, eff) = transmit_and_demap(cfg, &ch_t, snr_db, &padded, &il, rng, ws);
        last_sinr = rem_num::stats::lin_to_db(eff.max(1e-12));
        for (c, l) in combined.iter_mut().zip(&dellrs) {
            *c += *l;
        }
        let decoded =
            convcode::decode_soft_with(&combined[..coded_len], block.len(), &mut ws.trellis)
                .expect("length checked");
        if check_crc(&decoded).is_some() {
            return (true, tx, last_sinr);
        }
    }
    (false, max_tx.max(1), last_sinr)
}

/// One transmission of an (already padded) coded block: interleave,
/// map, run the channel, equalise per the CSI model, demap, and return
/// the *deinterleaved* LLRs plus the effective SINR (linear).
///
/// Composed from the three stage functions below so the batched driver
/// ([`crate::batch::LinkBatch`]) can run many blocks through each stage
/// in lockstep while staying bit-identical to this per-block path: the
/// stages are called in the same per-block order with the same
/// per-block RNG, only the interleaving *across* independent blocks
/// changes.
fn transmit_and_demap(
    cfg: &LinkConfig,
    ch: &MultipathChannel,
    snr_db: f64,
    padded_coded_bits: &[bool],
    il: &BlockInterleaver,
    rng: &mut SimRng,
    ws: &mut DspScratch,
) -> (Vec<f64>, f64) {
    let tx_syms = map_block(cfg, padded_coded_bits, il);
    let eq = propagate_and_equalize(cfg, ch, snr_db, &tx_syms, rng, ws);
    demap_and_deinterleave(cfg, &eq, il, ws)
}

/// Output of the propagation stage ([`propagate_and_equalize`]): either
/// an equalised symbol grid still to be soft-demapped, or — for the
/// message-passing OTFS receiver, whose detector emits bit beliefs
/// directly — the interleaved LLRs themselves.
pub(crate) enum Equalized {
    /// Equalised symbols plus the per-symbol noise variances the
    /// demapper should assume.
    Grid {
        /// Equalised symbol grid.
        eq_syms: CMatrix,
        /// Receiver-believed post-equalisation noise variance per slot.
        noise_vars: Vec<f64>,
        /// Effective SINR (linear).
        eff_sinr: f64,
    },
    /// Detector-produced interleaved LLRs (no demap stage needed).
    Llrs {
        /// Interleaved coded-bit LLRs.
        llrs: Vec<f64>,
        /// Effective SINR (linear).
        eff_sinr: f64,
    },
}

/// Stage 1 — map: interleave the padded coded bits and modulate them
/// onto the resource grid.
pub(crate) fn map_block(
    cfg: &LinkConfig,
    padded_coded_bits: &[bool],
    il: &BlockInterleaver,
) -> CMatrix {
    debug_assert_eq!(padded_coded_bits.len(), cfg.capacity_bits());
    let interleaved = il.interleave(padded_coded_bits);
    let symbols = modulate(&interleaved, cfg.modulation);
    debug_assert_eq!(symbols.len(), cfg.capacity_symbols());
    CMatrix::from_vec(cfg.grid.m, cfg.grid.n, symbols)
}

/// Stage 2 — propagate: realize the channel pass (true gains drive
/// propagation, the receiver equalises with whatever its CSI model
/// provides) and equalise per the configured waveform/receiver.
pub(crate) fn propagate_and_equalize(
    cfg: &LinkConfig,
    ch: &MultipathChannel,
    snr_db: f64,
    tx_syms: &CMatrix,
    rng: &mut SimRng,
    ws: &mut DspScratch,
) -> Equalized {
    let noise_var = db_to_lin(-snr_db);
    let grid = &cfg.grid;
    let cap_bits = cfg.capacity_bits();

    let gains = tf_channel(grid, ch);
    let est = estimated_gains(&gains, cfg.csi);
    let sinrs = slot_sinrs(&gains, grid, ch, noise_var);
    let ici_rel = ici_relative_power(ch.max_doppler_hz(), grid.t_sym);

    match cfg.waveform {
        Waveform::Ofdm => {
            let rx = transmit(tx_syms, &gains, grid, ch, noise_var, rng);
            let eq = zf_equalize(&rx, &est);
            // Post-ZF noise per slot as the *receiver* believes it:
            // (thermal + ICI) / |h_est|^2. CSI aging errors are invisible
            // to the receiver — that is precisely the failure mode.
            let nvs: Vec<f64> = est
                .as_slice()
                .iter()
                .map(|h| {
                    let g = h.norm_sqr();
                    if g < 1e-30 {
                        1e30
                    } else {
                        (noise_var + ici_rel * g) / g
                    }
                })
                .collect();
            let mean_sinr = rem_num::stats::mean(&sinrs);
            Equalized::Grid { eq_syms: eq, noise_vars: nvs, eff_sinr: mean_sinr }
        }
        Waveform::Otfs if cfg.otfs_receiver == OtfsReceiver::MessagePassing => {
            // Delay-Doppler message passing: demodulate the raw grid,
            // extract the sparse taps from the (CSI-model) channel, run
            // the soft MP detector and hand its bitwise LLRs straight
            // to the decoder.
            use crate::mp_detect::{beliefs_to_llrs, extract_taps, mp_detect_beliefs, MpConfig};
            use crate::otfs::isfft_into;

            let mut tx_tf = CMatrix::zeros(grid.m, grid.n);
            otfs_modulate_into(tx_syms, &mut tx_tf, ws);
            let rx = transmit(&tx_tf, &gains, grid, ch, noise_var, rng);
            // Received DD grid (unitary demod) and the channel's DD taps.
            let mut y_dd = CMatrix::zeros(grid.m, grid.n);
            otfs_demodulate_into(&rx, &mut y_dd, ws);
            let mut h_dd = CMatrix::zeros(grid.m, grid.n);
            isfft_into(&est, &mut h_dd, ws);
            let taps = extract_taps(&h_dd, 0.08);
            let beliefs =
                mp_detect_beliefs(&y_dd, &taps, cfg.modulation, noise_var, &MpConfig::default());
            let llrs = beliefs_to_llrs(&beliefs, cfg.modulation);
            debug_assert_eq!(llrs.len(), cap_bits);
            let eff = otfs_effective_sinr(&sinrs);
            spot_check_stage(&y_dd);
            Equalized::Llrs { llrs, eff_sinr: eff }
        }
        Waveform::Otfs => {
            let mut tx_tf = CMatrix::zeros(grid.m, grid.n);
            otfs_modulate_into(tx_syms, &mut tx_tf, ws);
            let rx = transmit(&tx_tf, &gains, grid, ch, noise_var, rng);
            let eq_tf = mmse_equalize(&rx, &est, noise_var);
            // MMSE bias: each slot is scaled by beta = |h|^2/(|h|^2+nv);
            // after ISFFT every DD symbol is scaled by the grid mean.
            let mean_beta: f64 = est
                .as_slice()
                .iter()
                .map(|h| h.norm_sqr() / (h.norm_sqr() + noise_var))
                .sum::<f64>()
                / est.as_slice().len() as f64;
            let mut dd = CMatrix::zeros(grid.m, grid.n);
            otfs_demodulate_into(&eq_tf, &mut dd, ws);
            if mean_beta > 1e-12 {
                dd.scale_mut(1.0 / mean_beta);
            }
            let eff = otfs_effective_sinr(&sinrs);
            let nv_eff = if eff > 0.0 { 1.0 / eff } else { 1e30 };
            let nvs = vec![nv_eff; cfg.capacity_symbols()];
            Equalized::Grid { eq_syms: dd, noise_vars: nvs, eff_sinr: eff }
        }
    }
}

/// Stage 3 — demap: soft-demap the equalised grid (one SIMD-capable
/// call with per-symbol noise variances), deinterleave and sanitize the
/// LLRs. Detector-produced LLRs skip straight to deinterleaving.
pub(crate) fn demap_and_deinterleave(
    cfg: &LinkConfig,
    eq: &Equalized,
    il: &BlockInterleaver,
    ws: &mut DspScratch,
) -> (Vec<f64>, f64) {
    match eq {
        Equalized::Llrs { llrs, eff_sinr } => {
            let mut dellrs = il.deinterleave(llrs);
            sanitize_llrs(&mut dellrs);
            (dellrs, *eff_sinr)
        }
        Equalized::Grid { eq_syms, noise_vars, eff_sinr } => {
            spot_check_stage(eq_syms);
            ws.llrs.clear();
            demodulate_soft_per_symbol_into(
                eq_syms.as_slice(),
                cfg.modulation,
                noise_vars,
                &mut ws.llrs,
            );
            debug_assert_eq!(ws.llrs.len(), cfg.capacity_bits());
            let mut dellrs = il.deinterleave(&ws.llrs);
            sanitize_llrs(&mut dellrs);
            (dellrs, *eff_sinr)
        }
    }
}

/// Applies the CSI model to the true gains: what the receiver's
/// equaliser believes the channel is.
fn estimated_gains(gains: &CMatrix, csi: CsiModel) -> CMatrix {
    match csi {
        CsiModel::Perfect | CsiModel::DdProfile => gains.clone(),
        CsiModel::PilotHold { period } => {
            let p = period.max(1);
            CMatrix::from_fn(gains.rows(), gains.cols(), |m, n| gains[(m, n - n % p)])
        }
    }
}

/// Declarative parameters of a Monte-Carlo BLER measurement: the link,
/// the channel statistics, the operating point, and how to execute it.
///
/// This replaces the positional-argument `measure_bler` call: the
/// scenario is a value (buildable, serialisable, comparable across
/// sweeps) and carries a `seed` instead of a threaded `&mut SimRng`.
/// Every trial derives its own RNG stream from `(seed, trial index)`,
/// which makes two things true at once:
///
/// * **Parallel determinism** — trials are independent, so
///   [`BlerScenario::outcomes`] fans them out over [`rem_exec::par_map`]
///   and any thread count (including 1) produces bit-identical results;
/// * **Paired realizations** — the channel and payload of trial `i`
///   depend only on `(seed, i)`, so two scenarios differing only in
///   waveform/receiver see *identical* channels per trial (the paper's
///   same-environment replay methodology at link level).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BlerScenario {
    /// Link configuration (grid, modulation, waveform, CSI, receiver).
    pub cfg: LinkConfig,
    /// 3GPP channel statistics the trials draw realizations from.
    pub model: ChannelModel,
    /// Client speed (m/s).
    pub speed_ms: f64,
    /// Carrier frequency (Hz).
    pub carrier_hz: f64,
    /// Average SNR per block (dB).
    pub snr_db: f64,
    /// Monte-Carlo trials (one coded block each).
    pub blocks: usize,
    /// Master seed; trial `i` uses the derived stream
    /// `child_rng(seed, "bler-trial-i")`.
    pub seed: u64,
    /// Worker threads (`0` = all available hardware threads).
    pub threads: usize,
    /// Blocks per stage-major batch: each worker pushes this many
    /// trials through the coded pipeline in lockstep via
    /// [`crate::batch::LinkBatch`] (`0`/`1` = the per-trial path).
    /// Outcomes are bit-identical for every batch size — trials carry
    /// their own RNG streams, so batching reorders only work *across*
    /// independent blocks, never within one. Absent in older serialized
    /// scenarios; defaults to [`DEFAULT_BATCH`].
    #[serde(default = "default_batch")]
    pub batch: usize,
}

/// Default [`BlerScenario::batch`] size: big enough to amortise
/// per-stage dispatch and keep each stage's code hot in the i-cache,
/// small enough that a worker's tail imbalance stays negligible.
pub const DEFAULT_BATCH: usize = 8;

fn default_batch() -> usize {
    DEFAULT_BATCH
}

impl BlerScenario {
    /// A scenario at the paper's Fig 10a operating point (HST-style
    /// defaults: 350 km/h, 2.6 GHz, 6 dB, 200 blocks, seed 1, all
    /// cores); adjust with the builder methods.
    pub fn new(cfg: LinkConfig, model: ChannelModel) -> Self {
        Self {
            cfg,
            model,
            speed_ms: rem_channel::doppler::kmh_to_ms(350.0),
            carrier_hz: 2.6e9,
            snr_db: 6.0,
            blocks: 200,
            seed: 1,
            threads: 0,
            batch: DEFAULT_BATCH,
        }
    }

    /// Shorthand for the signaling-link configuration of
    /// [`LinkConfig::signaling`] over `model`.
    pub fn signaling(waveform: Waveform, model: ChannelModel) -> Self {
        Self::new(LinkConfig::signaling(waveform), model)
    }

    /// Sets the client speed in km/h.
    pub fn with_speed_kmh(mut self, kmh: f64) -> Self {
        self.speed_ms = rem_channel::doppler::kmh_to_ms(kmh);
        self
    }

    /// Sets the client speed in m/s.
    pub fn with_speed_ms(mut self, speed_ms: f64) -> Self {
        self.speed_ms = speed_ms;
        self
    }

    /// Sets the carrier frequency (Hz).
    pub fn with_carrier_hz(mut self, carrier_hz: f64) -> Self {
        self.carrier_hz = carrier_hz;
        self
    }

    /// Sets the average SNR (dB).
    pub fn with_snr_db(mut self, snr_db: f64) -> Self {
        self.snr_db = snr_db;
        self
    }

    /// Sets the number of Monte-Carlo blocks.
    pub fn with_blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker thread count (`0` = all available).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the stage-major batch size (`0`/`1` = per-trial path).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Materialises trial `index`'s independent inputs on its derived
    /// RNG stream: the channel realization, the random payload, and the
    /// stream's continuation (which the pipeline draws noise from).
    /// This is the exact draw prefix of [`trial_with`](Self::trial_with),
    /// shared with the batched path so both consume identical streams.
    fn job(&self, index: usize) -> crate::batch::BatchJob {
        let mut rng = rem_num::rng::child_rng(self.seed, &format!("bler-trial-{index}"));
        let ch = self.model.realize(&mut rng, self.speed_ms, self.carrier_hz);
        let payload: Vec<bool> = (0..self.cfg.max_payload_bits()).map(|_| rng.gen()).collect();
        crate::batch::BatchJob { ch, payload, rng }
    }

    /// Runs trial `index` on its own derived RNG stream: realize the
    /// channel, draw a random payload, push the block through the full
    /// coded pipeline. Depends only on `(self, index)` — never on which
    /// thread runs it or what ran before.
    pub fn trial(&self, index: usize) -> BlockOutcome {
        with_thread_scratch(|ws| self.trial_with(index, ws))
    }

    /// [`trial`](Self::trial) with caller-provided DSP scratch (the
    /// per-worker state of [`outcomes`](Self::outcomes)). The scratch
    /// is a pure cache: the outcome depends only on `(self, index)`.
    pub fn trial_with(&self, index: usize, ws: &mut DspScratch) -> BlockOutcome {
        let mut job = self.job(index);
        simulate_block_with(&self.cfg, &job.ch, self.snr_db, &job.payload, &mut job.rng, ws)
    }

    /// All per-block outcomes in canonical trial order, computed on
    /// `self.threads` workers. Bit-identical for every thread count
    /// *and* batch size: each worker builds one [`DspScratch`] (plans,
    /// trellis, buffers) plus one [`crate::batch::LinkBatch`] and
    /// reuses them across every trial chunk it steals.
    pub fn outcomes(&self) -> Vec<BlockOutcome> {
        let batch = self.batch.max(1);
        if batch == 1 || self.blocks <= 1 {
            return rem_exec::par_map_with(self.threads, self.blocks, DspScratch::new, |ws, i| {
                self.trial_with(i, ws)
            });
        }
        // Stage-major path: workers steal whole chunks of consecutive
        // trials and run them through the pipeline in lockstep.
        let chunks = self.blocks.div_ceil(batch);
        let per_chunk = rem_exec::par_map_with(
            self.threads,
            chunks,
            || (crate::batch::LinkBatch::new(), DspScratch::new()),
            |(lb, ws), c| {
                let start = c * batch;
                let end = ((c + 1) * batch).min(self.blocks);
                let mut jobs: Vec<crate::batch::BatchJob> =
                    (start..end).map(|i| self.job(i)).collect();
                lb.run(&self.cfg, self.snr_db, &mut jobs, ws)
            },
        );
        per_chunk.into_iter().flatten().collect()
    }

    /// Monte-Carlo BLER: the fraction of trials whose CRC failed.
    pub fn run(&self) -> f64 {
        let failures = self.outcomes().iter().filter(|o| !o.crc_ok).count();
        failures as f64 / self.blocks.max(1) as f64
    }
}

/// Monte-Carlo BLER: fraction of failed blocks over `n_blocks`, with a
/// fresh channel realization per block.
#[deprecated(
    since = "0.1.0",
    note = "use `BlerScenario` (seed-based, parallel, canonical trial order) instead"
)]
pub fn measure_bler(
    cfg: &LinkConfig,
    model: ChannelModel,
    speed_ms: f64,
    carrier_hz: f64,
    snr_db: f64,
    n_blocks: usize,
    rng: &mut SimRng,
) -> f64 {
    let payload_len = cfg.max_payload_bits();
    let mut failures = 0usize;
    for _ in 0..n_blocks {
        let ch = model.realize(rng, speed_ms, carrier_hz);
        let payload: Vec<bool> = (0..payload_len).map(|_| rng.gen()).collect();
        let out = simulate_block(cfg, &ch, snr_db, &payload, rng);
        if !out.crc_ok {
            failures += 1;
        }
    }
    failures as f64 / n_blocks.max(1) as f64
}

/// Fast analytic BLER estimate for the mobility simulator: a logistic
/// waterfall calibrated against the Monte-Carlo pipeline for rate-1/2
/// conv-coded QPSK on a subframe. `effective_sinr_db` should be the
/// per-slot mean (OFDM) or grid-effective (OTFS) SINR.
pub fn bler_estimate(effective_sinr_db: f64, modulation: Modulation) -> f64 {
    // Waterfall midpoints (dB) and slopes fitted per constellation.
    let (mid, slope) = match modulation {
        Modulation::Qpsk => (1.8, 1.5),
        Modulation::Qam16 => (8.0, 1.2),
        Modulation::Qam64 => (14.0, 1.0),
    };
    1.0 / (1.0 + ((effective_sinr_db - mid) * slope).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::rng::rng_from_seed;

    fn payload(cfg: &LinkConfig, rng: &mut SimRng) -> Vec<bool> {
        (0..cfg.max_payload_bits()).map(|_| rng.gen()).collect()
    }

    #[test]
    fn capacities_are_consistent() {
        let cfg = LinkConfig::signaling(Waveform::Ofdm);
        assert_eq!(cfg.capacity_symbols(), 168);
        assert_eq!(cfg.capacity_bits(), 336);
        // 336/2 - 22 = 146 payload bits.
        assert_eq!(cfg.max_payload_bits(), 146);
    }

    #[test]
    fn high_snr_flat_channel_always_passes() {
        for wf in [Waveform::Ofdm, Waveform::Otfs] {
            let cfg = LinkConfig::signaling(wf);
            let mut rng = rng_from_seed(1);
            let ch = MultipathChannel::flat(rem_num::Complex64::ONE);
            for _ in 0..20 {
                let p = payload(&cfg, &mut rng);
                let out = simulate_block(&cfg, &ch, 30.0, &p, &mut rng);
                assert!(out.crc_ok, "{wf:?}");
                assert_eq!(out.bit_errors, 0);
            }
        }
    }

    #[test]
    fn very_low_snr_always_fails() {
        for wf in [Waveform::Ofdm, Waveform::Otfs] {
            let cfg = LinkConfig::signaling(wf);
            let mut rng = rng_from_seed(2);
            let ch = MultipathChannel::flat(rem_num::Complex64::ONE);
            let mut fails = 0;
            for _ in 0..10 {
                let p = payload(&cfg, &mut rng);
                if !simulate_block(&cfg, &ch, -15.0, &p, &mut rng).crc_ok {
                    fails += 1;
                }
            }
            assert!(fails >= 9, "{wf:?} fails={fails}");
        }
    }

    #[test]
    fn otfs_beats_ofdm_in_hst_fading() {
        // The Fig 10 shape: at mid SNR under high Doppler fading, the
        // OTFS waveform has (weakly) lower BLER than OFDM. Same seed =>
        // identical channel/payload per trial, so the comparison is
        // paired.
        let scenario = BlerScenario::signaling(Waveform::Ofdm, ChannelModel::Hst)
            .with_snr_db(4.0)
            .with_blocks(150)
            .with_seed(3);
        let b_ofdm = scenario.run();
        let b_otfs = BlerScenario { cfg: LinkConfig::signaling(Waveform::Otfs), ..scenario }.run();
        assert!(b_otfs <= b_ofdm + 0.02, "otfs={b_otfs} ofdm={b_ofdm}");
    }

    #[test]
    fn bler_monotone_in_snr() {
        let scenario = BlerScenario::signaling(Waveform::Ofdm, ChannelModel::Eva)
            .with_speed_ms(8.3)
            .with_carrier_hz(2e9)
            .with_blocks(60)
            .with_seed(4);
        let lo = scenario.with_snr_db(-5.0).run();
        let hi = scenario.with_snr_db(15.0).run();
        assert!(lo > hi, "lo={lo} hi={hi}");
    }

    #[test]
    fn scenario_is_thread_count_invariant() {
        // The determinism contract of the parallel engine: serial and
        // 4-worker runs of the same scenario are bit-identical.
        let scenario = BlerScenario::signaling(Waveform::Otfs, ChannelModel::Etu)
            .with_speed_kmh(300.0)
            .with_snr_db(2.0)
            .with_blocks(24)
            .with_seed(17);
        let serial = scenario.with_threads(1).outcomes();
        let parallel = scenario.with_threads(4).outcomes();
        assert_eq!(serial, parallel);
        assert_eq!(
            scenario.with_threads(1).run(),
            scenario.with_threads(4).run()
        );
    }

    #[test]
    fn batched_outcomes_match_per_trial_path() {
        // 13 blocks with batch 5 exercises a ragged tail chunk; the
        // batched pipeline must reproduce the per-trial path exactly.
        let scenario = BlerScenario::signaling(Waveform::Otfs, ChannelModel::Hst)
            .with_snr_db(3.0)
            .with_blocks(13)
            .with_seed(33);
        let per_trial = scenario.with_batch(1).outcomes();
        for batch in [2, 5, 13, 64] {
            assert_eq!(scenario.with_batch(batch).outcomes(), per_trial, "batch={batch}");
        }
        for (i, out) in per_trial.iter().enumerate() {
            assert_eq!(*out, scenario.trial(i), "trial {i}");
        }
    }

    #[test]
    fn batched_scenario_is_thread_count_invariant() {
        let scenario = BlerScenario::signaling(Waveform::Ofdm, ChannelModel::Eva)
            .with_snr_db(2.0)
            .with_blocks(18)
            .with_seed(44)
            .with_batch(4);
        assert_eq!(
            scenario.with_threads(1).outcomes(),
            scenario.with_threads(4).outcomes()
        );
    }

    #[test]
    fn scenario_deserializes_without_batch_field() {
        // Older checkpoints/manifests serialized scenarios before the
        // `batch` field existed; they must keep loading (and get the
        // default batch size).
        let mut json = serde_json::to_string(
            &BlerScenario::signaling(Waveform::Ofdm, ChannelModel::Hst).with_batch(DEFAULT_BATCH),
        )
        .unwrap();
        json = json.replace(&format!(",\"batch\":{DEFAULT_BATCH}"), "");
        assert!(!json.contains("batch"), "field not stripped: {json}");
        let parsed: BlerScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.batch, DEFAULT_BATCH);
    }

    #[test]
    fn scenario_trials_depend_only_on_seed_and_index() {
        let scenario = BlerScenario::signaling(Waveform::Ofdm, ChannelModel::Eva)
            .with_snr_db(5.0)
            .with_blocks(8)
            .with_seed(21);
        // trial(i) called directly matches its slot in outcomes(),
        // whatever the scheduling.
        let outcomes = scenario.with_threads(3).outcomes();
        for (i, out) in outcomes.iter().enumerate() {
            assert_eq!(*out, scenario.trial(i), "trial {i}");
        }
        // A different seed changes the draw.
        assert_ne!(
            scenario.trial(0).effective_sinr_db,
            scenario.with_seed(22).trial(0).effective_sinr_db
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_measure_bler_shim_still_works() {
        let cfg = LinkConfig::signaling(Waveform::Ofdm);
        let mut r1 = rng_from_seed(4);
        let a = measure_bler(&cfg, ChannelModel::Eva, 8.3, 2e9, 2.0, 30, &mut r1);
        let mut r2 = rng_from_seed(4);
        let b = measure_bler(&cfg, ChannelModel::Eva, 8.3, 2e9, 2.0, 30, &mut r2);
        assert!((0.0..=1.0).contains(&a));
        assert_eq!(a, b, "shim must stay deterministic");
    }

    #[test]
    fn analytic_estimate_is_monotone_and_bounded() {
        let mut prev = 1.0;
        for snr in -20..=30 {
            let b = bler_estimate(snr as f64, Modulation::Qpsk);
            assert!((0.0..=1.0).contains(&b));
            assert!(b <= prev + 1e-12);
            prev = b;
        }
        assert!(bler_estimate(-20.0, Modulation::Qpsk) > 0.99);
        assert!(bler_estimate(30.0, Modulation::Qpsk) < 1e-9);
    }

    #[test]
    fn analytic_estimate_tracks_monte_carlo_waterfall() {
        // At the QPSK midpoint the MC BLER should be within a broad
        // band of 0.5 on an AWGN (flat) channel.
        let cfg = LinkConfig::signaling(Waveform::Ofdm);
        let mut rng = rng_from_seed(5);
        let ch = MultipathChannel::flat(rem_num::Complex64::ONE);
        let mut fails = 0usize;
        let n = 120;
        for _ in 0..n {
            let p = payload(&cfg, &mut rng);
            if !simulate_block(&cfg, &ch, 1.8, &p, &mut rng).crc_ok {
                fails += 1;
            }
        }
        let mc = fails as f64 / n as f64;
        assert!(mc > 0.1 && mc < 0.9, "mc={mc} not in waterfall band");
    }

    #[test]
    fn llr_sanitizer_neutralises_and_counts_non_finite() {
        let _ = health::take_thread_stats();
        let mut llrs = [1.5, f64::NAN, -2.0, f64::INFINITY, f64::NEG_INFINITY];
        sanitize_llrs(&mut llrs);
        assert_eq!(llrs, [1.5, 0.0, -2.0, 0.0, 0.0]);
        let stats = health::take_thread_stats();
        assert_eq!(stats.non_finite_llr, 3);

        // Finite input: untouched, nothing recorded.
        let mut clean = [0.25, -0.5];
        sanitize_llrs(&mut clean);
        assert_eq!(clean, [0.25, -0.5]);
        assert!(health::take_thread_stats().is_clean());
    }

    #[test]
    fn stage_spot_check_counts_once_per_degraded_grid() {
        let _ = health::take_thread_stats();
        let good = CMatrix::from_fn(2, 3, |r, c| rem_num::c64(r as f64, c as f64));
        spot_check_stage(&good);
        assert!(health::take_thread_stats().is_clean());

        let mut bad = good.clone();
        bad[(0, 1)] = rem_num::c64(f64::NAN, 0.0);
        bad[(1, 2)] = rem_num::c64(0.0, f64::INFINITY);
        spot_check_stage(&bad);
        let stats = health::take_thread_stats();
        assert_eq!(stats.non_finite_stage, 1, "one grid, one event");
    }

    #[test]
    fn healthy_block_records_no_degradations() {
        let _ = health::take_thread_stats();
        let cfg = LinkConfig::signaling(Waveform::Otfs);
        let mut rng = rng_from_seed(9);
        let ch = MultipathChannel::flat(rem_num::Complex64::ONE);
        let p = payload(&cfg, &mut rng);
        let out = simulate_block(&cfg, &ch, 15.0, &p, &mut rng);
        assert!(out.crc_ok);
        assert!(health::take_thread_stats().is_clean());
    }

    #[test]
    fn effective_sinr_reported_close_to_input_on_flat_channel() {
        let cfg = LinkConfig::signaling(Waveform::Ofdm);
        let mut rng = rng_from_seed(6);
        let ch = MultipathChannel::flat(rem_num::Complex64::ONE);
        let p = payload(&cfg, &mut rng);
        let out = simulate_block(&cfg, &ch, 10.0, &p, &mut rng);
        assert!((out.effective_sinr_db - 10.0).abs() < 0.5);
    }
}

#[cfg(test)]
mod harq_tests {
    use super::*;
    use rem_channel::doppler::kmh_to_ms;
    use rem_num::rng::rng_from_seed;

    fn payload(cfg: &LinkConfig, rng: &mut SimRng) -> Vec<bool> {
        (0..cfg.max_payload_bits()).map(|_| rng.gen()).collect()
    }

    #[test]
    fn harq_single_tx_matches_simulate_block_statistics() {
        let cfg = LinkConfig::signaling(Waveform::Otfs);
        let ch = MultipathChannel::flat(rem_num::Complex64::ONE);
        let mut rng = rng_from_seed(1);
        let p = payload(&cfg, &mut rng);
        let (ok, tx, sinr) = simulate_block_harq(&cfg, &ch, 20.0, &p, 1, 8e-3, &mut rng);
        assert!(ok);
        assert_eq!(tx, 1);
        assert!((sinr - 20.0).abs() < 1.0);
    }

    #[test]
    fn combining_beats_independent_retries_at_low_snr() {
        // At an SNR where single transmissions almost always fail,
        // chase combining of 4 copies succeeds far more often than any
        // of 4 *independent* attempts.
        let cfg = LinkConfig::signaling(Waveform::Otfs);
        let snr = -3.5;
        let trials = 60;
        let mut rng = rng_from_seed(2);
        let mut combined_ok = 0;
        let mut independent_ok = 0;
        for _ in 0..trials {
            let ch = ChannelModel::Eva.realize(&mut rng, kmh_to_ms(200.0), 2e9);
            let p = payload(&cfg, &mut rng);
            if simulate_block_harq(&cfg, &ch, snr, &p, 4, 8e-3, &mut rng).0 {
                combined_ok += 1;
            }
            let any = (0..4).any(|_| simulate_block(&cfg, &ch, snr, &p, &mut rng).crc_ok);
            if any {
                independent_ok += 1;
            }
        }
        assert!(
            combined_ok > independent_ok,
            "combined={combined_ok} independent={independent_ok}"
        );
    }

    #[test]
    fn harq_uses_fewer_tx_at_higher_snr() {
        let cfg = LinkConfig::signaling(Waveform::Otfs);
        let mut rng = rng_from_seed(3);
        let mut tx_low = 0usize;
        let mut tx_high = 0usize;
        for _ in 0..25 {
            let ch = ChannelModel::Eva.realize(&mut rng, 8.3, 2e9);
            let p = payload(&cfg, &mut rng);
            tx_low += simulate_block_harq(&cfg, &ch, 0.0, &p, 6, 8e-3, &mut rng).1;
            tx_high += simulate_block_harq(&cfg, &ch, 15.0, &p, 6, 8e-3, &mut rng).1;
        }
        assert!(tx_high < tx_low, "high={tx_high} low={tx_low}");
    }

    #[test]
    fn hopeless_snr_exhausts_budget() {
        let cfg = LinkConfig::signaling(Waveform::Ofdm);
        let ch = MultipathChannel::flat(rem_num::Complex64::ONE);
        let mut rng = rng_from_seed(4);
        let p = payload(&cfg, &mut rng);
        let (ok, tx, _) = simulate_block_harq(&cfg, &ch, -20.0, &p, 3, 8e-3, &mut rng);
        assert!(!ok);
        assert_eq!(tx, 3);
    }
}

#[cfg(test)]
mod mp_receiver_tests {
    use super::*;
    use rem_channel::doppler::kmh_to_ms;
    use rem_num::rng::rng_from_seed;

    fn cfg_mp() -> LinkConfig {
        LinkConfig {
            otfs_receiver: OtfsReceiver::MessagePassing,
            ..LinkConfig::signaling(Waveform::Otfs)
        }
    }

    #[test]
    fn mp_receiver_decodes_clean_channel() {
        let cfg = cfg_mp();
        let ch = MultipathChannel::flat(rem_num::Complex64::ONE);
        let mut rng = rng_from_seed(1);
        let p: Vec<bool> = (0..cfg.max_payload_bits()).map(|i| i % 2 == 0).collect();
        let out = simulate_block(&cfg, &ch, 20.0, &p, &mut rng);
        assert!(out.crc_ok);
    }

    #[test]
    fn mp_receiver_works_on_doubly_selective_channel() {
        let mut rng = rng_from_seed(2);
        let cfg = cfg_mp();
        let mut fails = 0;
        for _ in 0..20 {
            let ch = ChannelModel::Hst.realize(&mut rng, kmh_to_ms(350.0), 2.6e9);
            let p: Vec<bool> = (0..cfg.max_payload_bits()).map(|_| rng.gen()).collect();
            if !simulate_block(&cfg, &ch, 12.0, &p, &mut rng).crc_ok {
                fails += 1;
            }
        }
        assert!(fails <= 3, "fails={fails}");
    }

    #[test]
    fn mp_not_worse_than_two_step_at_low_snr() {
        // Paired trials: same seed => identical channels and payloads
        // for both receivers.
        let scenario = BlerScenario::signaling(Waveform::Otfs, ChannelModel::Etu)
            .with_speed_kmh(300.0)
            .with_snr_db(2.0)
            .with_blocks(60)
            .with_seed(3);
        let two_step = scenario.run();
        let mp = BlerScenario { cfg: cfg_mp(), ..scenario }.run();
        assert!(mp <= two_step + 0.1, "mp={mp} two_step={two_step}");
    }
}
