//! Reusable DSP scratch state for the link-level hot paths.
//!
//! Every Monte-Carlo trial runs the same transforms over the same grid
//! sizes, so the expensive setup — FFT plans (twiddle tables, bit
//! reversal, Bluestein kernels), the Viterbi traceback trellis, and the
//! row/column/LLR working buffers — is hoisted into a [`DspScratch`]
//! that a worker builds once and threads through every block it
//! simulates (see `rem_exec::par_map_with`).
//!
//! Determinism: scratch contents are caches and fully-overwritten
//! buffers — they never influence computed values, so results are
//! bit-identical whether a scratch is fresh, reused, or shared across
//! trials on any thread count.

use crate::convcode::TrellisScratch;
use rem_num::{Complex64, FftPlanner, FftScratch};
use std::cell::RefCell;

/// Per-worker scratch for the coded-block pipeline: FFT planner + plan
/// scratch, matrix row/column buffers, the demapper's LLR buffer and
/// the Viterbi trellis.
#[derive(Debug, Default)]
pub struct DspScratch {
    /// Cached FFT plans keyed by length.
    pub(crate) planner: FftPlanner,
    /// Bluestein convolution scratch shared by every plan.
    pub(crate) fft: FftScratch,
    /// Row-length working buffer (grid `n`, or the time-domain FFT size).
    pub(crate) row: Vec<Complex64>,
    /// Column-length working buffer (grid `m`).
    pub(crate) col: Vec<Complex64>,
    /// Soft-demapper LLR accumulation buffer.
    pub(crate) llrs: Vec<f64>,
    /// Flat bit-packed Viterbi traceback.
    pub(crate) trellis: TrellisScratch,
}

impl DspScratch {
    /// An empty scratch; every buffer grows on first use and is reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// In-place planned forward FFT.
    pub fn fft_in_place(&mut self, data: &mut [Complex64]) {
        let plan = self.planner.plan(data.len());
        plan.forward(data, &mut self.fft);
    }

    /// In-place planned inverse FFT (with `1/N` scaling).
    pub fn ifft_in_place(&mut self, data: &mut [Complex64]) {
        let plan = self.planner.plan(data.len());
        plan.inverse(data, &mut self.fft);
    }

    /// In-place planned inverse FFT **without** the `1/N` scaling (the
    /// form the symplectic transforms consume).
    pub fn ifft_unnormalized_in_place(&mut self, data: &mut [Complex64]) {
        let plan = self.planner.plan(data.len());
        plan.inverse_unnormalized(data, &mut self.fft);
    }

    /// Resizes an internal buffer to exactly `len` elements and returns
    /// it (contents arbitrary — callers must overwrite).
    pub(crate) fn buf(v: &mut Vec<Complex64>, len: usize) -> &mut [Complex64] {
        if v.len() != len {
            v.resize(len, Complex64::ZERO);
        }
        &mut v[..]
    }
}

thread_local! {
    static SCRATCH: RefCell<DspScratch> = RefCell::new(DspScratch::new());
}

/// Runs `f` with this thread's shared [`DspScratch`]. The allocating
/// convenience wrappers (`sfft`, `decode_soft`, …) route through here
/// so repeated calls on one thread still reuse plans and buffers.
///
/// Re-entrant calls (a wrapper invoked while the thread scratch is
/// already borrowed) fall back to a fresh scratch instead of
/// panicking; hot loops avoid that cost by passing their scratch to
/// the `_with`/`_into` variants explicitly.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut DspScratch) -> R) -> R {
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut DspScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_num::c64;

    #[test]
    fn in_place_transforms_round_trip() {
        let mut ws = DspScratch::new();
        for n in [1usize, 2, 12, 14, 600] {
            let orig: Vec<Complex64> =
                (0..n).map(|i| c64((i as f64).sin(), (i as f64).cos())).collect();
            let mut data = orig.clone();
            ws.fft_in_place(&mut data);
            ws.ifft_in_place(&mut data);
            for (a, b) in data.iter().zip(&orig) {
                assert!(a.dist(*b) < 1e-9, "n={n}");
            }
        }
        // One plan per distinct length.
        assert_eq!(ws.planner.cached_lengths(), 5);
    }

    #[test]
    fn unnormalized_inverse_differs_by_exactly_n() {
        let mut ws = DspScratch::new();
        let n = 14;
        let orig: Vec<Complex64> = (0..n).map(|i| c64(i as f64, -(i as f64))).collect();
        let mut a = orig.clone();
        let mut b = orig.clone();
        ws.ifft_in_place(&mut a);
        ws.ifft_unnormalized_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!(x.scale(n as f64).dist(*y) < 1e-9);
        }
    }

    #[test]
    fn thread_scratch_is_reentrant_safe() {
        let outer = with_thread_scratch(|ws| {
            let mut data = vec![c64(1.0, 0.0); 8];
            ws.fft_in_place(&mut data);
            // A nested wrapper call while the thread scratch is held
            // must not panic.
            with_thread_scratch(|inner| {
                let mut d2 = vec![c64(1.0, 0.0); 8];
                inner.fft_in_place(&mut d2);
                d2[0]
            })
        });
        assert!(outer.dist(c64(8.0, 0.0)) < 1e-12);
    }
}
