//! Delay-Doppler channel estimation from reference signals (paper §5.2).
//!
//! REM reuses the 4G/5G cell reference signals but post-processes them
//! in the delay-Doppler domain (Fig 7): the receiver estimates the
//! time-frequency response per resource element from known pilots, then
//! applies the inverse symplectic transform to obtain the sampled
//! delay-Doppler channel matrix `H` — the input of Algorithm 1.
//!
//! The identity used here: with `H_tf[m, n] = sum_p h_p
//! e^{j 2 pi (n T nu_p - m df tau_p)}` and negligible `tau_p * nu_p`
//! products (microseconds times hundreds of Hz), the ISFFT of the
//! sampled `H_tf` equals the normalised delay-Doppler matrix
//! `(Γ/M) P (Φ/N)` of [`rem_channel::delaydoppler`].

use crate::dsp::{with_thread_scratch, DspScratch};
use crate::otfs::{isfft, isfft_into};
use rem_channel::{DdGrid, MultipathChannel};
use rem_num::rng::complex_gaussian;
use rem_num::stats::db_to_lin;
use rem_num::{CMatrix, SimRng};

/// Pilot-based time-frequency channel estimate: true gains plus
/// estimation noise at the given pilot SNR (per resource element).
pub fn estimate_tf(
    grid: &DdGrid,
    ch: &MultipathChannel,
    pilot_snr_db: f64,
    rng: &mut SimRng,
) -> CMatrix {
    let nv = db_to_lin(-pilot_snr_db);
    let truth = ch.tf_grid(grid.m, grid.n, grid.delta_f, grid.t_sym);
    CMatrix::from_fn(grid.m, grid.n, |m, n| truth[(m, n)] + complex_gaussian(rng, nv))
}

/// Transforms a sampled time-frequency channel to the delay-Doppler
/// domain (the smoothing step the paper credits for noise robustness:
/// white TF noise spreads evenly over the DD grid).
pub fn tf_to_dd(tf: &CMatrix) -> CMatrix {
    isfft(tf)
}

/// [`tf_to_dd`] into a caller-provided output matrix with reused plans
/// and buffers, for per-subframe estimation loops.
pub fn tf_to_dd_into(tf: &CMatrix, out: &mut CMatrix, ws: &mut DspScratch) {
    isfft_into(tf, out, ws);
}

/// End-to-end delay-Doppler channel estimation: pilots -> TF estimate
/// -> ISFFT. With `pilot_snr_db = f64::INFINITY` this returns the exact
/// sampled DD channel.
pub fn estimate_dd(
    grid: &DdGrid,
    ch: &MultipathChannel,
    pilot_snr_db: f64,
    rng: &mut SimRng,
) -> CMatrix {
    with_thread_scratch(|ws| estimate_dd_with(grid, ch, pilot_snr_db, rng, ws))
}

/// [`estimate_dd`] with caller-provided DSP scratch.
pub fn estimate_dd_with(
    grid: &DdGrid,
    ch: &MultipathChannel,
    pilot_snr_db: f64,
    rng: &mut SimRng,
    ws: &mut DspScratch,
) -> CMatrix {
    let mut out = CMatrix::zeros(grid.m, grid.n);
    if pilot_snr_db.is_infinite() {
        let truth = ch.tf_grid(grid.m, grid.n, grid.delta_f, grid.t_sym);
        tf_to_dd_into(&truth, &mut out, ws);
    } else {
        tf_to_dd_into(&estimate_tf(grid, ch, pilot_snr_db, rng), &mut out, ws);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_channel::delaydoppler::{dd_channel_matrix, snap_to_grid};
    use rem_channel::Path;
    use rem_num::rng::rng_from_seed;
    use rem_num::{c64, Complex64};

    #[test]
    fn noiseless_estimate_matches_gamma_p_phi_on_grid() {
        // Paths with zero tau*nu product: identity is exact.
        let grid = DdGrid::lte(16, 12);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.0, 3.0 * grid.delta_nu()),
            Path::new(c64(0.0, 0.5), 4.0 * grid.delta_tau(), 0.0),
        ]);
        let mut rng = rng_from_seed(1);
        let est = estimate_dd(&grid, &ch, f64::INFINITY, &mut rng);
        let truth = dd_channel_matrix(&grid, &ch);
        let rel = est.frobenius_dist(&truth) / truth.frobenius_norm();
        assert!(rel < 1e-9, "rel={rel}");
    }

    #[test]
    fn realistic_channel_small_relative_error() {
        // Realistic delays/Dopplers: tau*nu ~ 1e-4, identity holds to
        // a fraction of a percent.
        let grid = DdGrid::lte(24, 16);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(0.8, 0.1), 0.3e-6, 480.0),
            Path::new(c64(-0.2, 0.4), 1.4e-6, -230.0),
            Path::new(c64(0.1, -0.3), 2.2e-6, 120.0),
        ]);
        let mut rng = rng_from_seed(2);
        let est = estimate_dd(&grid, &ch, f64::INFINITY, &mut rng);
        let truth = dd_channel_matrix(&grid, &ch);
        let rel = est.frobenius_dist(&truth) / truth.frobenius_norm();
        assert!(rel < 0.01, "rel={rel}");
    }

    #[test]
    fn noise_is_spread_by_the_transform() {
        // White TF noise of variance nv maps to DD entries of variance
        // nv/(MN) each (the "smoothing" of paper §5.2): the error energy
        // is preserved but spread thin across the grid.
        let grid = DdGrid::lte(12, 14);
        let ch = MultipathChannel::flat(Complex64::ONE);
        let truth = tf_to_dd(&ch.tf_grid(grid.m, grid.n, grid.delta_f, grid.t_sym));
        let mut rng = rng_from_seed(3);
        let est = estimate_dd(&grid, &ch, 10.0, &mut rng);
        let err = &est - &truth;
        let mn = (grid.m * grid.n) as f64;
        // Total error energy ~ nv (= 0.1) spread over MN entries; each
        // entry holds ~ nv/MN.
        let per_entry = err.mean_power();
        let expected = 0.1 / mn;
        assert!(per_entry < 4.0 * expected, "per_entry={per_entry} expected~{expected}");
    }

    #[test]
    fn estimate_improves_with_pilot_snr() {
        let grid = DdGrid::lte(12, 14);
        let mut rng = rng_from_seed(4);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(0.9, 0.0), 0.5e-6, 200.0),
            Path::new(c64(0.0, 0.4), 1.5e-6, -100.0),
        ]);
        let truth = estimate_dd(&grid, &ch, f64::INFINITY, &mut rng);
        let lo = estimate_dd(&grid, &ch, 0.0, &mut rng);
        let hi = estimate_dd(&grid, &ch, 30.0, &mut rng);
        assert!(hi.frobenius_dist(&truth) < lo.frobenius_dist(&truth));
    }

    #[test]
    fn snapped_channel_concentrates_energy() {
        // After snapping to the grid, the DD estimate is sparse: the
        // top-P entries carry essentially all energy.
        let grid = DdGrid::lte(16, 12);
        let raw = MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.4e-6, 150.0),
            Path::new(c64(0.3, 0.3), 1.1e-6, -90.0),
        ]);
        let ch = snap_to_grid(&grid, &raw);
        let mut rng = rng_from_seed(5);
        let est = estimate_dd(&grid, &ch, f64::INFINITY, &mut rng);
        let mut mags: Vec<f64> = est.as_slice().iter().map(|z| z.norm_sqr()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top: f64 = mags[..2].iter().sum();
        let total: f64 = mags.iter().sum();
        assert!(top / total > 0.98, "top fraction {}", top / total);
    }
}

/// Embedded-pilot delay-Doppler channel estimation (Raviteja et al.,
/// paper ref [49]; the mechanism behind REM's delay-Doppler reference
/// signals in Fig 7).
///
/// A single pilot symbol is placed on the delay-Doppler grid; because
/// the channel acts as a 2-D (twisted) circular convolution in that
/// domain, the received grid *is* the channel response translated to
/// the pilot position. The estimator reads it back out, circularly
/// re-centred. Returns the estimated DD channel matrix (same
/// normalisation as [`estimate_dd`]).
pub fn estimate_dd_embedded_pilot(
    grid: &DdGrid,
    ch: &MultipathChannel,
    pilot_snr_db: f64,
    rng: &mut SimRng,
) -> CMatrix {
    use crate::ofdm::{tf_channel, transmit};
    use crate::otfs::{otfs_demodulate, otfs_modulate};

    // Pilot-only frame (the paper's reference signals are scheduled on
    // their own overlay slots, so no data interference here). Placing
    // the pilot at the origin makes re-centring trivial; amplitude
    // sqrt(MN) concentrates the frame's energy in one symbol the way a
    // boosted pilot does.
    let mn = (grid.m * grid.n) as f64;
    let mut dd = CMatrix::zeros(grid.m, grid.n);
    dd[(0, 0)] = rem_num::Complex64::from_real(mn.sqrt());

    let tx = otfs_modulate(&dd);
    let gains = tf_channel(grid, ch);
    let noise_var = if pilot_snr_db.is_infinite() { 0.0 } else { db_to_lin(-pilot_snr_db) };
    let rx = transmit(&tx, &gains, grid, ch, noise_var, rng);
    let y = otfs_demodulate(&rx);

    // y[k, l] = pilot_amp * h_dd[k, l] (+ noise): divide the amplitude
    // back out.
    CMatrix::from_fn(grid.m, grid.n, |k, l| y[(k, l)].scale(1.0 / mn.sqrt()))
}

#[cfg(test)]
mod pilot_tests {
    use super::*;
    use rem_channel::delaydoppler::snap_to_grid;
    use rem_channel::Path;
    use rem_num::rng::rng_from_seed;
    use rem_num::c64;

    fn test_channel(grid: &DdGrid) -> MultipathChannel {
        snap_to_grid(
            grid,
            &MultipathChannel::new(vec![
                Path::new(c64(0.9, 0.1), 0.5e-6, 200.0),
                Path::new(c64(0.0, 0.4), 1.6e-6, -120.0),
            ]),
        )
    }

    #[test]
    fn pilot_estimate_matches_isfft_estimate() {
        // The two estimation paths (genie TF + ISFFT vs embedded pilot
        // through the actual modem) must agree on a static-ish channel.
        let grid = DdGrid::lte(16, 12);
        let ch = test_channel(&grid);
        let mut rng = rng_from_seed(1);
        let genie = estimate_dd(&grid, &ch, f64::INFINITY, &mut rng);
        let pilot = estimate_dd_embedded_pilot(&grid, &ch, f64::INFINITY, &mut rng);
        let rel = pilot.frobenius_dist(&genie) / genie.frobenius_norm();
        assert!(rel < 0.05, "rel={rel}");
    }

    #[test]
    fn pilot_estimate_improves_with_snr() {
        let grid = DdGrid::lte(12, 14);
        let ch = test_channel(&grid);
        let mut rng = rng_from_seed(2);
        let truth = estimate_dd_embedded_pilot(&grid, &ch, f64::INFINITY, &mut rng);
        let lo = estimate_dd_embedded_pilot(&grid, &ch, 5.0, &mut rng);
        let hi = estimate_dd_embedded_pilot(&grid, &ch, 35.0, &mut rng);
        assert!(hi.frobenius_dist(&truth) < lo.frobenius_dist(&truth));
    }

    #[test]
    fn pilot_estimate_feeds_algorithm1_inputs() {
        // The sparse structure survives the round trip: top-2 entries
        // carry nearly all energy for a 2-path on-grid channel.
        let grid = DdGrid::lte(16, 12);
        let ch = test_channel(&grid);
        let mut rng = rng_from_seed(3);
        let est = estimate_dd_embedded_pilot(&grid, &ch, 30.0, &mut rng);
        let mut mags: Vec<f64> = est.as_slice().iter().map(|z| z.norm_sqr()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top: f64 = mags[..2].iter().sum();
        let total: f64 = mags.iter().sum();
        assert!(top / total > 0.9, "top fraction {}", top / total);
    }
}
