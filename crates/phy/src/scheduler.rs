//! Scheduling-based OTFS: signaling/data coexistence (paper §5.1).
//!
//! OTFS needs a *contiguous* `M x N` grid, but 4G/5G multiplexes
//! signaling and data freely over the OFDM grid. REM's insight is that
//! signaling radio bearers are already strictly prioritised, so the
//! scheduler can always carve a contiguous sub-grid for OTFS-modulated
//! signaling first and hand the remaining resource elements to
//! OFDM-modulated data — no 4G/5G redesign, no extra delay or spectrum.
//!
//! This module implements that scheduler over per-subframe grids. The
//! invariants the paper relies on (and our tests assert):
//!
//! 1. signaling is always served before any data,
//! 2. signaling always lands in one contiguous sub-grid,
//! 3. data occupies only the slots signaling left over,
//! 4. backlog carries over FIFO when a subframe fills up.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Kinds of signaling messages REM places in the overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Uplink measurement feedback (trigger phase).
    MeasurementReport,
    /// Downlink handover command (execute phase).
    HandoverCommand,
    /// Measurement (re)configuration.
    RrcReconfiguration,
    /// Delay-Doppler reference signals for channel estimation.
    ReferenceSignal,
    /// Anything else on the signaling radio bearer.
    Other,
}

/// A pending signaling message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignalingMessage {
    /// Monotone message id (assigned by [`Scheduler::enqueue_signaling`]).
    pub id: u64,
    /// What the message is.
    pub kind: MessageKind,
    /// Encoded payload.
    pub payload: Bytes,
}

/// A contiguous sub-grid allocation: `cols` whole columns starting at
/// column `n0` of the subframe grid (each column spans all `M'` rows,
/// so the region is trivially contiguous and OTFS-able as an
/// `M' x cols` grid).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubGridAlloc {
    /// First column (OFDM symbol index) of the region.
    pub n0: usize,
    /// Number of columns.
    pub cols: usize,
    /// Rows (always the full subcarrier dimension `M'`).
    pub rows: usize,
}

impl SubGridAlloc {
    /// Resource elements covered.
    pub fn slots(&self) -> usize {
        self.rows * self.cols
    }
}

/// The outcome of scheduling one subframe.
#[derive(Clone, Debug, PartialEq)]
pub struct SubframePlan {
    /// The OTFS signaling sub-grid, if any signaling was pending.
    pub signaling_region: Option<SubGridAlloc>,
    /// Signaling messages transmitted this subframe (FIFO order).
    pub signaling: Vec<SignalingMessage>,
    /// Data bytes transmitted this subframe.
    pub data_bytes: usize,
    /// Resource elements left for data.
    pub data_slots: usize,
}

/// The REM-adapted MAC scheduler.
#[derive(Debug)]
pub struct Scheduler {
    grid_m: usize,
    grid_n: usize,
    bits_per_slot: usize,
    next_id: u64,
    signaling_q: VecDeque<SignalingMessage>,
    data_backlog_bytes: usize,
}

impl Scheduler {
    /// Creates a scheduler for `grid_m x grid_n` subframes carrying
    /// `bits_per_slot` *information* bits per resource element (i.e.
    /// after modulation and coding; QPSK rate-1/2 carries 1).
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(grid_m: usize, grid_n: usize, bits_per_slot: usize) -> Self {
        assert!(grid_m > 0 && grid_n > 0 && bits_per_slot > 0);
        Self {
            grid_m,
            grid_n,
            bits_per_slot,
            next_id: 0,
            signaling_q: VecDeque::new(),
            data_backlog_bytes: 0,
        }
    }

    /// LTE defaults: 12 x 14 subframe, QPSK rate-1/2 (1 bit/slot).
    pub fn lte_default() -> Self {
        Self::new(12, 14, 1)
    }

    /// Queues a signaling message; returns its id.
    pub fn enqueue_signaling(&mut self, kind: MessageKind, payload: Bytes) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.signaling_q.push_back(SignalingMessage { id, kind, payload });
        id
    }

    /// Adds data bytes to the (infinite, byte-granular) data backlog.
    pub fn enqueue_data(&mut self, bytes: usize) {
        self.data_backlog_bytes += bytes;
    }

    /// Pending signaling messages.
    pub fn signaling_backlog(&self) -> usize {
        self.signaling_q.len()
    }

    /// Pending data bytes.
    pub fn data_backlog(&self) -> usize {
        self.data_backlog_bytes
    }

    fn slots_for_bits(&self, bits: usize) -> usize {
        bits.div_ceil(self.bits_per_slot)
    }

    /// Schedules one subframe: signaling first into a contiguous
    /// column-aligned sub-grid, data into the remainder.
    pub fn schedule_subframe(&mut self) -> SubframePlan {
        let total_slots = self.grid_m * self.grid_n;

        // Admit whole signaling messages FIFO while they fit.
        let mut sig: Vec<SignalingMessage> = Vec::new();
        let mut sig_bits = 0usize;
        while let Some(front) = self.signaling_q.front() {
            let bits = front.payload.len() * 8;
            let needed = self.slots_for_bits(sig_bits + bits);
            if needed > total_slots {
                break;
            }
            sig_bits += bits;
            sig.push(self.signaling_q.pop_front().unwrap());
        }

        // Column-aligned contiguous region sized to the admitted bits.
        let signaling_region = if sig.is_empty() {
            None
        } else {
            let slots = self.slots_for_bits(sig_bits).max(1);
            let cols = slots.div_ceil(self.grid_m).min(self.grid_n);
            Some(SubGridAlloc { n0: 0, cols, rows: self.grid_m })
        };

        let sig_slots = signaling_region.map_or(0, |r| r.slots());
        let data_slots = total_slots - sig_slots;
        let data_capacity_bytes = data_slots * self.bits_per_slot / 8;
        let data_bytes = self.data_backlog_bytes.min(data_capacity_bytes);
        self.data_backlog_bytes -= data_bytes;

        SubframePlan { signaling_region, signaling: sig, data_bytes, data_slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(n: usize) -> Bytes {
        Bytes::from(vec![0xA5u8; n])
    }

    #[test]
    fn empty_scheduler_gives_all_slots_to_data() {
        let mut s = Scheduler::lte_default();
        s.enqueue_data(1000);
        let plan = s.schedule_subframe();
        assert!(plan.signaling_region.is_none());
        assert_eq!(plan.data_slots, 12 * 14);
        assert_eq!(plan.data_bytes, 12 * 14 / 8);
    }

    #[test]
    fn signaling_served_before_data() {
        let mut s = Scheduler::lte_default();
        s.enqueue_data(10_000);
        s.enqueue_signaling(MessageKind::MeasurementReport, msg(4));
        let plan = s.schedule_subframe();
        let region = plan.signaling_region.expect("signaling must be scheduled");
        assert_eq!(plan.signaling.len(), 1);
        // Data only gets what signaling left over.
        assert_eq!(plan.data_slots, 12 * 14 - region.slots());
    }

    #[test]
    fn region_is_contiguous_and_within_grid() {
        let mut s = Scheduler::lte_default();
        s.enqueue_signaling(MessageKind::HandoverCommand, msg(10));
        let plan = s.schedule_subframe();
        let r = plan.signaling_region.unwrap();
        assert_eq!(r.rows, 12);
        assert!(r.n0 + r.cols <= 14);
        // 80 bits -> 80 slots -> ceil(80/12) = 7 columns.
        assert_eq!(r.cols, 7);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut s = Scheduler::lte_default();
        let a = s.enqueue_signaling(MessageKind::MeasurementReport, msg(2));
        let b = s.enqueue_signaling(MessageKind::HandoverCommand, msg(2));
        let plan = s.schedule_subframe();
        assert_eq!(plan.signaling.iter().map(|m| m.id).collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn oversize_signaling_carries_over() {
        let mut s = Scheduler::lte_default(); // capacity 168 bits
        s.enqueue_signaling(MessageKind::Other, msg(20)); // 160 bits, fits
        s.enqueue_signaling(MessageKind::Other, msg(20)); // would exceed
        let p1 = s.schedule_subframe();
        assert_eq!(p1.signaling.len(), 1);
        assert_eq!(s.signaling_backlog(), 1);
        let p2 = s.schedule_subframe();
        assert_eq!(p2.signaling.len(), 1);
        assert_eq!(s.signaling_backlog(), 0);
    }

    #[test]
    fn message_larger_than_subframe_is_never_silently_dropped() {
        let mut s = Scheduler::lte_default();
        s.enqueue_signaling(MessageKind::Other, msg(100)); // 800 bits > 168
        let p = s.schedule_subframe();
        // It cannot fit; it stays queued (a real stack would segment at
        // RLC — out of scope) and data proceeds.
        assert!(p.signaling.is_empty());
        assert_eq!(s.signaling_backlog(), 1);
        assert_eq!(p.data_slots, 168);
    }

    #[test]
    fn heavy_signaling_starves_data_by_design() {
        let mut s = Scheduler::lte_default();
        s.enqueue_data(10_000);
        for _ in 0..4 {
            s.enqueue_signaling(MessageKind::MeasurementReport, msg(5));
        }
        let p = s.schedule_subframe();
        // 4 * 40 = 160 bits -> 160 slots -> ceil(160/12)=14 columns: all.
        assert_eq!(p.signaling.len(), 4);
        assert_eq!(p.signaling_region.unwrap().cols, 14);
        assert_eq!(p.data_slots, 0);
        assert_eq!(p.data_bytes, 0);
    }

    #[test]
    fn data_backlog_drains_over_subframes() {
        let mut s = Scheduler::lte_default();
        s.enqueue_data(50);
        let p1 = s.schedule_subframe();
        assert_eq!(p1.data_bytes, 21); // 168 bits / 8
        let p2 = s.schedule_subframe();
        assert_eq!(p2.data_bytes, 21);
        let p3 = s.schedule_subframe();
        assert_eq!(p3.data_bytes, 8);
        assert_eq!(s.data_backlog(), 0);
    }

    #[test]
    fn ids_are_monotone() {
        let mut s = Scheduler::lte_default();
        let a = s.enqueue_signaling(MessageKind::Other, msg(1));
        let b = s.enqueue_signaling(MessageKind::Other, msg(1));
        assert!(b > a);
    }
}
