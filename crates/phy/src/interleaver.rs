//! Block interleaving.
//!
//! The convolutional code corrects scattered errors but collapses under
//! bursts; deep fades on adjacent resource elements produce exactly
//! such bursts. A row-in/column-out block interleaver spreads adjacent
//! coded bits across the grid so fades decorrelate at the decoder input
//! — part of why OFDM still works at all in fading, and a fair baseline
//! against OTFS's full-grid spreading.

/// A rectangular block interleaver with `rows * cols` capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockInterleaver {
    rows: usize,
    cols: usize,
}

impl BlockInterleaver {
    /// Creates an interleaver. `rows` controls the separation distance:
    /// bits adjacent at the input end up `rows` apart at the output.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "interleaver dims must be positive");
        Self { rows, cols }
    }

    /// Picks dimensions for a given block length: closest-to-square
    /// factorisation of the smallest rectangle that fits.
    pub fn for_len(len: usize) -> Self {
        let len = len.max(1);
        let rows = (len as f64).sqrt().ceil() as usize;
        let cols = len.div_ceil(rows);
        Self::new(rows, cols)
    }

    /// Capacity `rows * cols`.
    pub fn capacity(&self) -> usize {
        self.rows * self.cols
    }

    /// Interleaves a generic slice: writes row-wise, reads column-wise.
    /// Inputs shorter than capacity are handled by skipping the unused
    /// trailing positions (a "pruned" interleaver), so output length
    /// equals input length.
    pub fn interleave<T: Copy>(&self, input: &[T]) -> Vec<T> {
        let n = input.len();
        assert!(n <= self.capacity(), "input exceeds interleaver capacity");
        let mut out = Vec::with_capacity(n);
        for c in 0..self.cols {
            for r in 0..self.rows {
                let idx = r * self.cols + c;
                if idx < n {
                    out.push(input[idx]);
                }
            }
        }
        out
    }

    /// Inverse of [`interleave`](Self::interleave).
    pub fn deinterleave<T: Copy + Default>(&self, input: &[T]) -> Vec<T> {
        let n = input.len();
        assert!(n <= self.capacity(), "input exceeds interleaver capacity");
        let mut out = vec![T::default(); n];
        let mut pos = 0usize;
        for c in 0..self.cols {
            for r in 0..self.rows {
                let idx = r * self.cols + c;
                if idx < n {
                    out[idx] = input[pos];
                    pos += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rem_num::rng::rng_from_seed;

    #[test]
    fn round_trip_exact_capacity() {
        let il = BlockInterleaver::new(3, 4);
        let data: Vec<u32> = (0..12).collect();
        let inter = il.interleave(&data);
        assert_eq!(il.deinterleave(&inter), data);
        assert_ne!(inter, data);
    }

    #[test]
    fn round_trip_pruned() {
        let il = BlockInterleaver::new(4, 5);
        for n in [1usize, 7, 13, 19, 20] {
            let data: Vec<u32> = (0..n as u32).collect();
            assert_eq!(il.deinterleave(&il.interleave(&data)), data, "n={n}");
        }
    }

    #[test]
    fn spreads_adjacent_symbols() {
        let il = BlockInterleaver::new(8, 8);
        let data: Vec<u32> = (0..64).collect();
        let inter = il.interleave(&data);
        // Originally adjacent 0 and 1 must be far apart after interleaving.
        let p0 = inter.iter().position(|&x| x == 0).unwrap();
        let p1 = inter.iter().position(|&x| x == 1).unwrap();
        assert!(p0.abs_diff(p1) >= 8);
    }

    #[test]
    fn burst_becomes_scattered() {
        let il = BlockInterleaver::for_len(100);
        let data: Vec<u32> = (0..100).collect();
        let inter = il.interleave(&data);
        // Corrupt a contiguous burst in the interleaved domain, then
        // deinterleave and verify the corrupted positions are spread out.
        let burst: Vec<u32> = inter[10..15].to_vec();
        let positions: Vec<usize> =
            burst.iter().map(|b| data.iter().position(|d| d == b).unwrap()).collect();
        for w in positions.windows(2) {
            assert!(w[0].abs_diff(w[1]) > 1, "burst stayed adjacent: {positions:?}");
        }
    }

    #[test]
    fn for_len_fits() {
        for n in [1usize, 2, 10, 99, 100, 101, 4096] {
            let il = BlockInterleaver::for_len(n);
            assert!(il.capacity() >= n);
        }
    }

    #[test]
    fn random_round_trip_property() {
        let mut rng = rng_from_seed(1);
        for _ in 0..50 {
            let n = rng.gen_range(1..500);
            let il = BlockInterleaver::for_len(n);
            let data: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            assert_eq!(il.deinterleave(&il.interleave(&data)), data);
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn oversize_input_panics() {
        BlockInterleaver::new(2, 2).interleave(&[0u8; 5]);
    }
}
