//! Rate-1/2 constraint-length-7 convolutional code with Viterbi decoding.
//!
//! This is the classic (133, 171) octal code used by LTE control
//! channels (and many others). The encoder is zero-terminated (six tail
//! bits flush the register) so the decoder can start and end in state
//! 0. The Viterbi decoder accepts soft inputs (LLRs from the QAM
//! demapper) and degrades gracefully to hard decisions when given ±1.

/// Constraint length.
pub const K: usize = 7;
/// Number of trellis states.
pub const STATES: usize = 1 << (K - 1);
/// Generator polynomials (octal 133, 171).
pub const GENERATORS: [u32; 2] = [0o133, 0o171];
/// Code rate denominator: output bits per input bit.
pub const RATE_INV: usize = 2;
/// Tail bits appended by [`encode`].
pub const TAIL_BITS: usize = K - 1;

#[inline]
fn parity(x: u32) -> bool {
    x.count_ones() & 1 == 1
}

/// Output pair for input bit `bit` leaving state `state` (state = last
/// K-1 input bits, most recent in the high bit).
#[inline]
fn outputs(state: usize, bit: bool) -> [bool; 2] {
    let reg = ((bit as u32) << (K - 1)) | state as u32;
    [parity(reg & GENERATORS[0]), parity(reg & GENERATORS[1])]
}

#[inline]
fn next_state(state: usize, bit: bool) -> usize {
    ((state >> 1) | ((bit as usize) << (K - 2))) & (STATES - 1)
}

/// Encodes `payload` with zero termination. Output length is
/// `2 * (payload.len() + 6)` bits.
pub fn encode(payload: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(RATE_INV * (payload.len() + TAIL_BITS));
    let mut state = 0usize;
    for &b in payload.iter().chain(std::iter::repeat_n(&false, TAIL_BITS)) {
        let o = outputs(state, b);
        out.push(o[0]);
        out.push(o[1]);
        state = next_state(state, b);
    }
    out
}

/// Viterbi decode from soft inputs.
///
/// `llrs[i] > 0` means coded bit `i` is more likely 0 (same convention
/// as the QAM demapper). `payload_len` is the original message length
/// (tail bits are stripped). Returns `None` if `llrs` is too short.
pub fn decode_soft(llrs: &[f64], payload_len: usize) -> Option<Vec<bool>> {
    let total = payload_len + TAIL_BITS;
    if llrs.len() < RATE_INV * total {
        return None;
    }
    const INF: f64 = f64::INFINITY;
    let mut metric = vec![INF; STATES];
    metric[0] = 0.0;
    // survivors[t][s] = (previous state, input bit)
    let mut survivors: Vec<Vec<(u16, bool)>> = Vec::with_capacity(total);

    for t in 0..total {
        let l0 = llrs[2 * t];
        let l1 = llrs[2 * t + 1];
        let mut next = vec![INF; STATES];
        let mut surv = vec![(0u16, false); STATES];
        #[allow(clippy::needless_range_loop)] // trellis index math reads clearer
        for s in 0..STATES {
            let m = metric[s];
            if m == INF {
                continue;
            }
            for bit in [false, true] {
                let o = outputs(s, bit);
                let c = branch_cost(o[0], l0) + branch_cost(o[1], l1);
                let ns = next_state(s, bit);
                let cand = m + c;
                if cand < next[ns] {
                    next[ns] = cand;
                    surv[ns] = (s as u16, bit);
                }
            }
        }
        metric = next;
        survivors.push(surv);
    }

    // Zero-terminated: trace back from state 0.
    let mut state = 0usize;
    let mut bits = vec![false; total];
    for t in (0..total).rev() {
        let (prev, bit) = survivors[t][state];
        bits[t] = bit;
        state = prev as usize;
    }
    bits.truncate(payload_len);
    Some(bits)
}

/// Cost of hypothesising coded bit value `bit` when the channel says
/// `llr` (positive favours 0). Choosing the *likely* value costs 0;
/// choosing against the evidence costs `|llr|`.
#[inline]
fn branch_cost(bit: bool, llr: f64) -> f64 {
    if bit {
        llr.max(0.0)
    } else {
        (-llr).max(0.0)
    }
}

/// Hard-decision convenience wrapper: converts bits to ±1 pseudo-LLRs.
pub fn decode_hard(coded: &[bool], payload_len: usize) -> Option<Vec<bool>> {
    let llrs: Vec<f64> = coded.iter().map(|&b| if b { -1.0 } else { 1.0 }).collect();
    decode_soft(&llrs, payload_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rem_num::rng::rng_from_seed;

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn encode_length_and_rate() {
        let coded = encode(&random_bits(100, 1));
        assert_eq!(coded.len(), 2 * 106);
    }

    #[test]
    fn noiseless_round_trip() {
        for len in [1usize, 10, 57, 256] {
            let payload = random_bits(len, len as u64);
            let coded = encode(&payload);
            assert_eq!(decode_hard(&coded, len), Some(payload), "len={len}");
        }
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        let payload = random_bits(120, 5);
        let mut coded = encode(&payload);
        // Free distance 10: sparse single errors are easily corrected.
        for &i in &[3usize, 40, 90, 150, 210] {
            coded[i] = !coded[i];
        }
        assert_eq!(decode_hard(&coded, 120), Some(payload));
    }

    #[test]
    fn fails_gracefully_under_heavy_corruption() {
        let payload = random_bits(100, 6);
        let mut coded = encode(&payload);
        let mut rng = rng_from_seed(7);
        for b in coded.iter_mut() {
            if rng.gen::<f64>() < 0.5 {
                *b = rng.gen();
            }
        }
        // Decoder still returns *something* of the right length.
        let out = decode_hard(&coded, 100).unwrap();
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn soft_beats_hard_at_moderate_snr() {
        let mut rng = rng_from_seed(8);
        let trials = 60;
        let len = 100;
        let sigma = 0.9; // BPSK-ish noise level
        let mut hard_errs = 0usize;
        let mut soft_errs = 0usize;
        for t in 0..trials {
            let payload = random_bits(len, 100 + t);
            let coded = encode(&payload);
            // BPSK over AWGN: y = (1-2b) + n; llr = 2y/sigma^2.
            let ys: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    (if b { -1.0 } else { 1.0 })
                        + sigma * rem_num::rng::standard_normal(&mut rng)
                })
                .collect();
            let soft: Vec<f64> = ys.iter().map(|&y| 2.0 * y / (sigma * sigma)).collect();
            let hard: Vec<bool> = ys.iter().map(|&y| y < 0.0).collect();
            if decode_soft(&soft, len).unwrap() != payload {
                soft_errs += 1;
            }
            if decode_hard(&hard, len).unwrap() != payload {
                hard_errs += 1;
            }
        }
        assert!(soft_errs <= hard_errs, "soft={soft_errs} hard={hard_errs}");
    }

    #[test]
    fn empty_payload() {
        let coded = encode(&[]);
        assert_eq!(coded.len(), 2 * TAIL_BITS);
        assert_eq!(decode_hard(&coded, 0), Some(vec![]));
    }

    #[test]
    fn short_input_rejected() {
        assert!(decode_soft(&[1.0; 4], 100).is_none());
    }

    #[test]
    fn generators_have_free_distance_behaviour() {
        // A single input 1 produces exactly weight-10 output for
        // (133,171) when the register flushes: the code's free distance.
        let coded = encode(&[true]);
        let weight = coded.iter().filter(|&&b| b).count();
        assert_eq!(weight, 10);
    }
}
