//! Rate-1/2 constraint-length-7 convolutional code with Viterbi decoding.
//!
//! This is the classic (133, 171) octal code used by LTE control
//! channels (and many others). The encoder is zero-terminated (six tail
//! bits flush the register) so the decoder can start and end in state
//! 0. The Viterbi decoder accepts soft inputs (LLRs from the QAM
//! demapper) and degrades gracefully to hard decisions when given ±1.
//!
//! The add-compare-select inner loop dispatches on the active
//! [`rem_num::simd`] tier. Each next-state has exactly two
//! predecessors (differing only in their LSB) and a branch cost drawn
//! from a 4-entry table, so the update for a group of consecutive
//! next-states vectorises cleanly: AVX2 settles 4 states per iteration
//! with a gathered cost load, NEON settles 2. Decisions are
//! bit-identical to the scalar loop (same IEEE-754 additions, same
//! strict-less tie-breaking towards the even predecessor) and gated by
//! the same tier-equivalence tests as the FFT and demapper kernels.

use rem_num::simd::{self, SimdTier};

/// Constraint length.
pub const K: usize = 7;
/// Number of trellis states.
pub const STATES: usize = 1 << (K - 1);
/// Generator polynomials (octal 133, 171).
pub const GENERATORS: [u32; 2] = [0o133, 0o171];
/// Code rate denominator: output bits per input bit.
pub const RATE_INV: usize = 2;
/// Tail bits appended by [`encode`].
pub const TAIL_BITS: usize = K - 1;

#[inline]
fn parity(x: u32) -> bool {
    x.count_ones() & 1 == 1
}

/// Output pair for input bit `bit` leaving state `state` (state = last
/// K-1 input bits, most recent in the high bit).
#[inline]
fn outputs(state: usize, bit: bool) -> [bool; 2] {
    let reg = ((bit as u32) << (K - 1)) | state as u32;
    [parity(reg & GENERATORS[0]), parity(reg & GENERATORS[1])]
}

#[inline]
fn next_state(state: usize, bit: bool) -> usize {
    ((state >> 1) | ((bit as usize) << (K - 2))) & (STATES - 1)
}

/// Encodes `payload` with zero termination. Output length is
/// `2 * (payload.len() + 6)` bits.
pub fn encode(payload: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(RATE_INV * (payload.len() + TAIL_BITS));
    let mut state = 0usize;
    for &b in payload.iter().chain(std::iter::repeat_n(&false, TAIL_BITS)) {
        let o = outputs(state, b);
        out.push(o[0]);
        out.push(o[1]);
        state = next_state(state, b);
    }
    out
}

/// Per-state output pairs, packed at compile time.
///
/// Bits `0..2` hold `(o0, o1)` for input bit 0 and bits `2..4` for
/// input bit 1, with `o1` in the higher bit of each pair, so
/// `(packed >> (2 * bit)) & 3` indexes a per-step branch-cost table
/// laid out as `o0 + 2 * o1`.
const OUT_TABLE: [u8; STATES] = build_out_table();

const fn build_out_table() -> [u8; STATES] {
    let mut table = [0u8; STATES];
    let mut s = 0;
    while s < STATES {
        let mut packed = 0u8;
        let mut bit = 0;
        while bit < 2 {
            let reg = ((bit as u32) << (K - 1)) | s as u32;
            let o0 = (reg & GENERATORS[0]).count_ones() & 1;
            let o1 = (reg & GENERATORS[1]).count_ones() & 1;
            packed |= ((o0 | (o1 << 1)) as u8) << (2 * bit);
            bit += 1;
        }
        table[s] = packed;
        s += 1;
    }
    table
}

/// SIMD add-compare-select kernels over the flat bit-packed trellis.
///
/// Reformulation: instead of scattering from each live predecessor
/// (the scalar loop), gather into each next-state `ns`. Its two
/// predecessors are `s0 = (ns << 1) & (STATES-1)` and `s1 = s0 | 1`,
/// and the input bit consumed is the top bit of `ns`, so the branch
/// cost indices are compile-time constants per `ns` ([`IDX0`]/
/// [`IDX1`]). The winner is `min(metric[s0]+c0, metric[s1]+c1)` with
/// strict-less preference for `s0` — exactly the scalar loop's
/// ascending-`s` first-write-wins order — and the traceback bit is the
/// winning predecessor's LSB (0 for `s0`, 1 for `s1`). Unreachable
/// states propagate as `INF + cost = INF` with traceback bit 0, which
/// matches the scalar loop never touching them.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
mod acs {
    use super::{K, OUT_TABLE, STATES};

    /// `IDX0[ns]` = branch-cost index (`o0 + 2*o1`) on the edge from
    /// even predecessor `s0 = (ns << 1) & 63` into `ns`.
    pub(super) const IDX0: [i64; STATES] = build_idx(0);
    /// Same for the odd predecessor `s1 = s0 | 1`.
    pub(super) const IDX1: [i64; STATES] = build_idx(1);

    const fn build_idx(lsb: usize) -> [i64; STATES] {
        let mut t = [0i64; STATES];
        let mut ns = 0;
        while ns < STATES {
            let bit = ns >> (K - 2);
            let s = ((ns << 1) & (STATES - 1)) | lsb;
            t[ns] = ((OUT_TABLE[s] >> (2 * bit)) & 3) as i64;
            ns += 1;
        }
        t
    }

    /// One AVX2 trellis step: all 64 next-state metrics and the packed
    /// traceback word, 4 states per iteration.
    ///
    /// The predecessors of group `ns = 4g..4g+4` live at metric indices
    /// `base..base+8` with `base = 8*(g mod 8)`; an unpack/permute pair
    /// splits them into even (`s0`) and odd (`s1`) metric vectors, and
    /// the per-`ns` cost table entries come from a 64-bit gather on the
    /// 4-entry `costs`. Comparison is `_CMP_LT_OQ` so ties and INF-only
    /// groups resolve exactly like the scalar strict `<`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn step_avx2(
        metric: &[f64; STATES],
        next: &mut [f64; STATES],
        costs: &[f64; 4],
    ) -> u64 {
        use std::arch::x86_64::*;
        let mut tb = 0u64;
        for g in 0..STATES / 4 {
            let base = 8 * (g & (STATES / 8 - 1));
            let a = _mm256_loadu_pd(metric.as_ptr().add(base));
            let b = _mm256_loadu_pd(metric.as_ptr().add(base + 4));
            // [a0,b0,a2,b2] / [a1,b1,a3,b3] -> permute lanes 0,2,1,3
            // to de-interleave into metric[base + {0,2,4,6}] etc.
            let lo = _mm256_unpacklo_pd(a, b);
            let hi = _mm256_unpackhi_pd(a, b);
            let even = _mm256_permute4x64_pd::<0b1101_1000>(lo);
            let odd = _mm256_permute4x64_pd::<0b1101_1000>(hi);
            let i0 = _mm256_loadu_si256(IDX0.as_ptr().add(4 * g) as *const __m256i);
            let i1 = _mm256_loadu_si256(IDX1.as_ptr().add(4 * g) as *const __m256i);
            let c0 = _mm256_i64gather_pd::<8>(costs.as_ptr(), i0);
            let c1 = _mm256_i64gather_pd::<8>(costs.as_ptr(), i1);
            let cand0 = _mm256_add_pd(even, c0);
            let cand1 = _mm256_add_pd(odd, c1);
            let take = _mm256_cmp_pd::<_CMP_LT_OQ>(cand1, cand0);
            let best = _mm256_blendv_pd(cand0, cand1, take);
            _mm256_storeu_pd(next.as_mut_ptr().add(4 * g), best);
            tb |= ((_mm256_movemask_pd(take) as u64) & 0xf) << (4 * g);
        }
        tb
    }

    /// One NEON trellis step, 2 next-states per iteration.
    /// `vld2q_f64` de-interleaves even/odd predecessor metrics; the two
    /// cost lanes are assembled from the const index tables (a 4-entry
    /// gather has no NEON instruction, and the table fits in cache).
    #[cfg(target_arch = "aarch64")]
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn step_neon(
        metric: &[f64; STATES],
        next: &mut [f64; STATES],
        costs: &[f64; 4],
    ) -> u64 {
        use std::arch::aarch64::*;
        let mut tb = 0u64;
        for g in 0..STATES / 2 {
            let base = 4 * (g & (STATES / 4 - 1));
            let m = vld2q_f64(metric.as_ptr().add(base));
            let c0 = [
                costs[IDX0[2 * g] as usize],
                costs[IDX0[2 * g + 1] as usize],
            ];
            let c1 = [
                costs[IDX1[2 * g] as usize],
                costs[IDX1[2 * g + 1] as usize],
            ];
            let cand0 = vaddq_f64(m.0, vld1q_f64(c0.as_ptr()));
            let cand1 = vaddq_f64(m.1, vld1q_f64(c1.as_ptr()));
            let take = vcltq_f64(cand1, cand0);
            let best = vbslq_f64(take, cand1, cand0);
            vst1q_f64(next.as_mut_ptr().add(2 * g), best);
            let bits =
                (vgetq_lane_u64::<0>(take) & 1) | ((vgetq_lane_u64::<1>(take) & 1) << 1);
            tb |= bits << (2 * g);
        }
        tb
    }
}

/// Reusable traceback storage for the Viterbi decoder.
///
/// The survivor structure is a flat bit-packed trellis: one `u64` per
/// trellis step, where bit `s` records the LSB of the predecessor that
/// won state `s` (each state has exactly two predecessors differing
/// only in their LSB, and the input bit is the state's top bit, so one
/// bit per state per step fully determines the traceback). Hoisting
/// this buffer out of the decoder removes the per-call
/// `Vec<Vec<(u16, bool)>>` survivor allocation.
#[derive(Debug, Default, Clone)]
pub struct TrellisScratch {
    traceback: Vec<u64>,
}

impl TrellisScratch {
    /// Creates an empty scratch; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

// The bit-packed traceback stores one bit per state in a u64.
const _: () = assert!(STATES <= 64, "traceback word too narrow");

/// Shared add-compare-select + traceback core for hard and soft
/// decoding. `llr_at(i)` yields the LLR of coded bit `i` (positive
/// favours 0); the closure lets `decode_hard` feed ±1 pseudo-LLRs
/// without materialising a `Vec<f64>`.
fn viterbi_flat(
    llr_at: impl Fn(usize) -> f64,
    payload_len: usize,
    ws: &mut TrellisScratch,
    tier: SimdTier,
) -> Vec<bool> {
    let total = payload_len + TAIL_BITS;
    const INF: f64 = f64::INFINITY;
    let mut metric = [INF; STATES];
    let mut next = [INF; STATES];
    metric[0] = 0.0;
    ws.traceback.clear();
    ws.traceback.resize(total, 0);
    let tier = if tier.is_available() {
        tier
    } else {
        SimdTier::Scalar
    };

    for (t, tb_out) in ws.traceback.iter_mut().enumerate() {
        let l0 = llr_at(2 * t);
        let l1 = llr_at(2 * t + 1);
        // Branch costs for the four possible output pairs, indexed
        // o0 + 2*o1 (summation order matches the per-branch original,
        // keeping decisions bit-identical).
        let costs = [
            branch_cost(false, l0) + branch_cost(false, l1),
            branch_cost(true, l0) + branch_cost(false, l1),
            branch_cost(false, l0) + branch_cost(true, l1),
            branch_cost(true, l0) + branch_cost(true, l1),
        ];
        let tb = match tier {
            // The SIMD steps write every next-state (unreached ones as
            // INF), so no `next.fill(INF)` is needed on these arms.
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => unsafe { acs::step_avx2(&metric, &mut next, &costs) },
            #[cfg(target_arch = "aarch64")]
            SimdTier::Neon => unsafe { acs::step_neon(&metric, &mut next, &costs) },
            _ => {
                next.fill(INF);
                let mut tb = 0u64;
                for s in 0..STATES {
                    let m = metric[s];
                    if m == INF {
                        continue;
                    }
                    let packed = OUT_TABLE[s];
                    for bit in 0..2usize {
                        let c = costs[((packed >> (2 * bit)) & 3) as usize];
                        let ns = (s >> 1) | (bit << (K - 2));
                        let cand = m + c;
                        if cand < next[ns] {
                            next[ns] = cand;
                            tb = (tb & !(1u64 << ns)) | (((s & 1) as u64) << ns);
                        }
                    }
                }
                tb
            }
        };
        *tb_out = tb;
        std::mem::swap(&mut metric, &mut next);
    }

    // Zero-terminated: trace back from state 0. The input bit at step
    // t is the top bit of the state the step landed in; the surviving
    // predecessor is recovered from its recorded LSB.
    let mut state = 0usize;
    let mut bits = vec![false; total];
    for t in (0..total).rev() {
        bits[t] = (state >> (K - 2)) & 1 == 1;
        let lsb = ((ws.traceback[t] >> state) & 1) as usize;
        state = ((state & (STATES / 2 - 1)) << 1) | lsb;
    }
    bits.truncate(payload_len);
    bits
}

/// Viterbi decode from soft inputs.
///
/// `llrs[i] > 0` means coded bit `i` is more likely 0 (same convention
/// as the QAM demapper). `payload_len` is the original message length
/// (tail bits are stripped). Returns `None` if `llrs` is too short.
pub fn decode_soft(llrs: &[f64], payload_len: usize) -> Option<Vec<bool>> {
    crate::dsp::with_thread_scratch(|ws| decode_soft_with(llrs, payload_len, &mut ws.trellis))
}

/// [`decode_soft`] with caller-provided trellis scratch (no per-call
/// survivor allocation; used by the link-level hot loop).
pub fn decode_soft_with(
    llrs: &[f64],
    payload_len: usize,
    ws: &mut TrellisScratch,
) -> Option<Vec<bool>> {
    decode_soft_with_tier(llrs, payload_len, ws, simd::active_tier())
}

/// [`decode_soft_with`] on an explicit SIMD tier (scalar fallback when
/// the tier is unavailable on this CPU). Exposed so equivalence tests
/// and the `dsp_json` benchmark can compare tiers within one process.
pub fn decode_soft_with_tier(
    llrs: &[f64],
    payload_len: usize,
    ws: &mut TrellisScratch,
    tier: SimdTier,
) -> Option<Vec<bool>> {
    let total = payload_len + TAIL_BITS;
    if llrs.len() < RATE_INV * total {
        return None;
    }
    Some(viterbi_flat(|i| llrs[i], payload_len, ws, tier))
}

/// Cost of hypothesising coded bit value `bit` when the channel says
/// `llr` (positive favours 0). Choosing the *likely* value costs 0;
/// choosing against the evidence costs `|llr|`.
#[inline]
fn branch_cost(bit: bool, llr: f64) -> f64 {
    if bit {
        llr.max(0.0)
    } else {
        (-llr).max(0.0)
    }
}

/// Hard-decision convenience wrapper: equivalent to feeding ±1
/// pseudo-LLRs to [`decode_soft`].
pub fn decode_hard(coded: &[bool], payload_len: usize) -> Option<Vec<bool>> {
    crate::dsp::with_thread_scratch(|ws| decode_hard_with(coded, payload_len, &mut ws.trellis))
}

/// [`decode_hard`] with caller-provided trellis scratch. Routes
/// through the same flat-trellis core as soft decoding, deriving the
/// ±1 pseudo-LLRs on the fly instead of allocating a `Vec<f64>`.
pub fn decode_hard_with(
    coded: &[bool],
    payload_len: usize,
    ws: &mut TrellisScratch,
) -> Option<Vec<bool>> {
    let total = payload_len + TAIL_BITS;
    if coded.len() < RATE_INV * total {
        return None;
    }
    Some(viterbi_flat(
        |i| if coded[i] { -1.0 } else { 1.0 },
        payload_len,
        ws,
        simd::active_tier(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rem_num::rng::rng_from_seed;

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn encode_length_and_rate() {
        let coded = encode(&random_bits(100, 1));
        assert_eq!(coded.len(), 2 * 106);
    }

    #[test]
    fn noiseless_round_trip() {
        for len in [1usize, 10, 57, 256] {
            let payload = random_bits(len, len as u64);
            let coded = encode(&payload);
            assert_eq!(decode_hard(&coded, len), Some(payload), "len={len}");
        }
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        let payload = random_bits(120, 5);
        let mut coded = encode(&payload);
        // Free distance 10: sparse single errors are easily corrected.
        for &i in &[3usize, 40, 90, 150, 210] {
            coded[i] = !coded[i];
        }
        assert_eq!(decode_hard(&coded, 120), Some(payload));
    }

    #[test]
    fn fails_gracefully_under_heavy_corruption() {
        let payload = random_bits(100, 6);
        let mut coded = encode(&payload);
        let mut rng = rng_from_seed(7);
        for b in coded.iter_mut() {
            if rng.gen::<f64>() < 0.5 {
                *b = rng.gen();
            }
        }
        // Decoder still returns *something* of the right length.
        let out = decode_hard(&coded, 100).unwrap();
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn soft_beats_hard_at_moderate_snr() {
        let mut rng = rng_from_seed(8);
        let trials = 60;
        let len = 100;
        let sigma = 0.9; // BPSK-ish noise level
        let mut hard_errs = 0usize;
        let mut soft_errs = 0usize;
        for t in 0..trials {
            let payload = random_bits(len, 100 + t);
            let coded = encode(&payload);
            // BPSK over AWGN: y = (1-2b) + n; llr = 2y/sigma^2.
            let ys: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    (if b { -1.0 } else { 1.0 })
                        + sigma * rem_num::rng::standard_normal(&mut rng)
                })
                .collect();
            let soft: Vec<f64> = ys.iter().map(|&y| 2.0 * y / (sigma * sigma)).collect();
            let hard: Vec<bool> = ys.iter().map(|&y| y < 0.0).collect();
            if decode_soft(&soft, len).unwrap() != payload {
                soft_errs += 1;
            }
            if decode_hard(&hard, len).unwrap() != payload {
                hard_errs += 1;
            }
        }
        assert!(soft_errs <= hard_errs, "soft={soft_errs} hard={hard_errs}");
    }

    #[test]
    fn empty_payload() {
        let coded = encode(&[]);
        assert_eq!(coded.len(), 2 * TAIL_BITS);
        assert_eq!(decode_hard(&coded, 0), Some(vec![]));
    }

    #[test]
    fn short_input_rejected() {
        assert!(decode_soft(&[1.0; 4], 100).is_none());
    }

    #[test]
    fn generators_have_free_distance_behaviour() {
        // A single input 1 produces exactly weight-10 output for
        // (133,171) when the register flushes: the code's free distance.
        let coded = encode(&[true]);
        let weight = coded.iter().filter(|&&b| b).count();
        assert_eq!(weight, 10);
    }

    #[test]
    fn hard_and_soft_agree_on_noiseless_input_for_all_payload_lengths() {
        // Both decoders share the flat-trellis core; on noiseless
        // input they must produce identical (and correct) payloads for
        // every length 0..=64.
        for len in 0..=64usize {
            let payload = random_bits(len, 1000 + len as u64);
            let coded = encode(&payload);
            let llrs: Vec<f64> = coded.iter().map(|&b| if b { -1.0 } else { 1.0 }).collect();
            let hard = decode_hard(&coded, len);
            let soft = decode_soft(&llrs, len);
            assert_eq!(hard, soft, "len={len}");
            assert_eq!(hard, Some(payload), "len={len}");
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_scratch() {
        let mut shared = TrellisScratch::new();
        let mut rng = rng_from_seed(42);
        for trial in 0..20u64 {
            let payload = random_bits(80, 2000 + trial);
            let coded = encode(&payload);
            // Noisy LLRs so ties and near-ties exercise the survivor
            // bookkeeping, not just the noiseless fast path.
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    (if b { -1.0 } else { 1.0 })
                        + 1.2 * rem_num::rng::standard_normal(&mut rng)
                })
                .collect();
            let reused = decode_soft_with(&llrs, 80, &mut shared);
            let fresh = decode_soft_with(&llrs, 80, &mut TrellisScratch::new());
            assert_eq!(reused, fresh, "trial={trial}");
        }
    }

    /// The pre-flat-trellis decoder, kept verbatim as a reference to
    /// pin down bit-identical behaviour of the packed survivor path.
    fn reference_decode_soft(llrs: &[f64], payload_len: usize) -> Option<Vec<bool>> {
        let total = payload_len + TAIL_BITS;
        if llrs.len() < RATE_INV * total {
            return None;
        }
        const INF: f64 = f64::INFINITY;
        let mut metric = vec![INF; STATES];
        metric[0] = 0.0;
        let mut survivors: Vec<Vec<(u16, bool)>> = Vec::with_capacity(total);
        for t in 0..total {
            let l0 = llrs[2 * t];
            let l1 = llrs[2 * t + 1];
            let mut next = vec![INF; STATES];
            let mut surv = vec![(0u16, false); STATES];
            #[allow(clippy::needless_range_loop)]
            for s in 0..STATES {
                let m = metric[s];
                if m == INF {
                    continue;
                }
                for bit in [false, true] {
                    let o = outputs(s, bit);
                    let c = branch_cost(o[0], l0) + branch_cost(o[1], l1);
                    let ns = next_state(s, bit);
                    let cand = m + c;
                    if cand < next[ns] {
                        next[ns] = cand;
                        surv[ns] = (s as u16, bit);
                    }
                }
            }
            metric = next;
            survivors.push(surv);
        }
        let mut state = 0usize;
        let mut bits = vec![false; total];
        for t in (0..total).rev() {
            let (prev, bit) = survivors[t][state];
            bits[t] = bit;
            state = prev as usize;
        }
        bits.truncate(payload_len);
        Some(bits)
    }

    #[test]
    fn flat_trellis_is_bit_identical_to_reference_decoder() {
        let mut rng = rng_from_seed(9);
        for trial in 0..40u64 {
            let len = 1 + (trial as usize * 7) % 120;
            let payload = random_bits(len, 3000 + trial);
            let coded = encode(&payload);
            for sigma in [0.4, 0.9, 1.5] {
                let llrs: Vec<f64> = coded
                    .iter()
                    .map(|&b| {
                        let y = (if b { -1.0 } else { 1.0 })
                            + sigma * rem_num::rng::standard_normal(&mut rng);
                        2.0 * y / (sigma * sigma)
                    })
                    .collect();
                assert_eq!(
                    decode_soft(&llrs, len),
                    reference_decode_soft(&llrs, len),
                    "trial={trial} sigma={sigma}"
                );
            }
        }
    }

    /// Deterministic pseudo-noisy LLR stream (no RNG so the test runs
    /// in any environment): a sign pattern from the coded bits plus a
    /// bounded irrational-stride wobble producing ties, near-ties and
    /// sign flips.
    fn synthetic_llrs(coded: &[bool]) -> Vec<f64> {
        coded
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let t = i as f64;
                let wobble = (t * 0.618_034).fract() * 3.0 - 1.5;
                (if b { -1.0 } else { 1.0 }) + wobble
            })
            .collect()
    }

    #[test]
    fn simd_tiers_are_bit_identical_to_scalar() {
        use rem_num::SimdTier;
        for tier in [SimdTier::Avx2, SimdTier::Neon] {
            if !tier.is_available() {
                continue;
            }
            for len in [0usize, 1, 2, 5, 17, 40, 64, 100, 120] {
                let payload: Vec<bool> = (0..len).map(|i| (i * 7 + 3) % 5 < 2).collect();
                let coded = encode(&payload);
                let llrs = synthetic_llrs(&coded);
                let want =
                    decode_soft_with_tier(&llrs, len, &mut TrellisScratch::new(), SimdTier::Scalar);
                let got = decode_soft_with_tier(&llrs, len, &mut TrellisScratch::new(), tier);
                assert_eq!(got, want, "tier={} len={len}", tier.name());
            }
        }
    }

    #[test]
    fn simd_tiers_handle_saturated_and_zero_llrs() {
        use rem_num::SimdTier;
        // Extreme inputs: all-zero LLRs (every branch ties) and
        // infinite LLRs (unreachable-state INF propagation) must take
        // identical decisions on every tier.
        for tier in [SimdTier::Avx2, SimdTier::Neon] {
            if !tier.is_available() {
                continue;
            }
            let len = 24usize;
            let coded = encode(&[true; 24]);
            for llrs in [
                vec![0.0; coded.len()],
                coded
                    .iter()
                    .map(|&b| if b { f64::NEG_INFINITY } else { f64::INFINITY })
                    .collect::<Vec<f64>>(),
            ] {
                let want =
                    decode_soft_with_tier(&llrs, len, &mut TrellisScratch::new(), SimdTier::Scalar);
                let got = decode_soft_with_tier(&llrs, len, &mut TrellisScratch::new(), tier);
                assert_eq!(got, want, "tier={}", tier.name());
            }
        }
    }

    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    #[test]
    fn acs_index_tables_match_trellis_structure() {
        for ns in 0..STATES {
            let bit = ns >> (K - 2) == 1;
            for (lsb, table) in [(0usize, &acs::IDX0), (1usize, &acs::IDX1)] {
                let s = ((ns << 1) & (STATES - 1)) | lsb;
                // The edge s -> ns must exist and carry the claimed
                // output pair.
                assert_eq!(next_state(s, bit), ns);
                let o = outputs(s, bit);
                let want = (o[0] as i64) | ((o[1] as i64) << 1);
                assert_eq!(table[ns], want, "ns={ns} lsb={lsb}");
            }
        }
    }

    #[test]
    fn out_table_matches_outputs_fn() {
        for s in 0..STATES {
            for (bit, want) in [(false, outputs(s, false)), (true, outputs(s, true))] {
                let pair = (OUT_TABLE[s] >> (2 * bit as usize)) & 3;
                assert_eq!(pair & 1 == 1, want[0], "s={s} bit={bit}");
                assert_eq!(pair >> 1 == 1, want[1], "s={s} bit={bit}");
            }
        }
    }
}
