#![warn(missing_docs)]

//! # rem-phy
//!
//! The physical layer of the REM reproduction: Gray-coded QAM, CRC-16,
//! the (133,171) convolutional code with soft Viterbi decoding, block
//! interleaving, OFDM grid transmission through multipath channels
//! (with Doppler-induced ICI), the OTFS symplectic transform pair, the
//! scheduling-based OTFS signaling/data coexistence of paper §5.1,
//! delay-Doppler channel estimation (§5.2, Fig 7) and a link-level
//! block simulator producing the BLER curves of Fig 10.
//!
//! ```
//! use rem_phy::link::{BlerScenario, Waveform};
//! use rem_channel::models::ChannelModel;
//!
//! // A BLER measurement is a value: build it, then run it on any
//! // number of threads — the result is bit-identical for all of them.
//! let scenario = BlerScenario::signaling(Waveform::Otfs, ChannelModel::Hst)
//!     .with_snr_db(10.0)
//!     .with_blocks(20)
//!     .with_seed(7);
//! let bler = scenario.run();
//! assert!(bler < 0.5);
//! assert_eq!(scenario.with_threads(1).outcomes(),
//!            scenario.with_threads(4).outcomes());
//! ```

pub mod batch;
pub mod chanest;
pub mod convcode;
pub mod crc;
pub mod dsp;
pub mod interleaver;
pub mod link;
pub mod mp_detect;
pub mod ofdm;
pub mod ofdm_td;
pub mod otfs;
pub mod qam;
pub mod scfdma;
pub mod scheduler;

pub use batch::{BatchJob, LinkBatch};
pub use dsp::DspScratch;
pub use link::{simulate_block, simulate_block_with, BlerScenario, BlockOutcome, LinkConfig, Waveform};
#[allow(deprecated)]
pub use link::measure_bler;
pub use qam::Modulation;
pub use scheduler::{MessageKind, Scheduler};
