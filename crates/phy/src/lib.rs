#![warn(missing_docs)]

//! # rem-phy
//!
//! The physical layer of the REM reproduction: Gray-coded QAM, CRC-16,
//! the (133,171) convolutional code with soft Viterbi decoding, block
//! interleaving, OFDM grid transmission through multipath channels
//! (with Doppler-induced ICI), the OTFS symplectic transform pair, the
//! scheduling-based OTFS signaling/data coexistence of paper §5.1,
//! delay-Doppler channel estimation (§5.2, Fig 7) and a link-level
//! block simulator producing the BLER curves of Fig 10.
//!
//! ```
//! use rem_phy::link::{measure_bler, LinkConfig, Waveform};
//! use rem_channel::models::ChannelModel;
//! use rem_channel::doppler::kmh_to_ms;
//! use rem_num::rng::rng_from_seed;
//!
//! let mut rng = rng_from_seed(7);
//! let cfg = LinkConfig::signaling(Waveform::Otfs);
//! let bler = measure_bler(&cfg, ChannelModel::Hst, kmh_to_ms(350.0), 2.6e9,
//!                         10.0, 20, &mut rng);
//! assert!(bler < 0.5);
//! ```

pub mod chanest;
pub mod convcode;
pub mod crc;
pub mod interleaver;
pub mod link;
pub mod mp_detect;
pub mod ofdm;
pub mod ofdm_td;
pub mod otfs;
pub mod qam;
pub mod scfdma;
pub mod scheduler;

pub use link::{measure_bler, simulate_block, BlockOutcome, LinkConfig, Waveform};
pub use qam::Modulation;
pub use scheduler::{MessageKind, Scheduler};
