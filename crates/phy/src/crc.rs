//! CRC-16 block integrity check.
//!
//! Transport blocks carry a CRC so the receiver can detect residual
//! decoding errors — this is what turns bit errors into the *block*
//! error rate (BLER) the paper reports (Fig 2b, Fig 10). We use the
//! CCITT polynomial `x^16 + x^12 + x^5 + 1` (0x1021), init 0xFFFF,
//! matching the LTE-style 16-bit transport block CRC length.

/// Computes the CRC-16/CCITT-FALSE over a bit sequence (MSB-first per
/// conceptual byte; we operate directly on bits).
pub fn crc16(bits: &[bool]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in bits {
        let top = (crc >> 15) & 1 == 1;
        crc <<= 1;
        if top ^ b {
            crc ^= 0x1021;
        }
    }
    crc
}

/// Appends the 16 CRC bits (MSB first) to a payload.
pub fn attach_crc(payload: &[bool]) -> Vec<bool> {
    let crc = crc16(payload);
    let mut out = payload.to_vec();
    for i in (0..16).rev() {
        out.push((crc >> i) & 1 == 1);
    }
    out
}

/// Checks and strips the CRC; returns the payload on success.
pub fn check_crc(block: &[bool]) -> Option<Vec<bool>> {
    if block.len() < 16 {
        return None;
    }
    let (payload, tail) = block.split_at(block.len() - 16);
    let crc = crc16(payload);
    let ok = (0..16).rev().zip(tail).all(|(i, &b)| ((crc >> i) & 1 == 1) == b);
    ok.then(|| payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rem_num::rng::rng_from_seed;

    fn bits_of_str(s: &str) -> Vec<bool> {
        s.bytes().flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1)).collect()
    }

    #[test]
    fn known_vector_123456789() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(&bits_of_str("123456789")), 0x29B1);
    }

    #[test]
    fn attach_then_check_round_trips() {
        let mut rng = rng_from_seed(1);
        for len in [0usize, 1, 7, 64, 321] {
            let payload: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
            let block = attach_crc(&payload);
            assert_eq!(block.len(), len + 16);
            assert_eq!(check_crc(&block), Some(payload));
        }
    }

    #[test]
    fn single_bit_flip_detected() {
        let mut rng = rng_from_seed(2);
        let payload: Vec<bool> = (0..100).map(|_| rng.gen()).collect();
        let block = attach_crc(&payload);
        for i in 0..block.len() {
            let mut corrupted = block.clone();
            corrupted[i] = !corrupted[i];
            assert!(check_crc(&corrupted).is_none(), "missed flip at {i}");
        }
    }

    #[test]
    fn burst_errors_detected() {
        let mut rng = rng_from_seed(3);
        let payload: Vec<bool> = (0..200).map(|_| rng.gen()).collect();
        let block = attach_crc(&payload);
        // All bursts up to 16 bits are caught by a 16-bit CRC.
        for start in [0usize, 17, 100] {
            for blen in 2..=16usize {
                let mut c = block.clone();
                for b in c[start..start + blen].iter_mut() {
                    *b = !*b;
                }
                assert!(check_crc(&c).is_none(), "missed burst {start}+{blen}");
            }
        }
    }

    #[test]
    fn too_short_rejected() {
        assert!(check_crc(&[true; 15]).is_none());
    }
}
