//! OFDM grid transmission through a multipath channel.
//!
//! We model the legacy 4G/5G physical layer at the resource-element
//! level: symbol `X[m, n]` (subcarrier `m`, OFDM symbol `n`) is
//! received as `Y = H[m, n] X + ici + awgn`, where `H` is the sampled
//! time-frequency channel and the Doppler-induced inter-carrier
//! interference is an extra Gaussian term (see
//! [`rem_channel::noise::ici_relative_power`]). Equalisers and
//! per-slot SINRs live here too; they feed both the link simulator and
//! REM's SNR-based handover policy.

use rem_channel::noise::ici_relative_power;
use rem_channel::{DdGrid, MultipathChannel};
use rem_num::rng::complex_gaussian;
use rem_num::{CMatrix, SimRng};

/// Samples the time-frequency channel gains of `ch` on `grid`:
/// entry `(m, n)` is `H(n T, m delta_f)`.
pub fn tf_channel(grid: &DdGrid, ch: &MultipathChannel) -> CMatrix {
    ch.tf_grid(grid.m, grid.n, grid.delta_f, grid.t_sym)
}

/// Transmits a TF-domain grid of unit-average-power symbols through the
/// channel: per-slot multiplicative gain plus ICI plus AWGN.
///
/// `noise_var` is the thermal noise variance per resource element
/// (linear; `1 / snr` for unit signal power).
pub fn transmit(
    tx: &CMatrix,
    gains: &CMatrix,
    grid: &DdGrid,
    ch: &MultipathChannel,
    noise_var: f64,
    rng: &mut SimRng,
) -> CMatrix {
    assert_eq!(tx.shape(), gains.shape());
    let ici_rel = ici_relative_power(ch.max_doppler_hz(), grid.t_sym);
    CMatrix::from_fn(tx.rows(), tx.cols(), |m, n| {
        let h = gains[(m, n)];
        let sig = h * tx[(m, n)];
        let ici_var = ici_rel * h.norm_sqr();
        sig + complex_gaussian(rng, noise_var + ici_var)
    })
}

/// Zero-forcing equalisation: `x_hat = y / h`. Slots whose gain is
/// (numerically) zero are left as zero.
pub fn zf_equalize(rx: &CMatrix, gains: &CMatrix) -> CMatrix {
    CMatrix::from_fn(rx.rows(), rx.cols(), |m, n| {
        let h = gains[(m, n)];
        if h.norm_sqr() < 1e-30 {
            rem_num::Complex64::ZERO
        } else {
            rx[(m, n)] / h
        }
    })
}

/// MMSE equalisation: `x_hat = y h* / (|h|^2 + noise_var)`.
pub fn mmse_equalize(rx: &CMatrix, gains: &CMatrix, noise_var: f64) -> CMatrix {
    CMatrix::from_fn(rx.rows(), rx.cols(), |m, n| {
        let h = gains[(m, n)];
        rx[(m, n)] * h.conj() / (h.norm_sqr() + noise_var)
    })
}

/// Per-slot SINRs (linear) including the ICI floor: the quantity an
/// OFDM receiver would measure per resource element. Row-major order.
pub fn slot_sinrs(gains: &CMatrix, grid: &DdGrid, ch: &MultipathChannel, noise_var: f64) -> Vec<f64> {
    let ici_rel = ici_relative_power(ch.max_doppler_hz(), grid.t_sym);
    gains
        .as_slice()
        .iter()
        .map(|h| {
            let g = h.norm_sqr();
            g / (noise_var + g * ici_rel)
        })
        .collect()
}

/// Effective post-MMSE SINR of an OTFS symbol spread over slots with
/// the given per-slot SINRs: the harmonic-MMSE form
/// `[(1/K) sum 1/(sinr_i + 1)]^{-1} - 1`. This is the grid-averaged
/// channel an OTFS symbol experiences (paper §5.1: full time-frequency
/// diversity).
pub fn otfs_effective_sinr(slot_sinrs: &[f64]) -> f64 {
    if slot_sinrs.is_empty() {
        return 0.0;
    }
    let mean_mse: f64 =
        slot_sinrs.iter().map(|&s| 1.0 / (s + 1.0)).sum::<f64>() / slot_sinrs.len() as f64;
    (1.0 / mean_mse - 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_channel::Path;
    use rem_num::rng::rng_from_seed;
    use rem_num::{c64, Complex64};

    fn flat_grid() -> (DdGrid, MultipathChannel) {
        (DdGrid::lte(8, 10), MultipathChannel::flat(c64(0.8, -0.6)))
    }

    #[test]
    fn noiseless_flat_channel_zf_recovers_exactly() {
        let (grid, ch) = flat_grid();
        let gains = tf_channel(&grid, &ch);
        let tx = CMatrix::from_fn(8, 10, |r, c| c64(r as f64 - 3.0, c as f64 * 0.2));
        let mut rng = rng_from_seed(1);
        let rx = transmit(&tx, &gains, &grid, &ch, 0.0, &mut rng);
        let eq = zf_equalize(&rx, &gains);
        assert!(eq.frobenius_dist(&tx) < 1e-9);
    }

    #[test]
    fn tf_channel_flat_is_constant_magnitude() {
        let (grid, ch) = flat_grid();
        let gains = tf_channel(&grid, &ch);
        for g in gains.as_slice() {
            assert!((g.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn multipath_channel_is_frequency_selective() {
        let grid = DdGrid::lte(64, 4);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(0.7, 0.0), 0.0, 0.0),
            Path::new(c64(0.7, 0.0), 2e-6, 0.0),
        ]);
        let gains = tf_channel(&grid, &ch);
        let mags: Vec<f64> = (0..64).map(|m| gains[(m, 0)].abs()).collect();
        let spread = mags.iter().cloned().fold(0.0f64, f64::max)
            - mags.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.5, "selective channel should vary, spread={spread}");
    }

    #[test]
    fn doppler_channel_is_time_selective() {
        let grid = DdGrid::lte(4, 64);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(0.7, 0.0), 0.0, 300.0),
            Path::new(c64(0.7, 0.0), 0.0, -300.0),
        ]);
        let gains = tf_channel(&grid, &ch);
        let mags: Vec<f64> = (0..64).map(|n| gains[(0, n)].abs()).collect();
        let spread = mags.iter().cloned().fold(0.0f64, f64::max)
            - mags.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.5, "time-varying channel should vary, spread={spread}");
    }

    #[test]
    fn noise_floor_scales_with_variance() {
        let (grid, ch) = flat_grid();
        let gains = tf_channel(&grid, &ch);
        let tx = CMatrix::zeros(8, 10);
        let mut rng = rng_from_seed(2);
        let rx = transmit(&tx, &gains, &grid, &ch, 0.25, &mut rng);
        // Received power should be ~noise variance (zero signal, static
        // channel so no ICI).
        assert!((rx.mean_power() - 0.25).abs() < 0.08);
    }

    #[test]
    fn mmse_approaches_zf_at_high_snr() {
        let (grid, ch) = flat_grid();
        let gains = tf_channel(&grid, &ch);
        let tx = CMatrix::from_fn(8, 10, |r, c| c64(0.3 * r as f64, -0.1 * c as f64));
        let mut rng = rng_from_seed(3);
        let rx = transmit(&tx, &gains, &grid, &ch, 0.0, &mut rng);
        let zf = zf_equalize(&rx, &gains);
        let mmse = mmse_equalize(&rx, &gains, 1e-12);
        assert!(zf.frobenius_dist(&mmse) < 1e-6);
    }

    #[test]
    fn slot_sinrs_flat_channel() {
        let (grid, ch) = flat_grid();
        let gains = tf_channel(&grid, &ch);
        let s = slot_sinrs(&gains, &grid, &ch, 0.1);
        for &v in &s {
            assert!((v - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn otfs_sinr_equals_slot_sinr_when_flat() {
        let s = vec![10.0; 40];
        assert!((otfs_effective_sinr(&s) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn otfs_sinr_beats_worst_slot_and_loses_to_best() {
        let s = vec![100.0, 100.0, 0.1, 100.0];
        let eff = otfs_effective_sinr(&s);
        assert!(eff > 0.1 && eff < 100.0);
        // Diversity: far better than the deep fade alone.
        assert!(eff > 3.0, "eff={eff}");
    }

    #[test]
    fn otfs_sinr_empty_is_zero() {
        assert_eq!(otfs_effective_sinr(&[]), 0.0);
    }

    #[test]
    fn ici_raises_error_floor_at_high_doppler() {
        // Same SNR, one static channel vs one with large Doppler: the
        // Doppler case must show lower per-slot SINR due to ICI.
        let grid = DdGrid::lte(8, 8);
        let static_ch = MultipathChannel::flat(Complex64::ONE);
        let fast_ch = MultipathChannel::new(vec![Path::new(Complex64::ONE, 0.0, 650.0)]);
        let gs = tf_channel(&grid, &static_ch);
        let gf = tf_channel(&grid, &fast_ch);
        let ss = slot_sinrs(&gs, &grid, &static_ch, 1e-4);
        let sf = slot_sinrs(&gf, &grid, &fast_ch, 1e-4);
        assert!(sf[0] < ss[0]);
    }
}

#[cfg(test)]
mod estimation_robustness_tests {
    use super::*;
    use rem_num::rng::{complex_gaussian, rng_from_seed};
    use rem_num::{c64, CMatrix};

    /// MMSE degrades gracefully with noisy channel estimates where ZF
    /// blows up on near-zero estimated gains.
    #[test]
    fn mmse_robust_to_bad_estimates_where_zf_explodes() {
        let grid = DdGrid::lte(8, 8);
        let ch = MultipathChannel::flat(c64(0.05, 0.0)); // weak channel
        let gains = tf_channel(&grid, &ch);
        let tx = CMatrix::from_fn(8, 8, |_, _| c64(0.7071, 0.7071));
        let mut rng = rng_from_seed(1);
        let rx = transmit(&tx, &gains, &grid, &ch, 0.01, &mut rng);
        // Estimates corrupted toward zero.
        let est = CMatrix::from_fn(8, 8, |m, n| {
            gains[(m, n)].scale(0.1) + complex_gaussian(&mut rng, 1e-6)
        });
        let zf = zf_equalize(&rx, &est);
        let mmse = mmse_equalize(&rx, &est, 0.01);
        // ZF amplifies noise by 1/|est|^2 ~ 400x; MMSE caps it.
        assert!(mmse.max_abs() < zf.max_abs());
        assert!(mmse.as_slice().iter().all(|z| z.is_finite()));
    }

    #[test]
    fn zf_handles_exact_zero_gain_without_nan() {
        let rx = CMatrix::from_fn(2, 2, |_, _| c64(1.0, 0.0));
        let est = CMatrix::zeros(2, 2);
        let eq = zf_equalize(&rx, &est);
        assert!(eq.as_slice().iter().all(|z| z.is_finite()));
    }
}
