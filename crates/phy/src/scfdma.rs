//! SC-FDMA (DFT-spread OFDM), the 4G/5G uplink waveform.
//!
//! The paper's overhead argument (§5.1) notes that REM's SFFT/ISFFT
//! pre/post-processing costs the same order as the uplink's SC-FDMA —
//! an extra DFT in front of OFDM. This module implements that
//! precoding so the claim is checkable in-code: per-column DFT spread
//! at the transmitter, inverse at the receiver, with the classic
//! side-effect that the time-domain envelope is much closer to
//! single-carrier (lower PAPR).

use rem_num::fft::{fft, ifft};
use rem_num::{CMatrix, Complex64};

/// DFT-spreads each OFDM symbol (column): the `M` constellation
/// symbols of a column are replaced by their unitary DFT before
/// subcarrier mapping.
pub fn scfdma_precode(grid_data: &CMatrix) -> CMatrix {
    let (m, n) = grid_data.shape();
    let scale = 1.0 / (m as f64).sqrt();
    let mut out = CMatrix::zeros(m, n);
    let mut col = vec![Complex64::ZERO; m];
    for sym in 0..n {
        for sc in 0..m {
            col[sc] = grid_data[(sc, sym)];
        }
        fft(&mut col);
        for sc in 0..m {
            out[(sc, sym)] = col[sc].scale(scale);
        }
    }
    out
}

/// Inverse of [`scfdma_precode`].
pub fn scfdma_deprecode(grid_data: &CMatrix) -> CMatrix {
    let (m, n) = grid_data.shape();
    let scale = (m as f64).sqrt();
    let mut out = CMatrix::zeros(m, n);
    let mut col = vec![Complex64::ZERO; m];
    for sym in 0..n {
        for sc in 0..m {
            col[sc] = grid_data[(sc, sym)];
        }
        ifft(&mut col);
        for sc in 0..m {
            out[(sc, sym)] = col[sc].scale(scale);
        }
    }
    out
}

/// Peak-to-average power ratio of a sample stream, in dB.
pub fn papr_db(samples: &[Complex64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let peak = samples.iter().map(|z| z.norm_sqr()).fold(0.0, f64::max);
    let mean = samples.iter().map(|z| z.norm_sqr()).sum::<f64>() / samples.len() as f64;
    10.0 * (peak / mean.max(1e-300)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofdm_td::{td_modulate, TdParams};
    use crate::qam::{modulate, Modulation};
    use rand::Rng;
    use rem_num::rng::rng_from_seed;

    fn random_qpsk_grid(m: usize, n: usize, seed: u64) -> CMatrix {
        let mut rng = rng_from_seed(seed);
        let bits: Vec<bool> = (0..m * n * 2).map(|_| rng.gen()).collect();
        CMatrix::from_vec(m, n, modulate(&bits, Modulation::Qpsk))
    }

    #[test]
    fn precode_round_trip() {
        let x = random_qpsk_grid(12, 14, 1);
        let back = scfdma_deprecode(&scfdma_precode(&x));
        assert!(back.frobenius_dist(&x) < 1e-9);
    }

    #[test]
    fn precode_is_unitary() {
        let x = random_qpsk_grid(12, 14, 2);
        let y = scfdma_precode(&x);
        assert!((y.frobenius_norm() - x.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn scfdma_lowers_papr_vs_ofdm() {
        // The defining property: DFT-spread symbols produce a flatter
        // time-domain envelope than plain OFDM (averaged over frames).
        let p = TdParams::lte_like();
        let frames = 20;
        let mut ofdm_papr = 0.0;
        let mut sc_papr = 0.0;
        for f in 0..frames {
            let x = random_qpsk_grid(12, 14, 100 + f);
            ofdm_papr += papr_db(&td_modulate(&x, &p));
            sc_papr += papr_db(&td_modulate(&scfdma_precode(&x), &p));
        }
        ofdm_papr /= frames as f64;
        sc_papr /= frames as f64;
        assert!(
            sc_papr < ofdm_papr - 0.5,
            "sc-fdma {sc_papr:.2} dB should be below ofdm {ofdm_papr:.2} dB"
        );
    }

    #[test]
    fn papr_edge_cases() {
        assert_eq!(papr_db(&[]), 0.0);
        // Constant envelope: 0 dB.
        let flat = vec![rem_num::c64(1.0, 0.0); 64];
        assert!(papr_db(&flat).abs() < 1e-9);
    }
}
