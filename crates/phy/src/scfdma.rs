//! SC-FDMA (DFT-spread OFDM), the 4G/5G uplink waveform.
//!
//! The paper's overhead argument (§5.1) notes that REM's SFFT/ISFFT
//! pre/post-processing costs the same order as the uplink's SC-FDMA —
//! an extra DFT in front of OFDM. This module implements that
//! precoding so the claim is checkable in-code: per-column DFT spread
//! at the transmitter, inverse at the receiver, with the classic
//! side-effect that the time-domain envelope is much closer to
//! single-carrier (lower PAPR).

use crate::dsp::{with_thread_scratch, DspScratch};
use rem_num::{CMatrix, Complex64};

/// DFT-spreads each OFDM symbol (column): the `M` constellation
/// symbols of a column are replaced by their unitary DFT before
/// subcarrier mapping.
pub fn scfdma_precode(grid_data: &CMatrix) -> CMatrix {
    with_thread_scratch(|ws| {
        let mut out = CMatrix::zeros(grid_data.rows(), grid_data.cols());
        scfdma_precode_into(grid_data, &mut out, ws);
        out
    })
}

/// [`scfdma_precode`] into a caller-provided output matrix with reused
/// plans and buffers.
///
/// # Panics
/// Panics if `out` is not the same shape as `grid_data`.
pub fn scfdma_precode_into(grid_data: &CMatrix, out: &mut CMatrix, ws: &mut DspScratch) {
    let (m, n) = grid_data.shape();
    assert_eq!(out.shape(), (m, n), "output shape mismatch");
    let scale = 1.0 / (m as f64).sqrt();
    let plan = ws.planner.plan(m);
    let col = DspScratch::buf(&mut ws.col, m);
    for sym in 0..n {
        grid_data.copy_col_into(sym, col);
        plan.forward(col, &mut ws.fft);
        for v in col.iter_mut() {
            *v = v.scale(scale);
        }
        out.set_col(sym, col);
    }
}

/// Inverse of [`scfdma_precode`].
pub fn scfdma_deprecode(grid_data: &CMatrix) -> CMatrix {
    with_thread_scratch(|ws| {
        let mut out = CMatrix::zeros(grid_data.rows(), grid_data.cols());
        scfdma_deprecode_into(grid_data, &mut out, ws);
        out
    })
}

/// [`scfdma_deprecode`] into a caller-provided output matrix with
/// reused plans and buffers. The inverse transform's `1/M` and the
/// unitary `sqrt(M)` are fused into a single `1/sqrt(M)` pass.
///
/// # Panics
/// Panics if `out` is not the same shape as `grid_data`.
pub fn scfdma_deprecode_into(grid_data: &CMatrix, out: &mut CMatrix, ws: &mut DspScratch) {
    let (m, n) = grid_data.shape();
    assert_eq!(out.shape(), (m, n), "output shape mismatch");
    let scale = 1.0 / (m as f64).sqrt();
    let plan = ws.planner.plan(m);
    let col = DspScratch::buf(&mut ws.col, m);
    for sym in 0..n {
        grid_data.copy_col_into(sym, col);
        plan.inverse_unnormalized(col, &mut ws.fft);
        for v in col.iter_mut() {
            *v = v.scale(scale);
        }
        out.set_col(sym, col);
    }
}

/// Peak-to-average power ratio of a sample stream, in dB.
pub fn papr_db(samples: &[Complex64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let peak = samples.iter().map(|z| z.norm_sqr()).fold(0.0, f64::max);
    let mean = samples.iter().map(|z| z.norm_sqr()).sum::<f64>() / samples.len() as f64;
    10.0 * (peak / mean.max(1e-300)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofdm_td::{td_modulate, TdParams};
    use crate::qam::{modulate, Modulation};
    use rand::Rng;
    use rem_num::rng::rng_from_seed;

    fn random_qpsk_grid(m: usize, n: usize, seed: u64) -> CMatrix {
        let mut rng = rng_from_seed(seed);
        let bits: Vec<bool> = (0..m * n * 2).map(|_| rng.gen()).collect();
        CMatrix::from_vec(m, n, modulate(&bits, Modulation::Qpsk))
    }

    #[test]
    fn precode_round_trip() {
        let x = random_qpsk_grid(12, 14, 1);
        let back = scfdma_deprecode(&scfdma_precode(&x));
        assert!(back.frobenius_dist(&x) < 1e-9);
    }

    #[test]
    fn into_variants_match_allocating_versions_exactly() {
        let mut ws = DspScratch::new();
        for (m, n) in [(12usize, 14usize), (8, 4), (5, 3)] {
            let x = random_qpsk_grid(m, n, 77);
            let mut out = CMatrix::zeros(m, n);
            scfdma_precode_into(&x, &mut out, &mut ws);
            assert_eq!(scfdma_precode(&x).as_slice(), out.as_slice(), "precode ({m},{n})");
            scfdma_deprecode_into(&x, &mut out, &mut ws);
            assert_eq!(scfdma_deprecode(&x).as_slice(), out.as_slice(), "deprecode ({m},{n})");
        }
    }

    #[test]
    fn precode_is_unitary() {
        let x = random_qpsk_grid(12, 14, 2);
        let y = scfdma_precode(&x);
        assert!((y.frobenius_norm() - x.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn scfdma_lowers_papr_vs_ofdm() {
        // The defining property: DFT-spread symbols produce a flatter
        // time-domain envelope than plain OFDM (averaged over frames).
        let p = TdParams::lte_like();
        let frames = 20;
        let mut ofdm_papr = 0.0;
        let mut sc_papr = 0.0;
        for f in 0..frames {
            let x = random_qpsk_grid(12, 14, 100 + f);
            ofdm_papr += papr_db(&td_modulate(&x, &p));
            sc_papr += papr_db(&td_modulate(&scfdma_precode(&x), &p));
        }
        ofdm_papr /= frames as f64;
        sc_papr /= frames as f64;
        assert!(
            sc_papr < ofdm_papr - 0.5,
            "sc-fdma {sc_papr:.2} dB should be below ofdm {ofdm_papr:.2} dB"
        );
    }

    #[test]
    fn papr_edge_cases() {
        assert_eq!(papr_db(&[]), 0.0);
        // Constant envelope: 0 dB.
        let flat = vec![rem_num::c64(1.0, 0.0); 64];
        assert!(papr_db(&flat).abs() < 1e-9);
    }
}
