//! Message-passing OTFS detection (Raviteja et al., paper ref [21]).
//!
//! The delay-Doppler channel is *sparse*: a handful of taps
//! `(dk, dl, h)` couple each received sample to a handful of
//! transmitted symbols through a 2-D circular convolution. The
//! message-passing (MP) detector exploits that sparsity: observation
//! nodes send interference-cancelled Gaussian messages to variable
//! nodes, variable nodes return symbol beliefs, with damping for
//! convergence. It outperforms the two-step TF equaliser at low SNR on
//! doubly-selective channels and is the detector the OTFS literature
//! (and the paper's reference list) assumes.

use crate::qam::{modulate, Modulation};
use rem_num::{CMatrix, Complex64};

/// One delay-Doppler channel tap: a circular shift and a complex gain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DdTap {
    /// Delay-bin shift.
    pub dk: usize,
    /// Doppler-bin shift.
    pub dl: usize,
    /// Complex gain.
    pub gain: Complex64,
}

/// Extracts the dominant taps of a sampled DD channel matrix: entries
/// holding at least `rel_threshold` of the peak magnitude (the sparse
/// support Algorithm 1 and the MP detector both rely on).
pub fn extract_taps(h_dd: &CMatrix, rel_threshold: f64) -> Vec<DdTap> {
    let peak = h_dd.max_abs();
    if peak <= 0.0 {
        return Vec::new();
    }
    let mut taps = Vec::new();
    for k in 0..h_dd.rows() {
        for l in 0..h_dd.cols() {
            let g = h_dd[(k, l)];
            if g.abs() >= rel_threshold * peak {
                taps.push(DdTap { dk: k, dl: l, gain: g });
            }
        }
    }
    taps
}

/// Applies the sparse DD channel (2-D circular convolution) to a
/// transmitted DD grid — the forward model the detector inverts.
pub fn apply_dd_channel(x: &CMatrix, taps: &[DdTap]) -> CMatrix {
    let (m, n) = x.shape();
    CMatrix::from_fn(m, n, |k, l| {
        let mut acc = Complex64::ZERO;
        for t in taps {
            let sk = (k + m - t.dk % m) % m;
            let sl = (l + n - t.dl % n) % n;
            acc += t.gain * x[(sk, sl)];
        }
        acc
    })
}

/// Message-passing detector configuration.
#[derive(Clone, Copy, Debug)]
pub struct MpConfig {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Message damping factor in (0, 1]; Raviteja et al. suggest ~0.6.
    pub damping: f64,
    /// Early-exit threshold on belief change.
    pub tol: f64,
}

impl Default for MpConfig {
    fn default() -> Self {
        Self { max_iters: 20, damping: 0.6, tol: 1e-4 }
    }
}

/// Detects the transmitted DD symbols from `y = H x + noise` with the
/// sparse taps known. Returns the hard-decision symbol grid (points of
/// the given constellation).
pub fn mp_detect(
    y: &CMatrix,
    taps: &[DdTap],
    modulation: Modulation,
    noise_var: f64,
    cfg: &MpConfig,
) -> CMatrix {
    let beliefs = mp_detect_beliefs(y, taps, modulation, noise_var, cfg);
    let alphabet = constellation(modulation);
    let (m, n) = y.shape();
    CMatrix::from_fn(m, n, |k, l| {
        let v = k * n + l;
        let best = beliefs[v]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        alphabet[best]
    })
}

/// Soft-output message passing: per-symbol posterior probabilities over
/// the constellation (row-major grid order, one vector per symbol).
/// Point index `v`'s bit pattern is `v`'s binary digits MSB-first, the
/// same order [`crate::qam::modulate`] consumes — so bitwise LLRs are
/// `log sum_{v: bit=0} P(v) - log sum_{v: bit=1} P(v)`.
pub fn mp_detect_beliefs(
    y: &CMatrix,
    taps: &[DdTap],
    modulation: Modulation,
    noise_var: f64,
    cfg: &MpConfig,
) -> Vec<Vec<f64>> {
    let (m, n) = y.shape();
    let grid_len = m * n;
    let alphabet = constellation(modulation);
    let q = alphabet.len();
    let nv = noise_var.max(1e-12);

    if taps.is_empty() {
        return vec![vec![1.0 / q as f64; q]; grid_len];
    }

    // Beliefs: probability of each constellation point per variable.
    let mut beliefs = vec![vec![1.0 / q as f64; q]; grid_len];
    let idx = |k: usize, l: usize| k * n + l;

    for _ in 0..cfg.max_iters {
        // Per-variable interference statistics under current beliefs.
        let mut mean = vec![Complex64::ZERO; grid_len];
        let mut var = vec![0.0f64; grid_len];
        for v in 0..grid_len {
            let mut mu = Complex64::ZERO;
            let mut e2 = 0.0;
            for (pi, &p) in beliefs[v].iter().enumerate() {
                mu += alphabet[pi].scale(p);
                e2 += p * alphabet[pi].norm_sqr();
            }
            mean[v] = mu;
            var[v] = (e2 - mu.norm_sqr()).max(0.0);
        }

        // Variable update: for each variable, combine the Gaussian
        // likelihoods from every observation it participates in, with
        // the variable's own contribution removed (interference
        // cancellation).
        let mut new_beliefs = beliefs.clone();
        let mut max_delta = 0.0f64;
        for k in 0..m {
            for l in 0..n {
                let v = idx(k, l);
                let mut log_like = vec![0.0f64; q];
                for t in taps {
                    // Observation this variable feeds through tap t:
                    // y[k + dk, l + dl].
                    let ok = (k + t.dk) % m;
                    let ol = (l + t.dl) % n;
                    // Interference at that observation from all *other*
                    // variables/taps.
                    let mut imu = Complex64::ZERO;
                    let mut ivar = 0.0;
                    for t2 in taps {
                        let sk = (ok + m - t2.dk % m) % m;
                        let sl = (ol + n - t2.dl % n) % n;
                        let u = idx(sk, sl);
                        if u == v && t2 == t {
                            continue;
                        }
                        imu += t2.gain * mean[u];
                        ivar += t2.gain.norm_sqr() * var[u];
                    }
                    let resid = y[(ok, ol)] - imu;
                    let sigma2 = (ivar + nv).max(1e-12);
                    for (pi, &a) in alphabet.iter().enumerate() {
                        let d = resid - t.gain * a;
                        log_like[pi] -= d.norm_sqr() / sigma2;
                    }
                }
                // Normalise to probabilities (softmax of log-likelihoods).
                let mx = log_like.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut probs: Vec<f64> = log_like.iter().map(|&x| (x - mx).exp()).collect();
                let s: f64 = probs.iter().sum();
                for p in probs.iter_mut() {
                    *p /= s;
                }
                for pi in 0..q {
                    let damped =
                        cfg.damping * probs[pi] + (1.0 - cfg.damping) * beliefs[v][pi];
                    max_delta = max_delta.max((damped - beliefs[v][pi]).abs());
                    new_beliefs[v][pi] = damped;
                }
            }
        }
        beliefs = new_beliefs;
        if max_delta < cfg.tol {
            break;
        }
    }

    beliefs
}

/// Converts per-symbol beliefs into per-bit LLRs (positive favours 0),
/// concatenated in grid order.
pub fn beliefs_to_llrs(beliefs: &[Vec<f64>], modulation: Modulation) -> Vec<f64> {
    let bps = modulation.bits_per_symbol();
    let mut out = Vec::with_capacity(beliefs.len() * bps);
    for b in beliefs {
        for bit in 0..bps {
            let mut p0 = 1e-12;
            let mut p1 = 1e-12;
            for (v, &p) in b.iter().enumerate() {
                if (v >> (bps - 1 - bit)) & 1 == 0 {
                    p0 += p;
                } else {
                    p1 += p;
                }
            }
            out.push((p0 / p1).ln());
        }
    }
    out
}

/// The constellation points of a modulation (unit average energy).
fn constellation(m: Modulation) -> Vec<Complex64> {
    let bps = m.bits_per_symbol();
    (0..(1usize << bps))
        .map(|v| {
            let bits: Vec<bool> = (0..bps).rev().map(|i| (v >> i) & 1 == 1).collect();
            modulate(&bits, m)[0]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rem_num::c64;
    use rem_num::rng::{complex_gaussian, rng_from_seed};

    fn random_qpsk_grid(m: usize, n: usize, seed: u64) -> CMatrix {
        let pts = constellation(Modulation::Qpsk);
        let mut rng = rng_from_seed(seed);
        CMatrix::from_fn(m, n, |_, _| pts[rng.gen_range(0..4)])
    }

    fn two_tap() -> Vec<DdTap> {
        vec![
            DdTap { dk: 0, dl: 0, gain: c64(1.0, 0.0) },
            DdTap { dk: 2, dl: 1, gain: c64(0.3, 0.4) },
        ]
    }

    #[test]
    fn constellation_sizes() {
        assert_eq!(constellation(Modulation::Qpsk).len(), 4);
        assert_eq!(constellation(Modulation::Qam16).len(), 16);
    }

    #[test]
    fn forward_model_identity_channel() {
        let x = random_qpsk_grid(6, 8, 1);
        let taps = vec![DdTap { dk: 0, dl: 0, gain: Complex64::ONE }];
        assert_eq!(apply_dd_channel(&x, &taps), x);
    }

    #[test]
    fn noiseless_detection_recovers_symbols() {
        let x = random_qpsk_grid(8, 8, 2);
        let y = apply_dd_channel(&x, &two_tap());
        let xhat = mp_detect(&y, &two_tap(), Modulation::Qpsk, 1e-4, &MpConfig::default());
        assert!(xhat.frobenius_dist(&x) < 1e-9, "dist={}", xhat.frobenius_dist(&x));
    }

    #[test]
    fn noisy_detection_mostly_correct() {
        let x = random_qpsk_grid(8, 8, 3);
        let mut y = apply_dd_channel(&x, &two_tap());
        let mut rng = rng_from_seed(4);
        let nv = 0.02; // ~17 dB
        for z in y.as_mut_slice() {
            *z += complex_gaussian(&mut rng, nv);
        }
        let xhat = mp_detect(&y, &two_tap(), Modulation::Qpsk, nv, &MpConfig::default());
        let errs = x
            .as_slice()
            .iter()
            .zip(xhat.as_slice())
            .filter(|(a, b)| a.dist(**b) > 1e-6)
            .count();
        assert!(errs <= 1, "errs={errs}");
    }

    #[test]
    fn beats_single_tap_equalisation_on_selective_channel() {
        // A channel with a strong second tap: treating it as flat
        // (dividing by the DC tap) fails; MP resolves it.
        let taps = vec![
            DdTap { dk: 0, dl: 0, gain: c64(1.0, 0.0) },
            DdTap { dk: 1, dl: 0, gain: c64(0.0, 0.8) },
        ];
        let x = random_qpsk_grid(8, 6, 5);
        let mut y = apply_dd_channel(&x, &taps);
        let mut rng = rng_from_seed(6);
        let nv = 0.01;
        for z in y.as_mut_slice() {
            *z += complex_gaussian(&mut rng, nv);
        }
        // Naive: ignore tap 2.
        let pts = constellation(Modulation::Qpsk);
        let naive_errs = x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .filter(|(a, b)| {
                let nearest = pts
                    .iter()
                    .min_by(|p, q| p.dist(**b).partial_cmp(&q.dist(**b)).unwrap())
                    .unwrap();
                nearest.dist(**a) > 1e-6
            })
            .count();
        let xhat = mp_detect(&y, &taps, Modulation::Qpsk, nv, &MpConfig::default());
        let mp_errs = x
            .as_slice()
            .iter()
            .zip(xhat.as_slice())
            .filter(|(a, b)| a.dist(**b) > 1e-6)
            .count();
        assert!(mp_errs < naive_errs, "mp={mp_errs} naive={naive_errs}");
        assert!(mp_errs <= 2, "mp={mp_errs}");
    }

    #[test]
    fn tap_extraction_finds_sparse_support() {
        let mut h = CMatrix::zeros(8, 8);
        h[(0, 0)] = c64(1.0, 0.0);
        h[(2, 3)] = c64(0.0, 0.5);
        h[(5, 1)] = c64(0.01, 0.0); // below threshold
        let taps = extract_taps(&h, 0.1);
        assert_eq!(taps.len(), 2);
        assert!(taps.iter().any(|t| t.dk == 2 && t.dl == 3));
    }

    #[test]
    fn empty_inputs() {
        assert!(extract_taps(&CMatrix::zeros(4, 4), 0.1).is_empty());
        // No taps -> uniform beliefs; hard output is still a valid
        // constellation grid (arbitrary but well-formed).
        let y = CMatrix::zeros(4, 4);
        let beliefs = mp_detect_beliefs(&y, &[], Modulation::Qpsk, 0.1, &MpConfig::default());
        assert!(beliefs.iter().all(|b| b.iter().all(|&p| (p - 0.25).abs() < 1e-12)));
        let out = mp_detect(&y, &[], Modulation::Qpsk, 0.1, &MpConfig::default());
        let pts = constellation(Modulation::Qpsk);
        assert!(out
            .as_slice()
            .iter()
            .all(|z| pts.iter().any(|p| p.dist(*z) < 1e-12)));
    }

    #[test]
    fn end_to_end_with_estimated_channel() {
        // Estimate the DD channel via embedded pilot, extract taps,
        // detect data sent through the true channel.
        use crate::chanest::estimate_dd_embedded_pilot;
        use rem_channel::delaydoppler::{snap_to_grid, DdGrid};
        use rem_channel::{MultipathChannel, Path};

        let grid = DdGrid::lte(8, 8);
        let ch = snap_to_grid(
            &grid,
            &MultipathChannel::new(vec![
                Path::new(c64(1.0, 0.0), 0.0, 0.0),
                Path::new(c64(0.3, 0.3), 2.0 * grid.delta_tau(), grid.delta_nu()),
            ]),
        );
        let mut rng = rng_from_seed(7);
        let h_est = estimate_dd_embedded_pilot(&grid, &ch, 35.0, &mut rng);
        let taps = extract_taps(&h_est, 0.15);
        assert!(taps.len() >= 2, "taps={}", taps.len());

        let x = random_qpsk_grid(8, 8, 8);
        // Transmit through the *true* channel (as a DD convolution).
        let true_taps = extract_taps(
            &rem_channel::delaydoppler::dd_channel_matrix(&grid, &ch),
            0.05,
        );
        let y = apply_dd_channel(&x, &true_taps);
        let xhat = mp_detect(&y, &taps, Modulation::Qpsk, 1e-3, &MpConfig::default());
        let errs = x
            .as_slice()
            .iter()
            .zip(xhat.as_slice())
            .filter(|(a, b)| a.dist(**b) > 1e-6)
            .count();
        assert!(errs <= 3, "errs={errs}");
    }
}
