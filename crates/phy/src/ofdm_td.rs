//! Sample-level (time-domain) OFDM: IFFT, cyclic prefix, and a tapped
//! delay line with per-tap Doppler rotation.
//!
//! The rest of the workspace models OFDM at the resource-element level
//! (`Y = H ∘ X` plus an analytic ICI term). This module implements the
//! actual waveform so that model can be *validated* rather than
//! assumed:
//!
//! * static multipath inside the CP → the demodulated grid matches the
//!   sampled `H(f)` exactly (no ISI);
//! * Doppler on the taps → inter-carrier interference emerges from the
//!   samples themselves, and its measured power matches the analytic
//!   `(pi f_d T)^2 / 6` term used everywhere else (see tests);
//! * delays beyond the CP → ISI appears, as it must.
//!
//! Conventions: `fft_size >= M` subcarriers; occupied bins are
//! `0..M` (baseband-adjacent mapping); sample rate `fs = fft_size *
//! delta_f`; tap delays are rounded to whole samples.

use crate::dsp::{with_thread_scratch, DspScratch};
use rem_channel::{DdGrid, MultipathChannel};
use rem_num::{CMatrix, Complex64};
use std::f64::consts::PI;

/// Time-domain OFDM parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TdParams {
    /// IFFT/FFT size (must be a power of two and `>= grid.m`).
    pub fft_size: usize,
    /// Cyclic-prefix length in samples.
    pub cp_len: usize,
}

impl TdParams {
    /// LTE-ish defaults for a given grid: 128-point FFT, 9-sample CP
    /// (normal CP ratio ~1/14).
    pub fn lte_like() -> Self {
        Self { fft_size: 128, cp_len: 9 }
    }

    /// Samples per OFDM symbol including CP.
    pub fn symbol_len(&self) -> usize {
        self.fft_size + self.cp_len
    }

    /// Sample rate implied by a grid's subcarrier spacing.
    pub fn sample_rate(&self, grid: &DdGrid) -> f64 {
        self.fft_size as f64 * grid.delta_f
    }
}

/// Modulates a frequency-domain grid (rows = subcarriers, cols = OFDM
/// symbols) to time samples with cyclic prefixes.
///
/// # Panics
/// Panics if `fft_size < grid rows` or `fft_size` is not a power of two.
pub fn td_modulate(grid_data: &CMatrix, p: &TdParams) -> Vec<Complex64> {
    with_thread_scratch(|ws| td_modulate_with(grid_data, p, ws))
}

/// [`td_modulate`] with caller-provided DSP scratch: the per-symbol
/// IFFT buffer and the FFT plan are reused across calls.
pub fn td_modulate_with(grid_data: &CMatrix, p: &TdParams, ws: &mut DspScratch) -> Vec<Complex64> {
    let (m, n) = grid_data.shape();
    assert!(p.fft_size >= m, "fft_size must cover the occupied subcarriers");
    assert!(p.fft_size.is_power_of_two(), "fft_size must be a power of two");
    let mut out = Vec::with_capacity(n * p.symbol_len());
    let plan = ws.planner.plan(p.fft_size);
    let buf = DspScratch::buf(&mut ws.row, p.fft_size);
    for sym in 0..n {
        for b in buf.iter_mut() {
            *b = Complex64::ZERO;
        }
        for sc in 0..m {
            buf[sc] = grid_data[(sc, sym)];
        }
        plan.inverse(buf, &mut ws.fft);
        // ifft yields per-sample power M/N^2 for unit-power symbols on
        // M of N bins; scaling by N/sqrt(M) restores unit average
        // sample power on air.
        let amp = p.fft_size as f64 / (m as f64).sqrt();
        for b in &buf[p.fft_size - p.cp_len..] {
            out.push(b.scale(amp));
        }
        for &b in buf.iter() {
            out.push(b.scale(amp));
        }
    }
    out
}

/// Applies a multipath channel to time samples: each tap delays by
/// `round(tau * fs)` samples and rotates with its Doppler:
/// `y[i] = sum_p h_p e^{j 2 pi nu_p t_i} x[i - d_p]`.
pub fn td_channel(
    samples: &[Complex64],
    ch: &MultipathChannel,
    sample_rate_hz: f64,
) -> Vec<Complex64> {
    let mut out = vec![Complex64::ZERO; samples.len()];
    for path in ch.paths() {
        let d = (path.delay_s * sample_rate_hz).round() as usize;
        for i in d..samples.len() {
            let t = i as f64 / sample_rate_hz;
            let rot = Complex64::cis(2.0 * PI * path.doppler_hz * t);
            out[i] += path.gain * rot * samples[i - d];
        }
    }
    out
}

/// Demodulates time samples back to the frequency-domain grid
/// (inverse of [`td_modulate`], assuming symbol alignment).
pub fn td_demodulate(samples: &[Complex64], m: usize, n: usize, p: &TdParams) -> CMatrix {
    with_thread_scratch(|ws| td_demodulate_with(samples, m, n, p, ws))
}

/// [`td_demodulate`] with caller-provided DSP scratch.
pub fn td_demodulate_with(
    samples: &[Complex64],
    m: usize,
    n: usize,
    p: &TdParams,
    ws: &mut DspScratch,
) -> CMatrix {
    assert!(samples.len() >= n * p.symbol_len(), "not enough samples");
    let mut out = CMatrix::zeros(m, n);
    let plan = ws.planner.plan(p.fft_size);
    let buf = DspScratch::buf(&mut ws.row, p.fft_size);
    // Inverse of the modulator's N/sqrt(M) amplitude scaling.
    let amp = p.fft_size as f64 / (m as f64).sqrt();
    for sym in 0..n {
        let start = sym * p.symbol_len() + p.cp_len;
        buf.copy_from_slice(&samples[start..start + p.fft_size]);
        plan.forward(buf, &mut ws.fft);
        for sc in 0..m {
            out[(sc, sym)] = buf[sc].scale(1.0 / amp);
        }
    }
    out
}

/// Convenience: modulate, run the channel, demodulate. Returns the
/// received frequency-domain grid.
pub fn td_through_channel(
    grid_data: &CMatrix,
    grid: &DdGrid,
    ch: &MultipathChannel,
    p: &TdParams,
) -> CMatrix {
    let fs = p.sample_rate(grid);
    let tx = td_modulate(grid_data, p);
    let rx = td_channel(&tx, ch, fs);
    td_demodulate(&rx, grid_data.rows(), grid_data.cols(), p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_channel::noise::ici_relative_power;
    use rem_channel::Path;
    use rem_num::c64;

    fn qpskish_grid(m: usize, n: usize) -> CMatrix {
        CMatrix::from_fn(m, n, |r, c| {
            let s = 1.0 / 2f64.sqrt();
            c64(
                if (r + c) % 2 == 0 { s } else { -s },
                if (r * 3 + c) % 2 == 0 { s } else { -s },
            )
        })
    }

    #[test]
    fn flat_channel_round_trip() {
        let grid = DdGrid::lte(12, 14);
        let p = TdParams::lte_like();
        let x = qpskish_grid(12, 14);
        let ch = MultipathChannel::flat(Complex64::ONE);
        let y = td_through_channel(&x, &grid, &ch, &p);
        assert!(y.frobenius_dist(&x) < 1e-9 * x.frobenius_norm().max(1.0));
    }

    #[test]
    fn tx_power_is_unit_per_sample() {
        let p = TdParams::lte_like();
        let x = qpskish_grid(12, 14);
        let tx = td_modulate(&x, &p);
        let pw: f64 = tx.iter().map(|z| z.norm_sqr()).sum::<f64>() / tx.len() as f64;
        // Unit-power constellation on 12 of 128 bins, amplitude-scaled:
        // per-sample power is ~1; the CP repeats a body segment whose
        // local power differs slightly from the symbol average for a
        // structured (non-random) grid.
        assert!((pw - 1.0).abs() < 0.1, "pw={pw}");
    }

    #[test]
    fn static_multipath_matches_sampled_hf() {
        // Delays inside the CP: per-subcarrier gain equals
        // H(f_sc) = sum h_p e^{-j 2 pi f_sc tau_p} with tau rounded to
        // samples.
        let grid = DdGrid::lte(12, 4);
        let p = TdParams::lte_like();
        let fs = p.sample_rate(&grid);
        // Delays exactly on the sample lattice.
        let ch = MultipathChannel::new(vec![
            Path::new(c64(0.8, 0.0), 3.0 / fs, 0.0),
            Path::new(c64(0.0, 0.5), 7.0 / fs, 0.0),
        ]);
        let x = qpskish_grid(12, 4);
        let y = td_through_channel(&x, &grid, &ch, &p);
        for sc in 0..12 {
            let f = sc as f64 * grid.delta_f;
            let h = ch.tf_gain(0.0, f);
            for sym in 0..4 {
                let got = y[(sc, sym)] / x[(sc, sym)];
                assert!(got.dist(h) < 1e-6, "sc={sc} sym={sym} got={got:?} want={h:?}");
            }
        }
    }

    #[test]
    fn doppler_ici_emerges_and_matches_analytic_model() {
        // Transmit a single occupied subcarrier; with tap Doppler the
        // other bins pick up leaked power. The leaked fraction should
        // match the Jakes second-order ICI term within a small factor.
        let grid = DdGrid::lte(12, 14);
        let p = TdParams::lte_like();
        let fd = 800.0;
        let ch = MultipathChannel::new(vec![Path::new(Complex64::ONE, 0.0, fd)]);
        let mut x = CMatrix::zeros(12, 14);
        for sym in 0..14 {
            x[(5, sym)] = Complex64::ONE;
        }
        let y = td_through_channel(&x, &grid, &ch, &p);
        let mut sig = 0.0;
        let mut leak = 0.0;
        for sym in 0..14 {
            for sc in 0..12 {
                let pw = y[(sc, sym)].norm_sqr();
                if sc == 5 {
                    sig += pw;
                } else {
                    leak += pw;
                }
            }
        }
        let measured = leak / sig;
        let analytic = ici_relative_power(fd, grid.t_sym);
        assert!(
            measured > 0.2 * analytic && measured < 5.0 * analytic,
            "measured={measured:.2e} analytic={analytic:.2e}"
        );
    }

    #[test]
    fn excess_delay_beyond_cp_causes_isi() {
        let grid = DdGrid::lte(12, 6);
        let p = TdParams::lte_like(); // CP = 9 samples
        let fs = p.sample_rate(&grid);
        let x = qpskish_grid(12, 6);
        // In-CP delay: clean. Beyond-CP delay: distorted.
        let ch_ok = MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.0, 0.0),
            Path::new(c64(0.5, 0.0), 6.0 / fs, 0.0),
        ]);
        let ch_bad = MultipathChannel::new(vec![
            Path::new(c64(1.0, 0.0), 0.0, 0.0),
            Path::new(c64(0.5, 0.0), 40.0 / fs, 0.0),
        ]);
        let err = |ch: &MultipathChannel| -> f64 {
            let y = td_through_channel(&x, &grid, ch, &p);
            // Compare against the ideal per-subcarrier model.
            let mut e = 0.0;
            for sc in 0..12 {
                let h = ch.tf_gain(0.0, sc as f64 * grid.delta_f);
                for sym in 1..6 {
                    e += (y[(sc, sym)] - h * x[(sc, sym)]).norm_sqr();
                }
            }
            e
        };
        let e_ok = err(&ch_ok);
        let e_bad = err(&ch_bad);
        assert!(e_ok < 1e-9, "in-CP delay should be ISI-free: {e_ok}");
        assert!(e_bad > 1e-3, "beyond-CP delay must distort: {e_bad}");
    }

    #[test]
    fn grid_level_model_cross_validation() {
        // The workspace's grid-level model (Y = H ∘ X) agrees with the
        // sample-level waveform for static in-CP multipath.
        let grid = DdGrid::lte(12, 8);
        let p = TdParams::lte_like();
        let fs = p.sample_rate(&grid);
        let ch = MultipathChannel::new(vec![
            Path::new(c64(0.9, 0.1), 2.0 / fs, 0.0),
            Path::new(c64(-0.2, 0.4), 5.0 / fs, 0.0),
        ]);
        let x = qpskish_grid(12, 8);
        let y_td = td_through_channel(&x, &grid, &ch, &p);
        let gains = crate::ofdm::tf_channel(&grid, &ch);
        let y_grid = CMatrix::from_fn(12, 8, |sc, sym| gains[(sc, sym)] * x[(sc, sym)]);
        let rel = y_td.frobenius_dist(&y_grid) / y_grid.frobenius_norm();
        assert!(rel < 1e-6, "rel={rel}");
    }
}
