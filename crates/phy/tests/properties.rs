//! Property-based tests for the PHY pipeline.

use proptest::prelude::*;
use rem_num::simd::{self, SimdTier};
use rem_num::{c64, CMatrix};
use rem_phy::convcode;
use rem_phy::crc::{attach_crc, check_crc};
use rem_phy::dsp::DspScratch;
use rem_phy::interleaver::BlockInterleaver;
use rem_phy::otfs::{isfft, isfft_into, otfs_demodulate, otfs_modulate, sfft, sfft_into};
use rem_phy::qam::{demodulate_hard, demodulate_soft_into_with_tier, modulate, Modulation};

/// Strategy: a complex matrix with 1..=8 rows and at least one column.
fn small_matrix() -> impl Strategy<Value = CMatrix> {
    (1usize..9, 1usize..9).prop_flat_map(|(r, c)| {
        proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), r * c).prop_map(move |v| {
            CMatrix::from_vec(r, c, v.into_iter().map(|(a, b)| c64(a, b)).collect())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn crc_round_trip(payload in proptest::collection::vec(any::<bool>(), 0..300)) {
        prop_assert_eq!(check_crc(&attach_crc(&payload)), Some(payload));
    }

    #[test]
    fn crc_detects_any_single_flip(
        payload in proptest::collection::vec(any::<bool>(), 1..120),
        idx in any::<proptest::sample::Index>(),
    ) {
        let mut block = attach_crc(&payload);
        let i = idx.index(block.len());
        block[i] = !block[i];
        prop_assert_eq!(check_crc(&block), None);
    }

    #[test]
    fn convcode_noiseless_round_trip(payload in proptest::collection::vec(any::<bool>(), 0..200)) {
        let coded = convcode::encode(&payload);
        prop_assert_eq!(convcode::decode_hard(&coded, payload.len()), Some(payload));
    }

    #[test]
    fn convcode_corrects_two_spread_errors(
        payload in proptest::collection::vec(any::<bool>(), 40..120),
        a in 0usize..40,
        b in 120usize..200,
    ) {
        let mut coded = convcode::encode(&payload);
        let n = coded.len();
        coded[a % n] = !coded[a % n];
        let bi = b % n;
        coded[bi] = !coded[bi];
        // Two far-apart errors are within the free distance budget.
        prop_assert_eq!(convcode::decode_hard(&coded, payload.len()), Some(payload));
    }

    #[test]
    fn qam_round_trip(
        bits in proptest::collection::vec(any::<bool>(), 1..240),
        m in prop_oneof![Just(Modulation::Qpsk), Just(Modulation::Qam16), Just(Modulation::Qam64)],
    ) {
        let syms = modulate(&bits, m);
        let back = demodulate_hard(&syms, m);
        prop_assert_eq!(&back[..bits.len()], &bits[..]);
    }

    #[test]
    fn interleaver_round_trip(data in proptest::collection::vec(any::<u8>(), 1..500)) {
        let il = BlockInterleaver::for_len(data.len());
        prop_assert_eq!(il.deinterleave(&il.interleave(&data)), data);
    }

    #[test]
    fn interleave_is_permutation(data in proptest::collection::vec(0u32..1000, 2..200)) {
        let il = BlockInterleaver::for_len(data.len());
        let mut a = data.clone();
        let mut b = il.interleave(&data);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sfft_round_trip(entries in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..64),
                       rows in 1usize..9) {
        let r = rows.min(entries.len());
        let c = entries.len() / r;
        if c == 0 { return Ok(()); }
        let m = CMatrix::from_vec(r, c, entries[..r * c].iter().map(|&(a, b)| c64(a, b)).collect());
        let back = isfft(&sfft(&m));
        prop_assert!(back.frobenius_dist(&m) < 1e-7 * m.frobenius_norm().max(1.0));
    }

    #[test]
    fn sfft_into_is_bit_identical_to_allocating_sfft(m in small_matrix()) {
        // The zero-allocation path must match the allocating wrapper
        // exactly — same plans, same operation order, same bits.
        let mut ws = DspScratch::new();
        let mut out = CMatrix::zeros(m.rows(), m.cols());
        sfft_into(&m, &mut out, &mut ws);
        prop_assert_eq!(out, sfft(&m));
    }

    #[test]
    fn isfft_into_is_bit_identical_to_allocating_isfft(m in small_matrix()) {
        let mut ws = DspScratch::new();
        let mut out = CMatrix::zeros(m.rows(), m.cols());
        isfft_into(&m, &mut out, &mut ws);
        prop_assert_eq!(out, isfft(&m));
    }

    #[test]
    fn scratch_reuse_across_shapes_is_harmless(a in small_matrix(), b in small_matrix()) {
        // One scratch serving interleaved shapes (the Monte-Carlo
        // worker pattern) must give the same answers as fresh scratch.
        let mut ws = DspScratch::new();
        for m in [&a, &b, &a] {
            let mut out = CMatrix::zeros(m.rows(), m.cols());
            sfft_into(m, &mut out, &mut ws);
            prop_assert_eq!(out, sfft(m));
        }
    }

    #[test]
    fn decode_hard_matches_soft_on_equivalent_llrs(
        payload in proptest::collection::vec(any::<bool>(), 1..80),
    ) {
        // decode_hard is defined as decode_soft on +/-1 LLRs; both ride
        // the shared flat trellis and must agree bit-for-bit.
        let coded = convcode::encode(&payload);
        let llrs: Vec<f64> = coded.iter().map(|&b| if b { -1.0 } else { 1.0 }).collect();
        prop_assert_eq!(
            convcode::decode_hard(&coded, payload.len()),
            convcode::decode_soft(&llrs, payload.len())
        );
    }

    #[test]
    fn otfs_unitary_energy(entries in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 4..64)) {
        let r = 4usize;
        let c = entries.len() / r;
        if c == 0 { return Ok(()); }
        let m = CMatrix::from_vec(r, c, entries[..r * c].iter().map(|&(a, b)| c64(a, b)).collect());
        let tx = otfs_modulate(&m);
        prop_assert!((tx.frobenius_norm() - m.frobenius_norm()).abs() < 1e-7 * m.frobenius_norm().max(1e-12));
        let back = otfs_demodulate(&tx);
        prop_assert!(back.frobenius_dist(&m) < 1e-7 * m.frobenius_norm().max(1.0));
    }
}

// SIMD tier equivalence: every vectorised kernel must be bit-identical
// to the scalar reference on arbitrary inputs — including remainder
// lengths that don't fill a vector lane, unaligned slice starts, and
// the LTE payload sizes — per the contract in [`rem_num::simd`]. On a
// CPU without a vector tier `active_tier()` is `Scalar` and these
// degenerate to scalar-vs-scalar, which is still a valid (if trivial)
// instance of the property.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn qam_soft_demap_simd_is_bit_identical_to_scalar(
        entries in proptest::collection::vec((-3.0f64..3.0, -3.0f64..3.0), 0..97),
        m in prop_oneof![Just(Modulation::Qpsk), Just(Modulation::Qam16), Just(Modulation::Qam64)],
        noise_var in 1e-6f64..10.0,
        skip in 0usize..4,
    ) {
        let syms: Vec<_> = entries.iter().map(|&(a, b)| c64(a, b)).collect();
        // `skip` shifts the slice start so the kernel also sees
        // unaligned heads, not just Vec-aligned base pointers.
        let syms = &syms[skip.min(syms.len())..];
        let (mut scalar, mut fast) = (Vec::new(), Vec::new());
        demodulate_soft_into_with_tier(syms, m, noise_var, &mut scalar, SimdTier::Scalar);
        demodulate_soft_into_with_tier(syms, m, noise_var, &mut fast, simd::active_tier());
        prop_assert_eq!(scalar.len(), fast.len());
        for (i, (a, b)) in scalar.iter().zip(&fast).enumerate() {
            prop_assert!(a.to_bits() == b.to_bits(), "LLR {} differs: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn viterbi_simd_is_bit_identical_to_scalar(
        payload in proptest::collection::vec(any::<bool>(), 0..300),
        noise in proptest::collection::vec(-2.0f64..2.0, 0..32),
    ) {
        // Payload lengths sweep through every lane-remainder case and
        // past the LTE signaling payload (296 bits); the cyclic noise
        // pattern perturbs the LLRs enough to exercise real ACS ties.
        let coded = convcode::encode(&payload);
        let llrs: Vec<f64> = coded
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let base = if b { -1.0 } else { 1.0 };
                base + if noise.is_empty() { 0.0 } else { noise[i % noise.len()] }
            })
            .collect();
        let mut ws_a = convcode::TrellisScratch::new();
        let mut ws_b = convcode::TrellisScratch::new();
        let scalar =
            convcode::decode_soft_with_tier(&llrs, payload.len(), &mut ws_a, SimdTier::Scalar);
        let fast =
            convcode::decode_soft_with_tier(&llrs, payload.len(), &mut ws_b, simd::active_tier());
        prop_assert_eq!(scalar, fast);
    }
}
