//! Property-based tests for the PHY pipeline.

use proptest::prelude::*;
use rem_num::{c64, CMatrix};
use rem_phy::convcode;
use rem_phy::crc::{attach_crc, check_crc};
use rem_phy::interleaver::BlockInterleaver;
use rem_phy::otfs::{isfft, otfs_demodulate, otfs_modulate, sfft};
use rem_phy::qam::{demodulate_hard, modulate, Modulation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn crc_round_trip(payload in proptest::collection::vec(any::<bool>(), 0..300)) {
        prop_assert_eq!(check_crc(&attach_crc(&payload)), Some(payload));
    }

    #[test]
    fn crc_detects_any_single_flip(
        payload in proptest::collection::vec(any::<bool>(), 1..120),
        idx in any::<proptest::sample::Index>(),
    ) {
        let mut block = attach_crc(&payload);
        let i = idx.index(block.len());
        block[i] = !block[i];
        prop_assert_eq!(check_crc(&block), None);
    }

    #[test]
    fn convcode_noiseless_round_trip(payload in proptest::collection::vec(any::<bool>(), 0..200)) {
        let coded = convcode::encode(&payload);
        prop_assert_eq!(convcode::decode_hard(&coded, payload.len()), Some(payload));
    }

    #[test]
    fn convcode_corrects_two_spread_errors(
        payload in proptest::collection::vec(any::<bool>(), 40..120),
        a in 0usize..40,
        b in 120usize..200,
    ) {
        let mut coded = convcode::encode(&payload);
        let n = coded.len();
        coded[a % n] = !coded[a % n];
        let bi = b % n;
        coded[bi] = !coded[bi];
        // Two far-apart errors are within the free distance budget.
        prop_assert_eq!(convcode::decode_hard(&coded, payload.len()), Some(payload));
    }

    #[test]
    fn qam_round_trip(
        bits in proptest::collection::vec(any::<bool>(), 1..240),
        m in prop_oneof![Just(Modulation::Qpsk), Just(Modulation::Qam16), Just(Modulation::Qam64)],
    ) {
        let syms = modulate(&bits, m);
        let back = demodulate_hard(&syms, m);
        prop_assert_eq!(&back[..bits.len()], &bits[..]);
    }

    #[test]
    fn interleaver_round_trip(data in proptest::collection::vec(any::<u8>(), 1..500)) {
        let il = BlockInterleaver::for_len(data.len());
        prop_assert_eq!(il.deinterleave(&il.interleave(&data)), data);
    }

    #[test]
    fn interleave_is_permutation(data in proptest::collection::vec(0u32..1000, 2..200)) {
        let il = BlockInterleaver::for_len(data.len());
        let mut a = data.clone();
        let mut b = il.interleave(&data);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sfft_round_trip(entries in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..64),
                       rows in 1usize..9) {
        let r = rows.min(entries.len());
        let c = entries.len() / r;
        if c == 0 { return Ok(()); }
        let m = CMatrix::from_vec(r, c, entries[..r * c].iter().map(|&(a, b)| c64(a, b)).collect());
        let back = isfft(&sfft(&m));
        prop_assert!(back.frobenius_dist(&m) < 1e-7 * m.frobenius_norm().max(1.0));
    }

    #[test]
    fn otfs_unitary_energy(entries in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 4..64)) {
        let r = 4usize;
        let c = entries.len() / r;
        if c == 0 { return Ok(()); }
        let m = CMatrix::from_vec(r, c, entries[..r * c].iter().map(|&(a, b)| c64(a, b)).collect());
        let tx = otfs_modulate(&m);
        prop_assert!((tx.frobenius_norm() - m.frobenius_norm()).abs() < 1e-7 * m.frobenius_norm().max(1e-12));
        let back = otfs_demodulate(&tx);
        prop_assert!(back.frobenius_dist(&m) < 1e-7 * m.frobenius_norm().max(1.0));
    }
}
