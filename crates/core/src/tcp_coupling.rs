//! Coupling mobility failures to TCP (paper §7.1, Fig 9).
//!
//! The outage intervals a campaign produced become radio outages for
//! the miniature TCP stack; the resulting stall times quantify REM's
//! application-level benefit.

use rem_faults::FaultPlan;
use rem_net::{simulate_transfer, LinkModel, LossEpisode, Outage, TcpConfig, TcpTrace};
use rem_num::rng::rng_from_seed;
use rem_sim::RunMetrics;

/// The stall-gap threshold used by the Fig 9 analysis (ms): a goodput
/// gap longer than this counts as a stall.
pub const STALL_GAP_MS: f64 = 1_000.0;

/// Per-handover service interruption injected into the TCP replay
/// (break-before-make gap), ms.
pub const HO_INTERRUPTION_MS: f64 = 60.0;

/// Runs an iperf-like bulk transfer across a window of the campaign,
/// injecting the campaign's outages into the link.
///
/// `window_ms` bounds the replayed span (long campaigns are truncated;
/// outages are shifted accordingly). Returns the TCP trace.
pub fn replay_tcp(metrics: &RunMetrics, window_ms: f64, seed: u64) -> TcpTrace {
    let link = LinkModel { outages: outages_within(metrics, window_ms), ..Default::default() };
    let mut rng = rng_from_seed(seed);
    simulate_transfer(&TcpConfig::default(), &link, window_ms, &mut rng)
}

/// [`replay_tcp`] under a fault plan: the plan's transport-layer loss
/// bursts become bursty-loss episodes on the link, alongside the
/// campaign's radio outages. With an empty plan this is exactly
/// [`replay_tcp`].
pub fn replay_tcp_faulted(
    metrics: &RunMetrics,
    plan: &FaultPlan,
    window_ms: f64,
    seed: u64,
) -> TcpTrace {
    let episodes: Vec<LossEpisode> = plan
        .bursts()
        .iter()
        .filter(|b| b.start_ms < window_ms)
        .map(|b| LossEpisode {
            start_ms: b.start_ms,
            end_ms: b.end_ms.min(window_ms),
            loss_prob: b.loss_prob,
        })
        .collect();
    let link = LinkModel {
        outages: outages_within(metrics, window_ms),
        episodes,
        ..Default::default()
    };
    let mut rng = rng_from_seed(seed);
    simulate_transfer(&TcpConfig::default(), &link, window_ms, &mut rng)
}

fn outages_within(metrics: &RunMetrics, window_ms: f64) -> Vec<Outage> {
    metrics
        .interruption_intervals_ms(HO_INTERRUPTION_MS)
        .into_iter()
        .filter(|(s, _)| *s < window_ms)
        .map(|(s, e)| Outage { start_ms: s, end_ms: e.min(window_ms) })
        .collect()
}

/// Mean stall time per outage event (s) — the Fig 9a bar value.
pub fn mean_stall_per_failure_s(trace: &TcpTrace, n_failures: usize) -> f64 {
    if n_failures == 0 {
        return 0.0;
    }
    trace.total_stall_ms(STALL_GAP_MS) / 1e3 / n_failures as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_sim::FailureRecord;
    use rem_mobility::FailureCause;

    fn metrics_with_outages(outages: &[(f64, f64)]) -> RunMetrics {
        RunMetrics {
            duration_s: 60.0,
            failures: outages
                .iter()
                .map(|&(s, e)| FailureRecord {
                    t_ms: s,
                    cause: FailureCause::FeedbackDelayLoss,
                    outage_ms: e - s,
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn outage_free_run_has_no_stalls() {
        let m = metrics_with_outages(&[]);
        let trace = replay_tcp(&m, 10_000.0, 1);
        assert!(trace.stall_periods(STALL_GAP_MS).is_empty());
        assert!(trace.total_acked_bytes > 0);
    }

    #[test]
    fn outages_create_stalls_longer_than_outage() {
        let m = metrics_with_outages(&[(3_000.0, 5_500.0)]);
        let trace = replay_tcp(&m, 20_000.0, 2);
        let stall = trace.total_stall_ms(STALL_GAP_MS);
        assert!(stall >= 2_500.0, "stall={stall}");
        assert!(mean_stall_per_failure_s(&trace, 1) >= 2.5);
    }

    #[test]
    fn outages_beyond_window_ignored() {
        let m = metrics_with_outages(&[(50_000.0, 55_000.0)]);
        let trace = replay_tcp(&m, 10_000.0, 3);
        assert!(trace.stall_periods(STALL_GAP_MS).is_empty());
    }

    #[test]
    fn zero_failures_zero_mean_stall() {
        let m = metrics_with_outages(&[]);
        let trace = replay_tcp(&m, 5_000.0, 4);
        assert_eq!(mean_stall_per_failure_s(&trace, 0), 0.0);
    }
}

#[cfg(test)]
mod faulted_tests {
    use super::*;
    use rem_faults::FaultConfig;

    #[test]
    fn empty_plan_matches_clean_replay() {
        let m = RunMetrics { duration_s: 20.0, ..Default::default() };
        let clean = replay_tcp(&m, 10_000.0, 7);
        let faulted = replay_tcp_faulted(&m, &FaultPlan::empty(), 10_000.0, 7);
        assert_eq!(clean.total_acked_bytes, faulted.total_acked_bytes);
        assert_eq!(clean.rto_events, faulted.rto_events);
    }

    #[test]
    fn loss_bursts_degrade_goodput() {
        let m = RunMetrics { duration_s: 30.0, ..Default::default() };
        let cfg = FaultConfig {
            tcp_burst_per_min: 8.0,
            burst_ms: 2_000.0,
            burst_loss_prob: 0.4,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, 3, 0, 30_000.0);
        assert!(!plan.bursts().is_empty(), "no bursts scheduled");
        let clean = replay_tcp(&m, 30_000.0, 8);
        let faulted = replay_tcp_faulted(&m, &plan, 30_000.0, 8);
        assert!(
            faulted.total_acked_bytes < clean.total_acked_bytes,
            "faulted={} clean={}",
            faulted.total_acked_bytes,
            clean.total_acked_bytes
        );
        assert!(faulted.total_acked_bytes > 0);
    }

    #[test]
    fn bursts_beyond_window_are_clipped() {
        let m = RunMetrics { duration_s: 10.0, ..Default::default() };
        let cfg = FaultConfig { tcp_burst_per_min: 60.0, ..FaultConfig::default() };
        // Plan spans 60 s but the replay window is 5 s: must not panic,
        // and the replay stays deterministic.
        let plan = FaultPlan::generate(&cfg, 4, 0, 60_000.0);
        let a = replay_tcp_faulted(&m, &plan, 5_000.0, 9);
        let b = replay_tcp_faulted(&m, &plan, 5_000.0, 9);
        assert_eq!(a.total_acked_bytes, b.total_acked_bytes);
    }
}

#[cfg(test)]
mod interruption_tests {
    use super::*;
    use rem_mobility::CellId;
    use rem_sim::HandoverRecord;

    #[test]
    fn successful_handovers_cause_micro_interruptions() {
        // Many handovers, no failures: short breaks dent goodput but do
        // not create >1 s stalls.
        let mut m = RunMetrics { duration_s: 30.0, ..Default::default() };
        for i in 0..10 {
            m.handovers.push(HandoverRecord {
                t_ms: 2_000.0 + 2_500.0 * i as f64,
                from: CellId(i),
                to: CellId(i + 1),
                intra_freq: true,
                feedback_delay_ms: 100.0,
            });
        }
        let trace = replay_tcp(&m, 30_000.0, 5);
        assert!(trace.stall_periods(STALL_GAP_MS).is_empty());
        // But the interruptions cost some throughput vs a clean run.
        let clean = replay_tcp(&RunMetrics { duration_s: 30.0, ..Default::default() }, 30_000.0, 5);
        assert!(trace.total_acked_bytes < clean.total_acked_bytes);
    }
}
