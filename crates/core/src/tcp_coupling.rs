//! Coupling mobility failures to TCP (paper §7.1, Fig 9).
//!
//! The outage intervals a campaign produced become radio outages for
//! the miniature TCP stack; the resulting stall times quantify REM's
//! application-level benefit.

use rem_net::{simulate_transfer, LinkModel, Outage, TcpConfig, TcpTrace};
use rem_num::rng::rng_from_seed;
use rem_sim::RunMetrics;

/// The stall-gap threshold used by the Fig 9 analysis (ms): a goodput
/// gap longer than this counts as a stall.
pub const STALL_GAP_MS: f64 = 1_000.0;

/// Per-handover service interruption injected into the TCP replay
/// (break-before-make gap), ms.
pub const HO_INTERRUPTION_MS: f64 = 60.0;

/// Runs an iperf-like bulk transfer across a window of the campaign,
/// injecting the campaign's outages into the link.
///
/// `window_ms` bounds the replayed span (long campaigns are truncated;
/// outages are shifted accordingly). Returns the TCP trace.
pub fn replay_tcp(metrics: &RunMetrics, window_ms: f64, seed: u64) -> TcpTrace {
    let outages: Vec<Outage> = metrics
        .interruption_intervals_ms(HO_INTERRUPTION_MS)
        .into_iter()
        .filter(|(s, _)| *s < window_ms)
        .map(|(s, e)| Outage { start_ms: s, end_ms: e.min(window_ms) })
        .collect();
    let link = LinkModel { outages, ..Default::default() };
    let mut rng = rng_from_seed(seed);
    simulate_transfer(&TcpConfig::default(), &link, window_ms, &mut rng)
}

/// Mean stall time per outage event (s) — the Fig 9a bar value.
pub fn mean_stall_per_failure_s(trace: &TcpTrace, n_failures: usize) -> f64 {
    if n_failures == 0 {
        return 0.0;
    }
    trace.total_stall_ms(STALL_GAP_MS) / 1e3 / n_failures as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rem_sim::FailureRecord;
    use rem_mobility::FailureCause;

    fn metrics_with_outages(outages: &[(f64, f64)]) -> RunMetrics {
        RunMetrics {
            duration_s: 60.0,
            failures: outages
                .iter()
                .map(|&(s, e)| FailureRecord {
                    t_ms: s,
                    cause: FailureCause::FeedbackDelayLoss,
                    outage_ms: e - s,
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn outage_free_run_has_no_stalls() {
        let m = metrics_with_outages(&[]);
        let trace = replay_tcp(&m, 10_000.0, 1);
        assert!(trace.stall_periods(STALL_GAP_MS).is_empty());
        assert!(trace.total_acked_bytes > 0);
    }

    #[test]
    fn outages_create_stalls_longer_than_outage() {
        let m = metrics_with_outages(&[(3_000.0, 5_500.0)]);
        let trace = replay_tcp(&m, 20_000.0, 2);
        let stall = trace.total_stall_ms(STALL_GAP_MS);
        assert!(stall >= 2_500.0, "stall={stall}");
        assert!(mean_stall_per_failure_s(&trace, 1) >= 2.5);
    }

    #[test]
    fn outages_beyond_window_ignored() {
        let m = metrics_with_outages(&[(50_000.0, 55_000.0)]);
        let trace = replay_tcp(&m, 10_000.0, 3);
        assert!(trace.stall_periods(STALL_GAP_MS).is_empty());
    }

    #[test]
    fn zero_failures_zero_mean_stall() {
        let m = metrics_with_outages(&[]);
        let trace = replay_tcp(&m, 5_000.0, 4);
        assert_eq!(mean_stall_per_failure_s(&trace, 0), 0.0);
    }
}

#[cfg(test)]
mod interruption_tests {
    use super::*;
    use rem_mobility::CellId;
    use rem_sim::HandoverRecord;

    #[test]
    fn successful_handovers_cause_micro_interruptions() {
        // Many handovers, no failures: short breaks dent goodput but do
        // not create >1 s stalls.
        let mut m = RunMetrics { duration_s: 30.0, ..Default::default() };
        for i in 0..10 {
            m.handovers.push(HandoverRecord {
                t_ms: 2_000.0 + 2_500.0 * i as f64,
                from: CellId(i),
                to: CellId(i + 1),
                intra_freq: true,
                feedback_delay_ms: 100.0,
            });
        }
        let trace = replay_tcp(&m, 30_000.0, 5);
        assert!(trace.stall_periods(STALL_GAP_MS).is_empty());
        // But the interruptions cost some throughput vs a clean run.
        let clean = replay_tcp(&RunMetrics { duration_s: 30.0, ..Default::default() }, 30_000.0, 5);
        assert!(trace.total_acked_bytes < clean.total_acked_bytes);
    }
}
