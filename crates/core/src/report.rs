//! Machine-readable experiment reports.
//!
//! Every bench prints its table for humans; this module captures the
//! same numbers as JSON so EXPERIMENTS.md entries are regenerable and
//! diffable across commits (`target/rem-results/<name>.json` by
//! convention).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One experiment's structured output: named rows of named values.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id, e.g. "table5" or "fig10a".
    pub name: String,
    /// Free-form context (dataset, seeds, parameters).
    pub context: BTreeMap<String, String>,
    /// Rows: label -> (metric -> value).
    pub rows: Vec<ReportRow>,
}

/// One labelled row of metric values.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReportRow {
    /// Row label ("Beijing-Shanghai 300-350", "SNR 8 dB", ...).
    pub label: String,
    /// Metric name -> value.
    pub values: BTreeMap<String, f64>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), ..Default::default() }
    }

    /// Adds a context entry (builder style).
    pub fn with_context(mut self, key: &str, value: &str) -> Self {
        self.context.insert(key.to_string(), value.to_string());
        self
    }

    /// Appends a row.
    pub fn push_row(&mut self, label: &str, values: &[(&str, f64)]) {
        self.rows.push(ReportRow {
            label: label.to_string(),
            values: values.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Parses a report back.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The conventional output path: `target/rem-results/<name>.json`.
    pub fn default_path(&self) -> PathBuf {
        Path::new("target").join("rem-results").join(format!("{}.json", self.name))
    }

    /// Writes to the conventional path (creating directories) and
    /// returns it.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let path = self.default_path();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Looks up a value.
    pub fn get(&self, row_label: &str, metric: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.label == row_label)
            .and_then(|r| r.values.get(metric))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        let mut r = ExperimentReport::new("table5").with_context("seeds", "1,2,3");
        r.push_row("BS 300-350", &[("legacy_fail", 0.248), ("rem_fail", 0.082)]);
        r.push_row("BS 200-300", &[("legacy_fail", 0.208), ("rem_fail", 0.046)]);
        r
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let back = ExperimentReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.name, "table5");
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.get("BS 300-350", "rem_fail"), Some(0.082));
        assert_eq!(back.context.get("seeds").map(String::as_str), Some("1,2,3"));
    }

    #[test]
    fn lookup_semantics() {
        let r = sample();
        assert_eq!(r.get("nope", "legacy_fail"), None);
        assert_eq!(r.get("BS 300-350", "nope"), None);
    }

    #[test]
    fn default_path_shape() {
        let r = sample();
        let p = r.default_path();
        assert!(p.ends_with("rem-results/table5.json"));
    }
}
