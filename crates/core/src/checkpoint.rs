//! Crash-safe campaign checkpointing.
//!
//! A multi-hour Monte-Carlo campaign must survive SIGKILL, OOM and
//! power loss with its completed work intact. The contract here:
//!
//! * **Atomic saves** — the checkpoint is written to a sibling
//!   temporary file, fsynced, then renamed over the target. A reader
//!   never observes a half-written file.
//! * **Self-verifying** — the body carries an FNV-1a 64 checksum in
//!   the header line (`REMCKPT1 fnv1a64:<16 hex>`); truncation or
//!   bit-rot is a typed [`ExperimentError::ChecksumMismatch`], not a
//!   garbage resume.
//! * **Deterministic resume** — a checkpoint stores each completed
//!   trial's serialized record at its canonical index. Resuming runs
//!   *only* the missing indices; because every trial is a pure
//!   function of `(spec, index)`, the merged result — and therefore
//!   the campaign's `--hash` — is bit-identical to an uninterrupted
//!   run, at any thread count, interrupted at any point.
//!
//! The format is one header line plus a JSON body:
//!
//! ```text
//! REMCKPT1 fnv1a64:8c93...\n
//! {"kind":"compare","spec_json":"...","n_trials":8,"trials":[...]}
//! ```

use crate::error::ExperimentError;
use rem_exec::{CheckedPolicy, DeadlineOverrun, QuarantinedTrial, TrialOutcome};
use rem_num::health::{self, DegradedStats};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// FNV-1a 64 (the digest the CLI's `--hash` flag and the checkpoint
/// header both use).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Header magic of the checkpoint format.
pub const CHECKPOINT_MAGIC: &str = "REMCKPT1";

/// Atomically writes a checksummed artifact in the shared
/// `<magic> fnv1a64:<16 hex>\n<body>` layout: the content goes to a
/// sibling `<path>.tmp`, is fsynced, then renamed over `path`. Both
/// checkpoints (`REMCKPT1`) and the campaign service's queue journal
/// (`REMQUEUE1`) use this, so crash-atomicity has one implementation.
pub fn write_atomic_checksummed(
    magic: &str,
    path: &Path,
    body: &str,
) -> Result<(), ExperimentError> {
    let content = format!("{magic} fnv1a64:{:016x}\n{body}", fnv1a64(body.as_bytes()));
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let io = |e| ExperimentError::io(&tmp, e);
    let mut f = std::fs::File::create(&tmp).map_err(io)?;
    f.write_all(content.as_bytes()).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| ExperimentError::io(path, e))
}

/// Reads an artifact written by [`write_atomic_checksummed`], verifies
/// magic and checksum, and returns the body. Structural damage is a
/// typed [`ExperimentError::Corrupt`]; a checksum disagreement is
/// [`ExperimentError::ChecksumMismatch`] — never a panic, never a
/// silently accepted half-write.
pub fn read_checksummed(magic: &str, path: &Path) -> Result<String, ExperimentError> {
    let content = std::fs::read_to_string(path).map_err(|e| ExperimentError::io(path, e))?;
    let corrupt = |detail: &str| ExperimentError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    };
    let (header, body) = content.split_once('\n').ok_or_else(|| corrupt("missing header line"))?;
    let digest_hex = header
        .strip_prefix(magic)
        .and_then(|r| r.strip_prefix(" fnv1a64:"))
        .ok_or_else(|| corrupt("bad magic or header"))?;
    let expected = u64::from_str_radix(digest_hex.trim(), 16)
        .map_err(|_| corrupt("unparseable checksum"))?;
    let actual = fnv1a64(body.as_bytes());
    if expected != actual {
        return Err(ExperimentError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected,
            actual,
        });
    }
    Ok(body.to_string())
}

/// On-disk campaign state: which trials have completed and their
/// serialized records.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Campaign kind tag (`"compare"`, `"bler"`, ...): resuming a
    /// checkpoint into a different command is refused.
    pub kind: String,
    /// Canonical serialization of the campaign spec (threads excluded:
    /// a resume may use a different worker count).
    pub spec_json: String,
    /// Total trial count of the campaign.
    pub n_trials: usize,
    /// `trials[i]` holds trial `i`'s serialized record once complete.
    pub trials: Vec<Option<String>>,
}

impl Checkpoint {
    /// An empty checkpoint for a campaign of `n_trials` trials.
    pub fn new(kind: &str, spec_json: String, n_trials: usize) -> Self {
        Self { kind: kind.to_string(), spec_json, n_trials, trials: vec![None; n_trials] }
    }

    /// Number of completed trials.
    pub fn completed(&self) -> usize {
        self.trials.iter().filter(|t| t.is_some()).count()
    }

    /// Canonical indices still to run.
    pub fn missing(&self) -> Vec<usize> {
        self.trials
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.is_none().then_some(i))
            .collect()
    }

    /// True when every trial has a record.
    pub fn is_complete(&self) -> bool {
        self.trials.iter().all(Option::is_some)
    }

    /// Stores trial `index`'s serialized record.
    pub fn record(&mut self, index: usize, record_json: String) {
        self.trials[index] = Some(record_json);
    }

    /// Forgets trial `index`'s record (used by tests and tooling to
    /// simulate a campaign killed before those trials completed).
    pub fn unrecord(&mut self, index: usize) {
        self.trials[index] = None;
    }

    /// Deserializes trial `index`'s record, if present.
    pub fn decode_trial<T: DeserializeOwned>(
        &self,
        index: usize,
    ) -> Result<Option<T>, ExperimentError> {
        match &self.trials[index] {
            None => Ok(None),
            Some(json) => serde_json::from_str(json)
                .map(Some)
                .map_err(|e| ExperimentError::serde(format!("checkpoint trial {index}"), e)),
        }
    }

    /// Atomically writes the checkpoint: serialize, checksum, write to
    /// `<path>.tmp`, fsync, rename over `path`.
    pub fn save(&self, path: &Path) -> Result<(), ExperimentError> {
        let _timing = rem_obs::metrics::span("rem_core_checkpoint_save_us");
        let body =
            serde_json::to_string(self).map_err(|e| ExperimentError::serde("checkpoint", e))?;
        rem_obs::metrics::inc("rem_core_checkpoint_saves_total");
        rem_obs::metrics::add("rem_core_checkpoint_bytes_written_total", body.len() as u64);
        write_atomic_checksummed(CHECKPOINT_MAGIC, path, &body)
    }

    /// Loads and verifies a checkpoint written by [`Checkpoint::save`].
    pub fn load(path: &Path) -> Result<Self, ExperimentError> {
        let body = read_checksummed(CHECKPOINT_MAGIC, path)?;
        rem_obs::metrics::inc("rem_core_checkpoint_loads_total");
        rem_obs::metrics::add("rem_core_checkpoint_bytes_read_total", body.len() as u64);
        serde_json::from_str(&body).map_err(|e| ExperimentError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("body does not parse: {e}"),
        })
    }

    /// Refuses to resume into a campaign this checkpoint does not
    /// describe.
    pub fn verify_matches(
        &self,
        path: &Path,
        kind: &str,
        spec_json: &str,
        n_trials: usize,
    ) -> Result<(), ExperimentError> {
        let mismatch = |detail: String| ExperimentError::SpecMismatch {
            path: path.to_path_buf(),
            detail,
        };
        if self.kind != kind {
            return Err(mismatch(format!("kind '{}' != '{kind}'", self.kind)));
        }
        if self.n_trials != n_trials {
            return Err(mismatch(format!("{} trials != {n_trials}", self.n_trials)));
        }
        if self.spec_json != spec_json {
            return Err(mismatch("spec fingerprint differs".to_string()));
        }
        Ok(())
    }
}

/// Execution policy of a checkpointed campaign: worker threads, panic
/// retry budget, per-trial deadline, checkpoint cadence and an
/// optional cancellation hook.
#[derive(Clone)]
pub struct RunPolicy {
    /// Worker threads (`0` = all available hardware threads).
    pub threads: usize,
    /// Panicking-trial re-attempts before quarantine.
    pub max_retries: u32,
    /// Per-trial deadline (detection only; see
    /// [`rem_exec::CheckedPolicy::trial_timeout`]).
    pub trial_timeout_ms: Option<u64>,
    /// Save the checkpoint after every `checkpoint_every` newly
    /// completed trials (`0` = only at the end).
    pub checkpoint_every: usize,
    /// Polled at every wave boundary; returning `true` stops the
    /// campaign with [`ExperimentError::Interrupted`] after the
    /// just-finished wave's records are safely checkpointed. Signal
    /// handlers and the campaign service's drain/heartbeat path hook
    /// in here; `None` (the default) never cancels.
    pub cancel: Option<std::sync::Arc<dyn Fn() -> bool + Send + Sync>>,
}

impl std::fmt::Debug for RunPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunPolicy")
            .field("threads", &self.threads)
            .field("max_retries", &self.max_retries)
            .field("trial_timeout_ms", &self.trial_timeout_ms)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("cancel", &self.cancel.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl Default for RunPolicy {
    fn default() -> Self {
        Self {
            threads: 0,
            max_retries: 1,
            trial_timeout_ms: None,
            checkpoint_every: 16,
            cancel: None,
        }
    }
}

impl RunPolicy {
    /// The equivalent `rem_exec` policy.
    pub fn checked_policy(&self) -> CheckedPolicy {
        let mut p = CheckedPolicy::with_retries(self.max_retries);
        if let Some(ms) = self.trial_timeout_ms {
            p = p.with_timeout(Duration::from_millis(ms.max(1)));
        }
        p
    }

    /// This policy with `hook` installed as the cancellation check.
    pub fn with_cancel(
        mut self,
        hook: std::sync::Arc<dyn Fn() -> bool + Send + Sync>,
    ) -> Self {
        self.cancel = Some(hook);
        self
    }

    /// True when the cancellation hook reports the campaign should
    /// stop at the next wave boundary.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().map(|c| c()).unwrap_or(false)
    }
}

/// Everything a checkpointed campaign produced.
#[derive(Clone, Debug)]
pub struct CheckpointedRun<T> {
    /// `values[i]` is trial `i`'s value; `None` iff the trial was
    /// quarantined this run.
    pub values: Vec<Option<T>>,
    /// Trials that panicked on every attempt, canonical order.
    pub quarantined: Vec<QuarantinedTrial>,
    /// Deadline overruns observed this run (detection only).
    pub overruns: Vec<DeadlineOverrun>,
    /// Panicking attempts that were retried successfully.
    pub retries: u64,
    /// Trials replayed from the checkpoint instead of recomputed.
    pub resumed_trials: usize,
    /// Merged numerical-health ledger over every trial (resumed trials
    /// contribute the stats recorded when they originally ran).
    pub health: DegradedStats,
}

impl<T> CheckpointedRun<T> {
    /// True when every trial produced a value.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// The values, or the quarantine list as a typed error.
    pub fn into_values(self) -> Result<Vec<T>, ExperimentError> {
        if self.is_clean() {
            Ok(self.values.into_iter().flatten().collect())
        } else {
            Err(ExperimentError::Quarantined { trials: self.quarantined })
        }
    }
}

/// Runs (or resumes) a checkpointed campaign of `n_trials` independent
/// trials.
///
/// `trial(index, attempt)` must make its result a pure function of
/// `index` (the `attempt` parameter exists for fault-injection hooks —
/// see [`rem_exec::par_map_checked`]). Records are serialized as
/// `(value, DegradedStats)` pairs: the health ledger survives a resume
/// while staying out of any hash computed over the values.
///
/// With `path = None` this is a plain checked run (no file touched).
/// With a path, the checkpoint is saved after every wave of
/// [`RunPolicy::checkpoint_every`] trials and once at the end; if the
/// file already exists it is loaded, verified against
/// `(kind, spec_json, n_trials)` and only the missing trials run.
pub fn run_trials_checkpointed<T, F>(
    kind: &str,
    spec_json: &str,
    n_trials: usize,
    policy: &RunPolicy,
    path: Option<&Path>,
    trial: F,
) -> Result<CheckpointedRun<T>, ExperimentError>
where
    T: Serialize + DeserializeOwned + Send,
    F: Fn(usize, u32) -> T + Sync,
{
    let mut ckpt = match path {
        Some(p) if p.exists() => {
            let c = Checkpoint::load(p)?;
            c.verify_matches(p, kind, spec_json, n_trials)?;
            c
        }
        _ => Checkpoint::new(kind, spec_json.to_string(), n_trials),
    };

    let mut values: Vec<Option<T>> = Vec::with_capacity(n_trials);
    let mut stats = DegradedStats::default();
    for i in 0..n_trials {
        match ckpt.decode_trial::<(T, DegradedStats)>(i)? {
            Some((v, d)) => {
                stats.merge(&d);
                values.push(Some(v));
            }
            None => values.push(None),
        }
    }
    let resumed_trials = n_trials - values.iter().filter(|v| v.is_none()).count();

    let missing = ckpt.missing();
    rem_obs::metrics::add("rem_core_trials_resumed_total", resumed_trials as u64);
    rem_obs::trace::emit(
        "core",
        "campaign_start",
        &[
            ("kind", kind.into()),
            ("n_trials", n_trials.into()),
            ("resumed", resumed_trials.into()),
            ("missing", missing.len().into()),
        ],
    );
    let mut quarantined = Vec::new();
    let mut overruns = Vec::new();
    let mut retries = 0u64;
    let wave_len = if policy.checkpoint_every == 0 || path.is_none() {
        missing.len().max(1)
    } else {
        policy.checkpoint_every.max(1)
    };

    for wave in missing.chunks(wave_len) {
        // Wave-boundary cancellation: everything finished so far is
        // already saved (the checkpoint write trails every wave), so
        // stopping here loses no work and a resume reproduces the
        // uninterrupted hash exactly.
        if policy.cancelled() {
            let completed = ckpt.completed();
            rem_obs::trace::emit(
                "core",
                "campaign_interrupted",
                &[("kind", kind.into()), ("completed", completed.into())],
            );
            return Err(ExperimentError::Interrupted { completed, total: n_trials });
        }
        let run = rem_exec::par_map_checked(
            policy.threads,
            wave.len(),
            policy.checked_policy(),
            |wi, attempt| {
                let index = wave[wi];
                let _ = health::take_thread_stats();
                let v = trial(index, attempt);
                (v, health::take_thread_stats())
            },
        );
        retries += run.retries;
        overruns.extend(run.overruns.into_iter().map(|mut o| {
            o.index = wave[o.index];
            o
        }));
        for (wi, outcome) in run.outcomes.into_iter().enumerate() {
            let index = wave[wi];
            match outcome {
                TrialOutcome::Ok((v, d)) => {
                    stats.merge(&d);
                    // Encoding a record costs a full serialization per
                    // trial; skip it when there is no checkpoint file
                    // to write. The placeholder keeps `completed()`
                    // accurate and is never saved or decoded.
                    let record = if path.is_some() {
                        serde_json::to_string(&(&v, &d))
                            .map_err(|e| ExperimentError::serde(format!("trial {index}"), e))?
                    } else {
                        String::new()
                    };
                    ckpt.record(index, record);
                    values[index] = Some(v);
                }
                TrialOutcome::Quarantined(mut q) => {
                    q.index = index;
                    quarantined.push(q);
                }
            }
        }
        if let Some(p) = path {
            ckpt.save(p)?;
        }
        rem_obs::trace::emit(
            "core",
            "wave_done",
            &[("wave_len", wave.len().into()), ("completed", ckpt.completed().into())],
        );
    }

    quarantined.sort_by_key(|q| q.index);
    rem_obs::trace::emit(
        "core",
        "campaign_done",
        &[
            ("kind", kind.into()),
            ("quarantined", quarantined.len().into()),
            ("retries", retries.into()),
        ],
    );
    Ok(CheckpointedRun { values, quarantined, overruns, retries, resumed_trials, health: stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rem-core-ckpt-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn save_load_roundtrip() -> Result<(), ExperimentError> {
        let path = tmp("roundtrip.ckpt");
        let mut c = Checkpoint::new("demo", "{\"x\":1}".into(), 3);
        c.record(1, "[7,{}]".into());
        c.save(&path)?;
        let back = Checkpoint::load(&path)?;
        assert_eq!(back, c);
        assert_eq!(back.completed(), 1);
        assert_eq!(back.missing(), vec![0, 2]);
        assert!(!back.is_complete());
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn corrupted_body_is_a_checksum_mismatch() -> Result<(), ExperimentError> {
        let path = tmp("corrupt.ckpt");
        Checkpoint::new("demo", String::new(), 2).save(&path)?;
        let mut content = std::fs::read_to_string(&path).map_err(|e| ExperimentError::io(&path, e))?;
        // Flip one byte of the body, leaving the header intact.
        let flip = content.len() - 2;
        content.replace_range(flip..flip + 1, "9");
        std::fs::write(&path, &content).map_err(|e| ExperimentError::io(&path, e))?;
        match Checkpoint::load(&path) {
            Err(ExperimentError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let path = tmp("magic.ckpt");
        std::fs::write(&path, "NOTMAGIC abc\n{}").expect("write");
        match Checkpoint::load(&path) {
            Err(ExperimentError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verify_matches_rejects_other_campaigns() {
        let c = Checkpoint::new("compare", "spec-a".into(), 4);
        let p = Path::new("x.ckpt");
        assert!(c.verify_matches(p, "compare", "spec-a", 4).is_ok());
        assert!(matches!(
            c.verify_matches(p, "bler", "spec-a", 4),
            Err(ExperimentError::SpecMismatch { .. })
        ));
        assert!(matches!(
            c.verify_matches(p, "compare", "spec-b", 4),
            Err(ExperimentError::SpecMismatch { .. })
        ));
        assert!(matches!(
            c.verify_matches(p, "compare", "spec-a", 5),
            Err(ExperimentError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn checkpointed_run_resumes_only_missing_trials() -> Result<(), ExperimentError> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let path = tmp("resume-count.ckpt");
        let _ = std::fs::remove_file(&path);
        let policy = RunPolicy { threads: 1, checkpoint_every: 2, ..Default::default() };
        let trial = |i: usize, _a: u32| (i * i) as u64;

        let full = run_trials_checkpointed("demo", "s", 6, &policy, Some(&path), trial)?;
        assert!(full.is_clean());
        assert_eq!(full.resumed_trials, 0);

        // Simulate a kill: forget trials 2 and 5.
        let mut c = Checkpoint::load(&path)?;
        c.unrecord(2);
        c.unrecord(5);
        c.save(&path)?;

        let computed = AtomicUsize::new(0);
        let resumed = run_trials_checkpointed("demo", "s", 6, &policy, Some(&path), |i, a| {
            computed.fetch_add(1, Ordering::Relaxed);
            trial(i, a)
        })?;
        assert_eq!(computed.load(Ordering::Relaxed), 2, "only missing trials run");
        assert_eq!(resumed.resumed_trials, 4);
        assert_eq!(resumed.into_values()?, full.into_values()?);
        assert!(Checkpoint::load(&path)?.is_complete());
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn quarantined_trials_stay_missing_for_the_next_resume() -> Result<(), ExperimentError> {
        let path = tmp("quarantine.ckpt");
        let _ = std::fs::remove_file(&path);
        let policy =
            RunPolicy { threads: 2, max_retries: 1, checkpoint_every: 0, ..Default::default() };
        // Trial 3 always panics this run.
        let run = run_trials_checkpointed("demo", "s", 5, &policy, Some(&path), |i, _a| {
            if i == 3 {
                panic!("injected");
            }
            i as u64
        })?;
        assert_eq!(run.quarantined.len(), 1);
        assert_eq!(run.quarantined[0].index, 3);
        assert_eq!(run.quarantined[0].attempts, 2);
        assert!(run.values[3].is_none());
        assert!(matches!(run.into_values(), Err(ExperimentError::Quarantined { .. })));

        // The fixed binary resumes: only trial 3 runs, result complete.
        let resumed =
            run_trials_checkpointed("demo", "s", 5, &policy, Some(&path), |i, _a| i as u64)?;
        assert_eq!(resumed.resumed_trials, 4);
        assert_eq!(resumed.into_values()?, vec![0, 1, 2, 3, 4]);
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn health_ledger_survives_resume() -> Result<(), ExperimentError> {
        let path = tmp("health.ckpt");
        let _ = std::fs::remove_file(&path);
        let policy = RunPolicy { threads: 1, checkpoint_every: 1, ..Default::default() };
        let trial = |i: usize, _a: u32| {
            health::record(|d| d.non_finite_llr += i as u64);
            i as u64
        };
        let full = run_trials_checkpointed("demo", "s", 4, &policy, Some(&path), trial)?;
        assert_eq!(full.health.non_finite_llr, 6); // 0+1+2+3

        let mut c = Checkpoint::load(&path)?;
        c.unrecord(1);
        c.save(&path)?;
        let resumed = run_trials_checkpointed("demo", "s", 4, &policy, Some(&path), trial)?;
        assert_eq!(resumed.health.non_finite_llr, 6, "resumed trials keep their recorded stats");
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn no_path_is_a_plain_checked_run() -> Result<(), ExperimentError> {
        let run = run_trials_checkpointed(
            "demo",
            "s",
            8,
            &RunPolicy { threads: 3, ..Default::default() },
            None,
            |i, _a| i as u64,
        )?;
        assert_eq!(run.resumed_trials, 0);
        assert_eq!(run.into_values()?, (0..8).collect::<Vec<u64>>());
        Ok(())
    }

    #[test]
    fn checksummed_helpers_roundtrip_any_magic() -> Result<(), ExperimentError> {
        let path = tmp("journal.q");
        write_atomic_checksummed("REMQUEUE1", &path, "{\"jobs\":[]}")?;
        assert_eq!(read_checksummed("REMQUEUE1", &path)?, "{\"jobs\":[]}");
        // A reader expecting a different magic refuses the file.
        assert!(matches!(
            read_checksummed(CHECKPOINT_MAGIC, &path),
            Err(ExperimentError::Corrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn cancel_hook_interrupts_at_a_wave_boundary() -> Result<(), ExperimentError> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let path = tmp("cancel.ckpt");
        let _ = std::fs::remove_file(&path);
        // Cancel after the first poll: wave 1 runs, wave 2 does not.
        let polls = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&polls);
        let policy = RunPolicy {
            threads: 1,
            checkpoint_every: 2,
            cancel: Some(Arc::new(move || p2.fetch_add(1, Ordering::SeqCst) >= 1)),
            ..Default::default()
        };
        let ran = AtomicUsize::new(0);
        let err = run_trials_checkpointed("demo", "s", 6, &policy, Some(&path), |i, _a| {
            ran.fetch_add(1, Ordering::SeqCst);
            i as u64
        })
        .expect_err("cancelled run must not complete");
        match err {
            ExperimentError::Interrupted { completed, total } => {
                assert_eq!(completed, 2, "first wave checkpointed before the stop");
                assert_eq!(total, 6);
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
        assert_eq!(ran.load(Ordering::SeqCst), 2);

        // Resume without the hook: only the missing trials run, and the
        // merged result equals an uninterrupted run.
        let resume = RunPolicy { threads: 1, checkpoint_every: 2, ..Default::default() };
        let done = run_trials_checkpointed("demo", "s", 6, &resume, Some(&path), |i, _a| i as u64)?;
        assert_eq!(done.resumed_trials, 2);
        assert_eq!(done.into_values()?, (0..6).collect::<Vec<u64>>());
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
