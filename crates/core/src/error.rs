//! Typed experiment errors.
//!
//! Campaign code used to `unwrap()` its way through serialization and
//! I/O; a crashed multi-hour run then reported a panic backtrace
//! instead of what went wrong and with which file. Every fallible
//! campaign path now returns [`ExperimentError`], and the CLI maps it
//! to a structured message plus a non-zero exit code.

use std::path::PathBuf;

/// Everything that can go wrong running, checkpointing or resuming a
/// campaign.
#[derive(Debug)]
pub enum ExperimentError {
    /// Reading or writing a campaign artifact failed.
    Io {
        /// File involved.
        path: PathBuf,
        /// Underlying OS error.
        source: std::io::Error,
    },
    /// (De)serialization of campaign state failed.
    Serde {
        /// What was being (de)serialized.
        context: String,
        /// Serde's message.
        message: String,
    },
    /// A checkpoint's body does not match its recorded checksum: the
    /// file was truncated or altered after it was written.
    ChecksumMismatch {
        /// Checkpoint file.
        path: PathBuf,
        /// Digest recorded in the header.
        expected: u64,
        /// Digest of the body actually on disk.
        actual: u64,
    },
    /// A checkpoint was produced by a different campaign (different
    /// kind, spec fingerprint or trial count) and cannot be resumed
    /// into this one.
    SpecMismatch {
        /// Checkpoint file.
        path: PathBuf,
        /// What differed.
        detail: String,
    },
    /// The checkpoint file is structurally invalid (bad magic/header
    /// or unparseable body).
    Corrupt {
        /// Checkpoint file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// One or more trials panicked on every allowed attempt. The rest
    /// of the campaign completed; the quarantine list identifies what
    /// to investigate (and a later resume will retry exactly these).
    Quarantined {
        /// The quarantined trials, in canonical index order.
        trials: Vec<rem_exec::QuarantinedTrial>,
    },
    /// A scenario file failed to load or validate. The CLI treats this
    /// as a usage error (exit 2): the invocation, not the campaign,
    /// was wrong.
    Scenario(crate::scenario::ScenarioError),
    /// A study/campaign specification failed validation before any
    /// trial ran (also a usage error: exit 2).
    Config(String),
    /// The campaign was cancelled at a wave boundary (SIGINT/SIGTERM
    /// or a service drain). Completed work is already checkpointed; a
    /// resume finishes the remaining trials with an identical hash.
    Interrupted {
        /// Trials whose records are safely in the checkpoint.
        completed: usize,
        /// Total trials in the campaign.
        total: usize,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            ExperimentError::Serde { context, message } => {
                write!(f, "serialization error ({context}): {message}")
            }
            ExperimentError::ChecksumMismatch { path, expected, actual } => write!(
                f,
                "checkpoint {} is corrupt: checksum fnv1a64:{expected:016x} recorded, \
                 fnv1a64:{actual:016x} on disk",
                path.display()
            ),
            ExperimentError::SpecMismatch { path, detail } => write!(
                f,
                "checkpoint {} belongs to a different campaign: {detail}",
                path.display()
            ),
            ExperimentError::Corrupt { path, detail } => {
                write!(f, "{} is not a valid campaign artifact: {detail}", path.display())
            }
            ExperimentError::Quarantined { trials } => {
                write!(f, "{} trial(s) quarantined:", trials.len())?;
                for q in trials {
                    write!(f, "\n  {q}")?;
                }
                Ok(())
            }
            ExperimentError::Scenario(e) => write!(f, "{e}"),
            ExperimentError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ExperimentError::Interrupted { completed, total } => write!(
                f,
                "interrupted after {completed}/{total} trials; completed work is \
                 checkpointed — resume to finish with an identical hash"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ExperimentError {
    /// Shorthand for an I/O error on `path`.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        ExperimentError::Io { path: path.into(), source }
    }

    /// Shorthand for a serde error in `context`.
    pub fn serde(context: impl Into<String>, err: impl std::fmt::Display) -> Self {
        ExperimentError::Serde { context: context.into(), message: err.to_string() }
    }
}

impl From<crate::scenario::ScenarioError> for ExperimentError {
    fn from(e: crate::scenario::ScenarioError) -> Self {
        ExperimentError::Scenario(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_structured_and_specific() {
        let e = ExperimentError::ChecksumMismatch {
            path: PathBuf::from("/tmp/c.ckpt"),
            expected: 0xdead,
            actual: 0xbeef,
        };
        let s = e.to_string();
        assert!(s.contains("/tmp/c.ckpt"));
        assert!(s.contains("000000000000dead"));
        assert!(s.contains("000000000000beef"));

        let q = ExperimentError::Quarantined {
            trials: vec![rem_exec::QuarantinedTrial {
                index: 3,
                attempts: 2,
                payload: "boom".into(),
            }],
        };
        let s = q.to_string();
        assert!(s.contains("1 trial(s) quarantined"));
        assert!(s.contains("trial 3"));
        assert!(s.contains("boom"));
    }

    #[test]
    fn io_variant_exposes_source() {
        use std::error::Error;
        let e = ExperimentError::io(
            "/nope",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.source().is_some());
        assert!(e.to_string().contains("/nope"));
    }
}
