//! Paired legacy-vs-REM experiments (the paper's replay methodology).
//!
//! A [`Comparison`] runs both signaling planes over the *same* radio
//! environment (same seed — the environment RNG stream is shared) and
//! derives the reduction factors `ε = (K_legacy − K_rem) / K_rem`
//! reported in Table 5.

use rem_mobility::FailureCause;
use rem_sim::{simulate_run, DatasetSpec, Plane, RunConfig, RunMetrics};
use serde::{Deserialize, Serialize};

/// Results of one paired replay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Comparison {
    /// Dataset name.
    pub dataset: String,
    /// Client speed (km/h).
    pub speed_kmh: f64,
    /// Legacy plane metrics.
    pub legacy: RunMetrics,
    /// REM plane metrics.
    pub rem: RunMetrics,
}

impl Comparison {
    /// Runs both planes over `seeds` and aggregates.
    pub fn run(spec: &DatasetSpec, seeds: &[u64]) -> Self {
        let mut legacy = RunMetrics::default();
        let mut rem = RunMetrics::default();
        for &seed in seeds {
            let l = simulate_run(&RunConfig::new(spec.clone(), Plane::Legacy, seed));
            let r = simulate_run(&RunConfig::new(spec.clone(), Plane::Rem, seed));
            merge(&mut legacy, l);
            merge(&mut rem, r);
        }
        Self { dataset: spec.name.clone(), speed_kmh: spec.speed_kmh, legacy, rem }
    }

    /// The paper's reduction factor `ε = (K_lgc − K_rem) / K_rem` for a
    /// pair of counts; `f64::INFINITY` when REM has zero.
    pub fn epsilon(k_legacy: f64, k_rem: f64) -> f64 {
        if k_rem <= 0.0 {
            if k_legacy <= 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (k_legacy - k_rem) / k_rem
        }
    }

    /// ε over total failure counts.
    pub fn total_failure_epsilon(&self) -> f64 {
        Self::epsilon(self.legacy.failures.len() as f64, self.rem.failures.len() as f64)
    }

    /// ε over failures excluding coverage holes.
    pub fn no_hole_failure_epsilon(&self) -> f64 {
        let count = |m: &RunMetrics| {
            m.failures.iter().filter(|f| f.cause != FailureCause::CoverageHole).count() as f64
        };
        Self::epsilon(count(&self.legacy), count(&self.rem))
    }

    /// ε for one failure cause.
    pub fn cause_epsilon(&self, cause: FailureCause) -> f64 {
        let count =
            |m: &RunMetrics| m.failures.iter().filter(|f| f.cause == cause).count() as f64;
        Self::epsilon(count(&self.legacy), count(&self.rem))
    }
}

/// Concatenates run metrics (used to aggregate over seeds).
pub fn merge(into: &mut RunMetrics, from: RunMetrics) {
    // Offset times so records from different seeds don't interleave.
    let offset = into.duration_s * 1e3;
    into.duration_s += from.duration_s;
    into.handovers.extend(from.handovers.into_iter().map(|mut h| {
        h.t_ms += offset;
        h
    }));
    into.failures.extend(from.failures.into_iter().map(|mut f| {
        f.t_ms += offset;
        f
    }));
    into.loops.extend(from.loops.into_iter().map(|mut l| {
        l.start_ms += offset;
        l.end_ms += offset;
        l
    }));
    into.bler_before_failure_ul.extend(from.bler_before_failure_ul);
    into.bler_before_failure_dl.extend(from.bler_before_failure_dl);
    into.feedback_delays_ms.extend(from.feedback_delays_ms);
    into.signaling.reports += from.signaling.reports;
    into.signaling.commands += from.signaling.commands;
    into.signaling.reconfigs += from.signaling.reconfigs;
    into.signaling.harq_transmissions += from.signaling.harq_transmissions;
    into.trace.events.extend(from.trace.events);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_semantics() {
        assert_eq!(Comparison::epsilon(0.0, 0.0), 0.0);
        assert!(Comparison::epsilon(3.0, 0.0).is_infinite());
        assert!((Comparison::epsilon(12.0, 3.0) - 3.0).abs() < 1e-12);
        // Paper notation: "3.0x reduction" for 10.6% -> 2.63%.
        assert!((Comparison::epsilon(10.6, 2.63) - 3.03).abs() < 0.01);
    }

    #[test]
    fn paired_run_shows_rem_advantage_at_speed() {
        let spec = DatasetSpec::beijing_taiyuan(20.0, 300.0);
        let cmp = Comparison::run(&spec, &[11]);
        assert!(
            cmp.rem.failure_ratio_no_holes() <= cmp.legacy.failure_ratio_no_holes(),
            "rem={} legacy={}",
            cmp.rem.failure_ratio_no_holes(),
            cmp.legacy.failure_ratio_no_holes()
        );
        assert_eq!(cmp.rem.conflict_loops().count(), 0);
    }

    #[test]
    fn merge_concatenates_and_offsets() {
        let spec = DatasetSpec::beijing_taiyuan(10.0, 250.0);
        let a = simulate_run(&RunConfig::new(spec.clone(), Plane::Legacy, 1));
        let b = simulate_run(&RunConfig::new(spec, Plane::Legacy, 2));
        let (na, nb) = (a.handovers.len(), b.handovers.len());
        let dur_a = a.duration_s;
        let mut m = RunMetrics::default();
        merge(&mut m, a);
        merge(&mut m, b);
        assert_eq!(m.handovers.len(), na + nb);
        if nb > 0 {
            assert!(m.handovers[na].t_ms >= dur_a * 1e3);
        }
    }
}
