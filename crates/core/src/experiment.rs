//! Paired legacy-vs-REM experiments (the paper's replay methodology).
//!
//! A [`Comparison`] runs both signaling planes over the *same* radio
//! environment (same seed — the environment RNG stream is shared) and
//! derives the reduction factors `ε = (K_legacy − K_rem) / K_rem`
//! reported in Table 5.

use crate::checkpoint::{run_trials_checkpointed, Checkpoint, CheckpointedRun, RunPolicy};
use crate::error::ExperimentError;
use rem_exec::{DeadlineOverrun, QuarantinedTrial};
use rem_faults::FaultConfig;
use rem_mobility::FailureCause;
use rem_num::health::DegradedStats;
use rem_sim::{simulate_run, ClientTrial, DatasetSpec, Plane, RunConfig, RunMetrics, TrainMetrics, TrainScenario};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Route length (km) used by the headline Table 5 campaign.
pub const DEFAULT_ROUTE_KM: f64 = 60.0;

/// Seeds used by the headline Table 5 campaign.
pub const DEFAULT_SEEDS: [u64; 4] = [1, 2, 3, 4];

/// A Monte-Carlo replay campaign: the dataset, the seeds to replay it
/// under, and how many worker threads to run them on.
///
/// Each `(plane, seed)` replay is an independent trial
/// ([`rem_sim::simulate_run`] derives all randomness from the config's
/// seed), so a campaign fans its trials out over
/// [`rem_exec::par_map`] and reduces them in canonical seed order —
/// the aggregate is bit-identical for every thread count, including 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Dataset/route to replay.
    pub spec: DatasetSpec,
    /// Seeds to replay under; aggregation order follows this slice.
    pub seeds: Vec<u64>,
    /// Worker threads (`0` = all available hardware threads).
    pub threads: usize,
    /// Fault-injection configuration, applied to every trial. `None`
    /// (the default, and what older serialized campaigns deserialize
    /// to) replays the clean environment.
    #[serde(default)]
    pub faults: Option<FaultConfig>,
}

impl CampaignSpec {
    /// A campaign over `spec` with the headline defaults
    /// ([`DEFAULT_SEEDS`], all hardware threads, no fault injection).
    pub fn new(spec: DatasetSpec) -> Self {
        Self { spec, seeds: DEFAULT_SEEDS.to_vec(), threads: 0, faults: None }
    }

    /// Enables fault injection: every trial runs under a
    /// [`rem_faults::FaultPlan`] derived from this config and the
    /// trial's seed.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Replaces the seed list.
    pub fn with_seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Uses seeds `1..=n`.
    pub fn with_seed_count(mut self, n: usize) -> Self {
        self.seeds = (1..=n as u64).collect();
        self
    }

    /// Sets the worker thread count (`0` = all available).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs one plane over every seed in parallel, letting `configure`
    /// adjust each [`RunConfig`] (clamping, ablations, tracing...), and
    /// merges the per-seed metrics in canonical seed order.
    pub fn aggregate_with(
        &self,
        plane: Plane,
        configure: impl Fn(&mut RunConfig) + Sync,
    ) -> RunMetrics {
        let runs = rem_exec::par_map(self.threads, self.seeds.len(), |i| {
            let mut cfg = RunConfig::new(self.spec.clone(), plane, self.seeds[i]);
            cfg.faults = self.faults.clone();
            configure(&mut cfg);
            simulate_run(&cfg)
        });
        let mut agg = RunMetrics::default();
        for m in runs {
            merge(&mut agg, m);
        }
        agg
    }

    /// [`CampaignSpec::aggregate_with`] with the stock configuration.
    pub fn aggregate(&self, plane: Plane) -> RunMetrics {
        self.aggregate_with(plane, |_| {})
    }

    /// [`CampaignSpec::aggregate`] under crash isolation with optional
    /// checkpointing — the single-plane campaign path (what the fault
    /// harness runs). If `path` points at an existing checkpoint for
    /// the same campaign and plane, only the missing trials run; a
    /// clean run merges exactly the values [`CampaignSpec::aggregate`]
    /// produces, at any thread count.
    pub fn aggregate_checkpointed(
        &self,
        plane: Plane,
        policy: &RunPolicy,
        path: Option<&Path>,
    ) -> Result<CheckedAggregate, ExperimentError> {
        self.aggregate_checkpointed_with(plane, policy, path, |_, _| {})
    }

    /// [`CampaignSpec::aggregate_checkpointed`] with a per-attempt
    /// hook called at the top of every trial (the chaos-injection seam
    /// — see [`Comparison::run_checkpointed_with`]).
    pub fn aggregate_checkpointed_with(
        &self,
        plane: Plane,
        policy: &RunPolicy,
        path: Option<&Path>,
        hook: impl Fn(usize, u32) + Sync,
    ) -> Result<CheckedAggregate, ExperimentError> {
        // The plane joins the fingerprint: a legacy checkpoint must not
        // resume into a REM aggregate.
        let spec_json = serde_json::to_string(&(&self.spec, &self.seeds, &self.faults, plane))
            .map_err(|e| ExperimentError::serde("aggregate fingerprint", e))?;
        let run = run_trials_checkpointed(
            "aggregate",
            &spec_json,
            self.seeds.len(),
            policy,
            path,
            |i, attempt| {
                hook(i, attempt);
                let mut cfg = RunConfig::new(self.spec.clone(), plane, self.seeds[i]);
                cfg.faults = self.faults.clone();
                simulate_run(&cfg)
            },
        )?;
        let CheckpointedRun { values, quarantined, overruns, retries, resumed_trials, health } =
            run;
        let completed_trials = values.iter().filter(|v| v.is_some()).count();
        let mut metrics = RunMetrics::default();
        for v in values.into_iter().flatten() {
            merge(&mut metrics, v);
        }
        Ok(CheckedAggregate {
            metrics,
            quarantined,
            overruns,
            retries,
            resumed_trials,
            completed_trials,
            total_trials: self.seeds.len(),
            health,
        })
    }

    /// Canonical fingerprint of what this campaign *computes*: the
    /// dataset, the seeds and the fault configuration. Deliberately
    /// excludes `threads` — a checkpoint written at one worker count
    /// resumes at any other.
    pub fn fingerprint(&self) -> Result<String, ExperimentError> {
        serde_json::to_string(&(&self.spec, &self.seeds, &self.faults))
            .map_err(|e| ExperimentError::serde("campaign fingerprint", e))
    }

    /// Resumes the paired comparison whose checkpoint lives at `path`:
    /// rebuilds the campaign from the checkpoint's own fingerprint,
    /// runs only the missing trials and returns the completed result
    /// (bit-identical to an uninterrupted run). The worker count comes
    /// from `policy`, not from the original run.
    pub fn resume(
        path: &Path,
        policy: &RunPolicy,
    ) -> Result<(CampaignSpec, CheckedComparison), ExperimentError> {
        let ckpt = Checkpoint::load(path)?;
        if ckpt.kind != "compare" {
            return Err(ExperimentError::SpecMismatch {
                path: path.to_path_buf(),
                detail: format!("kind '{}' is not a compare campaign", ckpt.kind),
            });
        }
        let (spec, seeds, faults): (DatasetSpec, Vec<u64>, Option<FaultConfig>) =
            serde_json::from_str(&ckpt.spec_json)
                .map_err(|e| ExperimentError::serde("campaign fingerprint in checkpoint", e))?;
        let campaign = CampaignSpec { spec, seeds, threads: policy.threads, faults };
        let result = Comparison::run_checkpointed(&campaign, policy, Some(path))?;
        Ok((campaign, result))
    }
}

/// A [`Comparison`] produced under crash isolation: the aggregate plus
/// everything the supervision layer observed (quarantines, retries,
/// deadline overruns, the numerical-health ledger, and how much came
/// from a checkpoint).
#[derive(Clone, Debug)]
pub struct CheckedComparison {
    /// The paired aggregate over every *completed* trial.
    pub comparison: Comparison,
    /// Trials that panicked on every attempt (excluded from the
    /// aggregate; a later resume retries exactly these).
    pub quarantined: Vec<QuarantinedTrial>,
    /// Trials that exceeded the per-trial deadline (reported, never
    /// altered).
    pub overruns: Vec<DeadlineOverrun>,
    /// Panicking attempts that were retried successfully.
    pub retries: u64,
    /// Trials replayed from the checkpoint instead of recomputed.
    pub resumed_trials: usize,
    /// Completed trials (resumed + newly run).
    pub completed_trials: usize,
    /// Total trials in the campaign (`2 * seeds`).
    pub total_trials: usize,
    /// Merged numerical-health counters over all completed trials.
    pub health: DegradedStats,
}

impl CheckedComparison {
    /// True when every trial completed.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// The comparison, or the quarantine list as a typed error.
    pub fn into_result(self) -> Result<Comparison, ExperimentError> {
        if self.is_clean() {
            Ok(self.comparison)
        } else {
            Err(ExperimentError::Quarantined { trials: self.quarantined })
        }
    }
}

/// A single-plane campaign aggregate produced under crash isolation:
/// the merged metrics plus the supervision report (the single-plane
/// sibling of [`CheckedComparison`]).
#[derive(Clone, Debug)]
pub struct CheckedAggregate {
    /// Merged metrics over every *completed* trial.
    pub metrics: RunMetrics,
    /// Trials that panicked on every attempt (excluded from the
    /// aggregate; a later resume retries exactly these).
    pub quarantined: Vec<QuarantinedTrial>,
    /// Trials that exceeded the per-trial deadline (reported, never
    /// altered).
    pub overruns: Vec<DeadlineOverrun>,
    /// Panicking attempts that were retried successfully.
    pub retries: u64,
    /// Trials replayed from the checkpoint instead of recomputed.
    pub resumed_trials: usize,
    /// Completed trials (resumed + newly run).
    pub completed_trials: usize,
    /// Total trials in the campaign (one per seed).
    pub total_trials: usize,
    /// Merged numerical-health counters over all completed trials.
    pub health: DegradedStats,
}

impl CheckedAggregate {
    /// True when every trial completed.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// The metrics, or the quarantine list as a typed error.
    pub fn into_result(self) -> Result<RunMetrics, ExperimentError> {
        if self.is_clean() {
            Ok(self.metrics)
        } else {
            Err(ExperimentError::Quarantined { trials: self.quarantined })
        }
    }
}

/// A whole-train study produced under crash isolation: the burst
/// statistics plus the supervision report (the train sibling of
/// [`CheckedAggregate`]).
#[derive(Clone, Debug)]
pub struct CheckedTrain {
    /// Burst statistics over every *completed* client.
    pub metrics: TrainMetrics,
    /// Clients that panicked on every attempt (excluded from the
    /// statistics; a later resume retries exactly these).
    pub quarantined: Vec<QuarantinedTrial>,
    /// Clients that exceeded the per-trial deadline (reported, never
    /// altered).
    pub overruns: Vec<DeadlineOverrun>,
    /// Panicking attempts that were retried successfully.
    pub retries: u64,
    /// Clients replayed from the checkpoint instead of recomputed.
    pub resumed_trials: usize,
    /// Completed clients (resumed + newly run).
    pub completed_trials: usize,
    /// Total clients in the study.
    pub total_trials: usize,
    /// Merged numerical-health counters over all completed clients.
    pub health: DegradedStats,
}

impl CheckedTrain {
    /// True when every client completed.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// The metrics, or the quarantine list as a typed error.
    pub fn into_result(self) -> Result<TrainMetrics, ExperimentError> {
        if self.is_clean() {
            Ok(self.metrics)
        } else {
            Err(ExperimentError::Quarantined { trials: self.quarantined })
        }
    }
}

/// [`rem_sim::TrainScenario::run`] under crash isolation with optional
/// checkpointing: each client is an independent trial (a pure function
/// of `(scenario, client index)` — see
/// [`rem_sim::TrainScenario::client_trial`]), so a killed study
/// resumes with only the missing clients and a clean run merges into
/// exactly the metrics `TrainScenario::run` produces — same JSON, same
/// hash. `hook(i, attempt)` is the chaos-injection seam (see
/// [`Comparison::run_checkpointed_with`]).
/// The serializable identity of a train study: every field that feeds
/// a client trial's value (`RunConfig` itself does not serialize; the
/// link, timer and re-establishment sections stay at their defaults
/// for train studies, so they are omitted). The same tuple lets `rem
/// rerun` rebuild the scenario from a manifest alone.
pub fn train_fingerprint(train: &TrainScenario) -> Result<String, ExperimentError> {
    let b = &train.base;
    serde_json::to_string(&(
        &b.spec,
        b.plane,
        b.seed,
        b.rem_clamp_offsets,
        b.ablation,
        &b.faults,
        train.clients,
        train.train_len_m,
        train.window_ms,
    ))
    .map_err(|e| ExperimentError::serde("train fingerprint", e))
}

pub fn run_train_checkpointed(
    train: &TrainScenario,
    policy: &RunPolicy,
    path: Option<&Path>,
    hook: impl Fn(usize, u32) + Sync,
) -> Result<CheckedTrain, ExperimentError> {
    let spec_json = train_fingerprint(train)?;
    let run = run_trials_checkpointed(
        "train",
        &spec_json,
        train.clients,
        policy,
        path,
        |i, attempt| {
            hook(i, attempt);
            train.client_trial(i)
        },
    )?;
    let CheckpointedRun { values, quarantined, overruns, retries, resumed_trials, health } = run;
    let completed: Vec<ClientTrial> = values.iter().flatten().cloned().collect();
    let completed_trials = completed.len();
    Ok(CheckedTrain {
        metrics: train.merge_trials(&completed),
        quarantined,
        overruns,
        retries,
        resumed_trials,
        completed_trials,
        total_trials: train.clients,
        health,
    })
}

/// Results of one paired replay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Comparison {
    /// Dataset name.
    pub dataset: String,
    /// Client speed (km/h).
    pub speed_kmh: f64,
    /// Legacy plane metrics.
    pub legacy: RunMetrics,
    /// REM plane metrics.
    pub rem: RunMetrics,
}

impl Comparison {
    /// Runs both planes over the campaign's seeds and aggregates.
    ///
    /// All `2 * seeds` replays (legacy and REM) are independent trials
    /// scheduled over the campaign's worker threads; per-plane metrics
    /// are merged in seed order, so the result is bit-identical for
    /// every thread count.
    pub fn run(campaign: &CampaignSpec) -> Self {
        let n = campaign.seeds.len();
        let runs = rem_exec::par_map(campaign.threads, 2 * n, |i| {
            let (plane, seed) = if i < n {
                (Plane::Legacy, campaign.seeds[i])
            } else {
                (Plane::Rem, campaign.seeds[i - n])
            };
            let mut cfg = RunConfig::new(campaign.spec.clone(), plane, seed);
            cfg.faults = campaign.faults.clone();
            simulate_run(&cfg)
        });
        let mut legacy = RunMetrics::default();
        let mut rem = RunMetrics::default();
        for (i, m) in runs.into_iter().enumerate() {
            if i < n {
                merge(&mut legacy, m);
            } else {
                merge(&mut rem, m);
            }
        }
        Self {
            dataset: campaign.spec.name.clone(),
            speed_kmh: campaign.spec.speed_kmh,
            legacy,
            rem,
        }
    }

    /// [`Comparison::run`] under crash isolation with optional
    /// checkpointing: each of the `2 * seeds` replays runs inside
    /// `catch_unwind` with retry/quarantine semantics, and with a
    /// `path` the campaign state is atomically saved as trials finish,
    /// so a killed process resumes with only the missing trials.
    ///
    /// A clean (no-quarantine) run merges exactly the values
    /// [`Comparison::run`] would have produced — same JSON, same hash.
    pub fn run_checkpointed(
        campaign: &CampaignSpec,
        policy: &RunPolicy,
        path: Option<&Path>,
    ) -> Result<CheckedComparison, ExperimentError> {
        Self::run_checkpointed_with(campaign, policy, path, |_, _| {})
    }

    /// [`Comparison::run_checkpointed`] with a per-attempt hook called
    /// at the top of every trial — the seam chaos testing uses to
    /// inject deterministic panics (e.g.
    /// `rem_faults::ChaosConfig::maybe_panic`). The hook must not
    /// affect the trial's *value*, only whether it panics.
    pub fn run_checkpointed_with(
        campaign: &CampaignSpec,
        policy: &RunPolicy,
        path: Option<&Path>,
        hook: impl Fn(usize, u32) + Sync,
    ) -> Result<CheckedComparison, ExperimentError> {
        let n = campaign.seeds.len();
        let spec_json = campaign.fingerprint()?;
        let run = run_trials_checkpointed(
            "compare",
            &spec_json,
            2 * n,
            policy,
            path,
            |i, attempt| {
                hook(i, attempt);
                let (plane, seed) = if i < n {
                    (Plane::Legacy, campaign.seeds[i])
                } else {
                    (Plane::Rem, campaign.seeds[i - n])
                };
                let mut cfg = RunConfig::new(campaign.spec.clone(), plane, seed);
                cfg.faults = campaign.faults.clone();
                simulate_run(&cfg)
            },
        )?;
        let CheckpointedRun { values, quarantined, overruns, retries, resumed_trials, health } =
            run;
        let completed_trials = values.iter().filter(|v| v.is_some()).count();
        let mut legacy = RunMetrics::default();
        let mut rem = RunMetrics::default();
        for (i, v) in values.into_iter().enumerate() {
            if let Some(m) = v {
                if i < n {
                    merge(&mut legacy, m);
                } else {
                    merge(&mut rem, m);
                }
            }
        }
        Ok(CheckedComparison {
            comparison: Comparison {
                dataset: campaign.spec.name.clone(),
                speed_kmh: campaign.spec.speed_kmh,
                legacy,
                rem,
            },
            quarantined,
            overruns,
            retries,
            resumed_trials,
            completed_trials,
            total_trials: 2 * n,
            health,
        })
    }

    /// Runs both planes over explicit `seeds`, serially.
    #[deprecated(
        since = "0.1.0",
        note = "use `Comparison::run(&CampaignSpec)` (seed list + thread count as a value) instead"
    )]
    pub fn run_seeds(spec: &DatasetSpec, seeds: &[u64]) -> Self {
        Self::run(&CampaignSpec::new(spec.clone()).with_seeds(seeds).with_threads(1))
    }

    /// The paper's reduction factor `ε = (K_lgc − K_rem) / K_rem` for a
    /// pair of counts; `f64::INFINITY` when REM has zero.
    pub fn epsilon(k_legacy: f64, k_rem: f64) -> f64 {
        if k_rem <= 0.0 {
            if k_legacy <= 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (k_legacy - k_rem) / k_rem
        }
    }

    /// ε over total failure counts.
    pub fn total_failure_epsilon(&self) -> f64 {
        Self::epsilon(self.legacy.failures.len() as f64, self.rem.failures.len() as f64)
    }

    /// ε over failures excluding coverage holes.
    pub fn no_hole_failure_epsilon(&self) -> f64 {
        let count = |m: &RunMetrics| {
            m.failures.iter().filter(|f| f.cause != FailureCause::CoverageHole).count() as f64
        };
        Self::epsilon(count(&self.legacy), count(&self.rem))
    }

    /// ε for one failure cause.
    pub fn cause_epsilon(&self, cause: FailureCause) -> f64 {
        let count =
            |m: &RunMetrics| m.failures.iter().filter(|f| f.cause == cause).count() as f64;
        Self::epsilon(count(&self.legacy), count(&self.rem))
    }
}

/// Concatenates run metrics (used to aggregate over seeds).
pub fn merge(into: &mut RunMetrics, from: RunMetrics) {
    // Offset times so records from different seeds don't interleave.
    let offset = into.duration_s * 1e3;
    into.duration_s += from.duration_s;
    into.handovers.extend(from.handovers.into_iter().map(|mut h| {
        h.t_ms += offset;
        h
    }));
    into.failures.extend(from.failures.into_iter().map(|mut f| {
        f.t_ms += offset;
        f
    }));
    into.loops.extend(from.loops.into_iter().map(|mut l| {
        l.start_ms += offset;
        l.end_ms += offset;
        l
    }));
    into.bler_before_failure_ul.extend(from.bler_before_failure_ul);
    into.bler_before_failure_dl.extend(from.bler_before_failure_dl);
    into.feedback_delays_ms.extend(from.feedback_delays_ms);
    into.signaling.reports += from.signaling.reports;
    into.signaling.commands += from.signaling.commands;
    into.signaling.reconfigs += from.signaling.reconfigs;
    into.signaling.harq_transmissions += from.signaling.harq_transmissions;
    into.signaling.x2_messages += from.signaling.x2_messages;
    into.injected.extend(from.injected.into_iter().map(|mut f| {
        f.t_ms += offset;
        f
    }));
    into.fault_oracle.extend(from.fault_oracle.into_iter().map(|mut p| {
        p.t_ms += offset;
        p
    }));
    into.reestablish_attempts += from.reestablish_attempts;
    into.rem_fallback_epochs += from.rem_fallback_epochs;
    into.trace.events.extend(from.trace.events);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_semantics() {
        assert_eq!(Comparison::epsilon(0.0, 0.0), 0.0);
        assert!(Comparison::epsilon(3.0, 0.0).is_infinite());
        assert!((Comparison::epsilon(12.0, 3.0) - 3.0).abs() < 1e-12);
        // Paper notation: "3.0x reduction" for 10.6% -> 2.63%.
        assert!((Comparison::epsilon(10.6, 2.63) - 3.03).abs() < 0.01);
    }

    #[test]
    fn paired_run_shows_rem_advantage_at_speed() {
        let spec = DatasetSpec::beijing_taiyuan(20.0, 300.0);
        let cmp = Comparison::run(&CampaignSpec::new(spec).with_seeds(&[11]));
        assert!(
            cmp.rem.failure_ratio_no_holes() <= cmp.legacy.failure_ratio_no_holes(),
            "rem={} legacy={}",
            cmp.rem.failure_ratio_no_holes(),
            cmp.legacy.failure_ratio_no_holes()
        );
        assert_eq!(cmp.rem.conflict_loops().count(), 0);
    }

    #[test]
    fn campaign_defaults_match_headline_constants() {
        let c = CampaignSpec::new(DatasetSpec::beijing_taiyuan(DEFAULT_ROUTE_KM, 300.0));
        assert_eq!(c.seeds, DEFAULT_SEEDS.to_vec());
        assert_eq!(c.threads, 0);
        assert_eq!(c.clone().with_seed_count(3).seeds, vec![1, 2, 3]);
        assert_eq!(c.with_threads(2).threads, 2);
    }

    #[test]
    fn campaign_is_thread_count_invariant() -> Result<(), Box<dyn std::error::Error>> {
        let campaign =
            CampaignSpec::new(DatasetSpec::beijing_taiyuan(12.0, 300.0)).with_seeds(&[7, 8]);
        let serial = Comparison::run(&campaign.clone().with_threads(1));
        let parallel = Comparison::run(&campaign.with_threads(4));
        assert_eq!(
            serde_json::to_string(&serial)?,
            serde_json::to_string(&parallel)?,
            "1-thread and 4-thread campaigns must be bit-identical"
        );
        Ok(())
    }

    #[test]
    fn aggregate_matches_manual_serial_merge() -> Result<(), Box<dyn std::error::Error>> {
        let campaign =
            CampaignSpec::new(DatasetSpec::beijing_taiyuan(10.0, 250.0)).with_seeds(&[1, 2]);
        let mut manual = RunMetrics::default();
        for &seed in &campaign.seeds {
            let spec = campaign.spec.clone();
            merge(&mut manual, simulate_run(&RunConfig::new(spec, Plane::Legacy, seed)));
        }
        let agg = campaign.with_threads(4).aggregate(Plane::Legacy);
        assert_eq!(serde_json::to_string(&manual)?, serde_json::to_string(&agg)?);
        Ok(())
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_seeds_shim_matches_campaign() -> Result<(), Box<dyn std::error::Error>> {
        let spec = DatasetSpec::beijing_taiyuan(10.0, 250.0);
        let shim = Comparison::run_seeds(&spec, &[5]);
        let new = Comparison::run(&CampaignSpec::new(spec).with_seeds(&[5]));
        assert_eq!(serde_json::to_string(&shim)?, serde_json::to_string(&new)?);
        Ok(())
    }

    #[test]
    fn faulted_campaign_is_thread_count_invariant() -> Result<(), Box<dyn std::error::Error>> {
        let campaign = CampaignSpec::new(DatasetSpec::beijing_taiyuan(12.0, 300.0))
            .with_seeds(&[3, 4])
            .with_faults(FaultConfig::aggressive());
        let serial = Comparison::run(&campaign.clone().with_threads(1));
        let parallel = Comparison::run(&campaign.with_threads(4));
        assert_eq!(
            serde_json::to_string(&serial)?,
            serde_json::to_string(&parallel)?,
            "faulted campaigns must stay bit-identical across thread counts"
        );
        assert!(!serial.legacy.injected.is_empty(), "aggressive plan injected nothing");
        assert!(serial.legacy.oracle_mismatches().is_empty());
        assert!(serial.rem.oracle_mismatches().is_empty());
        Ok(())
    }

    #[test]
    fn checkpointed_clean_run_matches_plain_run() -> Result<(), Box<dyn std::error::Error>> {
        let campaign = CampaignSpec::new(DatasetSpec::beijing_taiyuan(10.0, 250.0))
            .with_seeds(&[5, 6])
            .with_threads(2);
        let plain = Comparison::run(&campaign);
        let checked = Comparison::run_checkpointed(
            &campaign,
            &RunPolicy { threads: 2, ..Default::default() },
            None,
        )?;
        assert!(checked.is_clean());
        assert_eq!(checked.completed_trials, 4);
        assert_eq!(checked.resumed_trials, 0);
        assert_eq!(
            serde_json::to_string(&plain)?,
            serde_json::to_string(&checked.into_result()?)?,
            "crash isolation must not perturb a clean campaign"
        );
        Ok(())
    }

    #[test]
    fn checkpointed_aggregate_matches_plain_aggregate() -> Result<(), Box<dyn std::error::Error>>
    {
        let dir = std::env::temp_dir().join("rem-core-exp-tests");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("aggregate-resume.ckpt");
        let _ = std::fs::remove_file(&path);

        let campaign = CampaignSpec::new(DatasetSpec::beijing_taiyuan(10.0, 250.0))
            .with_seeds(&[2, 3])
            .with_faults(FaultConfig::aggressive());
        let plain = campaign.aggregate(Plane::Legacy);
        let policy = RunPolicy { threads: 2, checkpoint_every: 1, ..Default::default() };
        let full = campaign.aggregate_checkpointed(Plane::Legacy, &policy, Some(&path))?;
        assert!(full.is_clean());
        assert_eq!(
            serde_json::to_string(&plain)?,
            serde_json::to_string(&full.into_result()?)?,
            "checked single-plane aggregate must match the plain one"
        );

        // Forget one trial and rerun with the same checkpoint: only the
        // hole recomputes and the merge is unchanged.
        let mut ckpt = Checkpoint::load(&path)?;
        ckpt.unrecord(0);
        ckpt.save(&path)?;
        let resumed = campaign.aggregate_checkpointed(Plane::Legacy, &policy, Some(&path))?;
        assert_eq!(resumed.resumed_trials, 1);
        assert_eq!(serde_json::to_string(&plain)?, serde_json::to_string(&resumed.metrics)?);

        // A different plane refuses the checkpoint outright.
        assert!(matches!(
            campaign.aggregate_checkpointed(Plane::Rem, &policy, Some(&path)),
            Err(ExperimentError::SpecMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() -> Result<(), Box<dyn std::error::Error>> {
        let dir = std::env::temp_dir().join("rem-core-exp-tests");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("compare-resume.ckpt");
        let _ = std::fs::remove_file(&path);

        let campaign =
            CampaignSpec::new(DatasetSpec::beijing_taiyuan(10.0, 250.0)).with_seeds(&[9, 10]);
        let policy = RunPolicy { threads: 2, checkpoint_every: 1, ..Default::default() };
        let uninterrupted = Comparison::run(&campaign.clone().with_threads(1));
        let full = Comparison::run_checkpointed(&campaign, &policy, Some(&path))?;
        assert!(full.is_clean());

        // Simulate a kill mid-campaign, then resume from the file alone.
        let mut ckpt = Checkpoint::load(&path)?;
        ckpt.unrecord(1);
        ckpt.unrecord(3);
        ckpt.save(&path)?;
        let (rebuilt, resumed) = CampaignSpec::resume(&path, &policy)?;
        assert_eq!(rebuilt.seeds, campaign.seeds);
        assert_eq!(resumed.resumed_trials, 2);
        assert_eq!(
            serde_json::to_string(&resumed.into_result()?)?,
            serde_json::to_string(&uninterrupted)?,
            "resumed campaign must equal an uninterrupted run"
        );
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn chaos_hook_panics_are_retried_without_changing_the_result(
    ) -> Result<(), Box<dyn std::error::Error>> {
        let campaign =
            CampaignSpec::new(DatasetSpec::beijing_taiyuan(10.0, 250.0)).with_seeds(&[11]);
        let clean = Comparison::run(&campaign.clone().with_threads(1));
        let chaos = rem_faults::ChaosConfig::transient(5, 1.0);
        let checked = Comparison::run_checkpointed_with(
            &campaign,
            &RunPolicy { threads: 2, max_retries: 2, ..Default::default() },
            None,
            |i, a| chaos.maybe_panic(i, a),
        )?;
        assert!(checked.is_clean());
        assert_eq!(checked.retries, 2, "both trials panicked once and were retried");
        assert_eq!(
            serde_json::to_string(&checked.into_result()?)?,
            serde_json::to_string(&clean)?,
            "retried trials must reproduce the unfaulted values exactly"
        );
        Ok(())
    }

    #[test]
    fn checkpointed_train_matches_plain_run_and_resumes() -> Result<(), Box<dyn std::error::Error>>
    {
        let dir = std::env::temp_dir().join("rem-core-exp-tests");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("train-resume.ckpt");
        let _ = std::fs::remove_file(&path);

        let base =
            RunConfig::new(DatasetSpec::beijing_taiyuan(8.0, 300.0), Plane::Legacy, 5);
        let train = TrainScenario::new(base).with_clients(3).with_threads(1);
        let plain = train.run();
        let policy = RunPolicy { threads: 1, checkpoint_every: 1, ..Default::default() };
        let checked = run_train_checkpointed(&train, &policy, Some(&path), |_, _| {})?;
        assert!(checked.is_clean());
        assert_eq!(checked.total_trials, 3);
        assert_eq!(
            serde_json::to_string(&plain)?,
            serde_json::to_string(&checked.metrics)?,
            "crash isolation must not perturb a clean train study"
        );

        // Forget one client and resume: only the hole recomputes.
        let mut ckpt = Checkpoint::load(&path)?;
        ckpt.unrecord(1);
        ckpt.save(&path)?;
        let resumed = run_train_checkpointed(&train, &policy, Some(&path), |_, _| {})?;
        assert_eq!(resumed.resumed_trials, 2);
        assert_eq!(serde_json::to_string(&plain)?, serde_json::to_string(&resumed.metrics)?);

        // A different client count refuses the checkpoint.
        let other = train.clone().with_clients(4);
        assert!(matches!(
            run_train_checkpointed(&other, &policy, Some(&path), |_, _| {}),
            Err(ExperimentError::SpecMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn merge_aggregates_fault_fields() {
        let spec = DatasetSpec::beijing_taiyuan(10.0, 300.0);
        let mk = |seed| {
            let mut cfg = RunConfig::new(spec.clone(), Plane::Legacy, seed);
            cfg.faults = Some(FaultConfig::aggressive());
            simulate_run(&cfg)
        };
        let (a, b) = (mk(1), mk(2));
        let dur_a_ms = a.duration_s * 1e3;
        let n_inj = a.injected.len() + b.injected.len();
        let n_oracle = a.fault_oracle.len() + b.fault_oracle.len();
        let reest = a.reestablish_attempts + b.reestablish_attempts;
        let x2 = a.signaling.x2_messages + b.signaling.x2_messages;
        let b_first_inj = b.injected.first().map(|f| f.t_ms);
        let mut m = RunMetrics::default();
        merge(&mut m, a);
        merge(&mut m, b);
        assert_eq!(m.injected.len(), n_inj);
        assert_eq!(m.fault_oracle.len(), n_oracle);
        assert_eq!(m.reestablish_attempts, reest);
        assert_eq!(m.signaling.x2_messages, x2);
        if let Some(t) = b_first_inj {
            // The second run's fault times were shifted past the first.
            assert!(m.injected.iter().any(|f| (f.t_ms - (t + dur_a_ms)).abs() < 1e-6));
        }
    }

    #[test]
    fn campaign_spec_deserializes_without_faults_field() -> Result<(), Box<dyn std::error::Error>>
    {
        // Campaign JSON from before fault injection existed has no
        // `faults` key; it must load as a clean campaign.
        let spec = CampaignSpec::new(DatasetSpec::beijing_taiyuan(10.0, 300.0));
        let mut v: serde_json::Value = serde_json::to_value(&spec)?;
        v.as_object_mut().ok_or("campaign must serialize to an object")?.remove("faults");
        let back: CampaignSpec = serde_json::from_value(v)?;
        assert!(back.faults.is_none());
        Ok(())
    }

    #[test]
    fn merge_concatenates_and_offsets() {
        let spec = DatasetSpec::beijing_taiyuan(10.0, 250.0);
        let a = simulate_run(&RunConfig::new(spec.clone(), Plane::Legacy, 1));
        let b = simulate_run(&RunConfig::new(spec, Plane::Legacy, 2));
        let (na, nb) = (a.handovers.len(), b.handovers.len());
        let dur_a = a.duration_s;
        let mut m = RunMetrics::default();
        merge(&mut m, a);
        merge(&mut m, b);
        assert_eq!(m.handovers.len(), na + nb);
        if nb > 0 {
            assert!(m.handovers[na].t_ms >= dur_a * 1e3);
        }
    }
}
