//! The Fig-9-style transport stall study (`rem net study`).
//!
//! Fig 9's headline is that recovery machinery — not raw link quality —
//! decides how long a stall outlives the radio event that caused it.
//! This study quantifies that across the cellular-path fault taxonomy:
//! each trial replays one bulk transfer over a link carrying the
//! extreme-mobility baseline (handover-aligned outage bursts from a
//! [`NetFaultPlan`]) plus one injected pathology, under one recovery
//! policy. Stalls are classified by cause, bucketed into duration
//! histograms, and every scored stall and recovery action is checked
//! against the plan's ground truth — a study whose classifier
//! hallucinates causes fails its oracle gate.
//!
//! The policy ladder:
//!
//! * [`NetPolicy::Reno`] — loss-based vanilla recovery
//!   ([`ResilienceConfig::vanilla`]); spurious timeouts collapse cwnd,
//!   NAT rebinds zombie the flow forever.
//! * [`NetPolicy::Frto`] — F-RTO spurious-timeout undo plus
//!   zombie-connection reconnect ([`ResilienceConfig::frto`]).
//! * [`NetPolicy::RemInformed`] — F-RTO plus a REM forecast built from
//!   the plan's own outage schedule (the REM plane *predicts* the
//!   handovers it schedules), freezing cwnd and suppressing RTO backoff
//!   across predicted outages ([`ResilienceConfig::rem_informed`]).
//!
//! Trials are pure functions of `(spec, index)` and run under
//! [`run_trials_checkpointed`], so the study checkpoints, resumes, and
//! hashes bit-identically at any worker thread count.

use crate::checkpoint::{run_trials_checkpointed, CheckpointedRun, RunPolicy};
use crate::error::ExperimentError;
use rem_exec::{DeadlineOverrun, QuarantinedTrial};
use rem_faults::{NetFaultConfig, NetFaultKind, NetFaultPlan};
use rem_net::tcp::{simulate_transfer_resilient, LinkModel, TcpConfig};
use rem_net::{
    classify_stalls, CauseBreakdown, ForecastWindow, NetStats, RemForecast, ResilienceConfig,
    StallCause,
};
use rem_num::health::DegradedStats;
use rem_num::rng::child_rng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Stall-gap threshold of the study (ms): an ack gap longer than this
/// counts as a stall (the Fig 9 convention).
pub const NET_STALL_GAP_MS: f64 = 1_000.0;

/// Attribution slack of the oracle gate (ms): a stall or recovery may
/// trail the fault that caused it by up to this much (RTO ladders and
/// queue drains lag the event).
pub const NET_ORACLE_SLACK_MS: f64 = 2_000.0;

/// Histogram bucket edges (s): stalls land in `[1,2) [2,4) [4,8)
/// [8,16) [16,∞)`.
pub const NET_HIST_EDGES_S: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// One recovery policy of the study ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetPolicy {
    /// Vanilla loss-based Reno recovery.
    Reno,
    /// F-RTO spurious-timeout undo + zombie reconnect.
    Frto,
    /// F-RTO plus REM-forecast cwnd freezing across predicted outages.
    RemInformed,
}

impl NetPolicy {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            NetPolicy::Reno => "reno",
            NetPolicy::Frto => "frto",
            NetPolicy::RemInformed => "rem-informed",
        }
    }

    /// All policies, ladder order.
    pub fn all() -> [NetPolicy; 3] {
        [NetPolicy::Reno, NetPolicy::Frto, NetPolicy::RemInformed]
    }
}

/// The study specification: pathology rates, seeds, transfer window.
/// Serialized verbatim into the checkpoint/manifest fingerprint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetStudySpec {
    /// Pathology rates and shapes. The handover-outage rate is the
    /// extreme-mobility baseline and stays active in every scenario;
    /// each scenario adds exactly one of the other pathologies.
    pub faults: NetFaultConfig,
    /// Seeds; each (policy × pathology) cell replays every seed.
    pub seeds: Vec<u64>,
    /// Transfer window per trial (ms).
    pub window_ms: f64,
    /// Base random-loss probability of the link.
    pub loss_prob: f64,
}

impl Default for NetStudySpec {
    fn default() -> Self {
        Self {
            faults: NetFaultConfig::default(),
            seeds: vec![1, 2, 3],
            window_ms: 60_000.0,
            loss_prob: 0.003,
        }
    }
}

impl NetStudySpec {
    /// Validates rates, seeds and shapes.
    pub fn validate(&self) -> Result<(), String> {
        self.faults.validate()?;
        if self.seeds.is_empty() {
            return Err("seeds must list at least one seed".into());
        }
        if !(self.window_ms.is_finite() && self.window_ms > 0.0) {
            return Err(format!("window_ms must be finite and > 0, got {}", self.window_ms));
        }
        if !(0.0..=1.0).contains(&self.loss_prob) {
            return Err(format!("loss_prob must be in [0, 1], got {}", self.loss_prob));
        }
        Ok(())
    }

    /// Canonical JSON of the spec: the checkpoint / manifest / rerun
    /// fingerprint. Hand-rolled with a fixed field order and
    /// shortest-round-trip floats so the fingerprint does not depend
    /// on a JSON library's formatting choices; `serde_json::from_str`
    /// parses it back when `rem rerun` replays a manifest.
    pub fn to_canonical_json(&self) -> String {
        let f = &self.faults;
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        format!(
            "{{\"faults\":{{\"bloat_per_min\":{},\"bloat_ms\":{},\
             \"bloat_drain_pkts_per_ms\":{},\"bloat_queue_pkts\":{},\
             \"bloat_standing_pkts\":{},\"jitter_per_min\":{},\"jitter_ms\":{},\
             \"jitter_spike_ms\":{},\"rebind_per_min\":{},\"outage_per_min\":{},\
             \"outage_ms\":{}}},\"seeds\":[{}],\"window_ms\":{},\"loss_prob\":{}}}",
            f.bloat_per_min,
            f.bloat_ms,
            f.bloat_drain_pkts_per_ms,
            f.bloat_queue_pkts,
            f.bloat_standing_pkts,
            f.jitter_per_min,
            f.jitter_ms,
            f.jitter_spike_ms,
            f.rebind_per_min,
            f.outage_per_min,
            f.outage_ms,
            seeds.join(","),
            self.window_ms,
            self.loss_prob,
        )
    }

    /// The fault configuration of one pathology scenario: the
    /// handover-outage baseline plus `kind` alone (every other
    /// pathology rate zeroed). The per-kind RNG streams make the
    /// shared baseline schedule identical across scenarios, so cells
    /// are paired on their outages.
    pub fn pathology_config(&self, kind: NetFaultKind) -> NetFaultConfig {
        let mut c = self.faults.clone();
        if kind != NetFaultKind::Bufferbloat {
            c.bloat_per_min = 0.0;
        }
        if kind != NetFaultKind::JitterSpike {
            c.jitter_per_min = 0.0;
        }
        if kind != NetFaultKind::NatRebind {
            c.rebind_per_min = 0.0;
        }
        c
    }

    /// Total trials: policies × pathologies × seeds.
    pub fn n_trials(&self) -> usize {
        NetPolicy::all().len() * NetFaultKind::all().len() * self.seeds.len()
    }

    /// Trial `index` → `(policy, pathology, seed)`, policy-major so a
    /// resumed checkpoint finishes whole policy blocks first.
    pub fn trial_coords(&self, index: usize) -> (NetPolicy, NetFaultKind, u64) {
        let n_seeds = self.seeds.len();
        let n_path = NetFaultKind::all().len();
        let policy = NetPolicy::all()[index / (n_path * n_seeds)];
        let pathology = NetFaultKind::all()[(index / n_seeds) % n_path];
        let seed = self.seeds[index % n_seeds];
        (policy, pathology, seed)
    }
}

/// One trial's outcome: a classified, oracle-checked transfer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetTrialResult {
    /// Recovery policy replayed.
    pub policy: NetPolicy,
    /// Injected pathology (on top of the outage baseline).
    pub pathology: NetFaultKind,
    /// Trial seed.
    pub seed: u64,
    /// Total stalled time at the Fig 9 gap threshold (ms).
    pub total_stall_ms: f64,
    /// Number of stalls.
    pub stalls: u64,
    /// Goodput: cumulatively acked bytes.
    pub total_acked_bytes: u64,
    /// Stalled time attributed to each cause (ms).
    pub breakdown: CauseBreakdown,
    /// Stall-duration histogram over [`NET_HIST_EDGES_S`].
    pub histogram: [u64; 5],
    /// Resilience counters and recovery events of the trace.
    pub net: NetStats,
    /// Oracle violations: scored stalls/recoveries with no
    /// ground-truth fault to justify them. Zero on a correct study.
    pub oracle_mismatches: u64,
}

/// Runs one trial: generate the plan, stamp the link, replay under the
/// policy, classify, oracle-check. Pure function of its arguments.
pub fn run_net_trial(
    spec: &NetStudySpec,
    policy: NetPolicy,
    pathology: NetFaultKind,
    seed: u64,
) -> NetTrialResult {
    let cfg = spec.pathology_config(pathology);
    let plan = NetFaultPlan::generate(&cfg, seed, 0, spec.window_ms);
    let mut link = LinkModel {
        loss_prob: spec.loss_prob,
        pathology_seed: seed,
        ..LinkModel::default()
    };
    plan.apply(&cfg, &mut link);

    let res = match policy {
        NetPolicy::Reno => ResilienceConfig::vanilla(),
        NetPolicy::Frto => ResilienceConfig::frto(),
        NetPolicy::RemInformed => {
            // The REM plane forecasts the outages its own mobility plan
            // schedules: every ground-truth outage window, issued at
            // t=0 and fresh for the whole transfer.
            let windows = plan
                .events()
                .iter()
                .filter(|e| e.kind == NetFaultKind::HandoverOutage)
                .map(|e| ForecastWindow { start_ms: e.start_ms, end_ms: e.end_ms })
                .collect();
            ResilienceConfig::rem_informed(RemForecast {
                windows,
                issued_at_ms: 0.0,
                freshness_ms: spec.window_ms,
            })
        }
    };

    let mut rng = child_rng(seed, &format!("net/replay/{}", pathology.label()));
    let trace = simulate_transfer_resilient(
        &TcpConfig::default(),
        &res,
        &link,
        spec.window_ms,
        &mut rng,
    );
    let classified = classify_stalls(&trace, &link, NET_STALL_GAP_MS);

    let mut breakdown = CauseBreakdown::default();
    let mut histogram = [0u64; 5];
    for s in &classified {
        breakdown.merge(&s.breakdown);
        let secs = s.duration_ms() / 1e3;
        let bucket = NET_HIST_EDGES_S.iter().rposition(|&e| secs >= e).unwrap_or(0);
        histogram[bucket] += 1;
    }
    let oracle_mismatches = (plan.check_stalls(&classified, NET_ORACLE_SLACK_MS).len()
        + plan.check_recoveries(&trace.net.recovery_events, NET_ORACLE_SLACK_MS).len())
        as u64;

    NetTrialResult {
        policy,
        pathology,
        seed,
        total_stall_ms: trace.total_stall_ms(NET_STALL_GAP_MS),
        stalls: classified.len() as u64,
        total_acked_bytes: trace.total_acked_bytes,
        breakdown,
        histogram,
        net: trace.net,
        oracle_mismatches,
    }
}

/// One (policy × pathology) aggregate over every seed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetCell {
    /// Recovery policy.
    pub policy: NetPolicy,
    /// Injected pathology.
    pub pathology: NetFaultKind,
    /// Seeds aggregated.
    pub seeds: u64,
    /// Total stalled time across seeds (ms).
    pub total_stall_ms: f64,
    /// Mean stalled time per seed (ms).
    pub mean_stall_ms: f64,
    /// Total goodput across seeds (bytes).
    pub total_acked_bytes: u64,
    /// Total stalls.
    pub stalls: u64,
    /// Summed stall-duration histogram.
    pub histogram: [u64; 5],
    /// Summed per-cause stalled time (ms).
    pub breakdown: CauseBreakdown,
    /// Spurious RTOs detected / undone by F-RTO.
    pub spurious_rto_detected: u64,
    /// Bogus cwnd collapses undone.
    pub spurious_rto_undone: u64,
    /// Zombie-connection re-establishments.
    pub reconnects: u64,
    /// Time spent with cwnd frozen across predicted outages (ms).
    pub frozen_ms: f64,
    /// Packets tail-dropped by the bottleneck queue.
    pub queue_overflow_drops: u64,
    /// Packets silently eaten by dead NAT bindings.
    pub rebind_drops: u64,
    /// Oracle violations (must be zero).
    pub oracle_mismatches: u64,
}

/// The full study result: every trial plus the (policy × pathology)
/// aggregate table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetStudyReport {
    /// Per-trial outcomes, trial-index order (the hashed value).
    pub trials: Vec<NetTrialResult>,
    /// Aggregates, policy-major × pathology-minor order.
    pub cells: Vec<NetCell>,
}

impl NetStudyReport {
    /// Builds the aggregate table from trial outcomes.
    pub fn from_trials(trials: Vec<NetTrialResult>) -> Self {
        let mut cells = Vec::new();
        for policy in NetPolicy::all() {
            for pathology in NetFaultKind::all() {
                let mut cell = NetCell {
                    policy,
                    pathology,
                    seeds: 0,
                    total_stall_ms: 0.0,
                    mean_stall_ms: 0.0,
                    total_acked_bytes: 0,
                    stalls: 0,
                    histogram: [0; 5],
                    breakdown: CauseBreakdown::default(),
                    spurious_rto_detected: 0,
                    spurious_rto_undone: 0,
                    reconnects: 0,
                    frozen_ms: 0.0,
                    queue_overflow_drops: 0,
                    rebind_drops: 0,
                    oracle_mismatches: 0,
                };
                for t in trials.iter().filter(|t| t.policy == policy && t.pathology == pathology)
                {
                    cell.seeds += 1;
                    cell.total_stall_ms += t.total_stall_ms;
                    cell.total_acked_bytes += t.total_acked_bytes;
                    cell.stalls += t.stalls;
                    for (h, th) in cell.histogram.iter_mut().zip(t.histogram.iter()) {
                        *h += th;
                    }
                    cell.breakdown.merge(&t.breakdown);
                    cell.spurious_rto_detected += t.net.spurious_rto_detected;
                    cell.spurious_rto_undone += t.net.spurious_rto_undone;
                    cell.reconnects += t.net.reconnects;
                    cell.frozen_ms += t.net.frozen_ms;
                    cell.queue_overflow_drops += t.net.queue_overflow_drops;
                    cell.rebind_drops += t.net.rebind_drops;
                    cell.oracle_mismatches += t.oracle_mismatches;
                }
                if cell.seeds > 0 {
                    cell.mean_stall_ms = cell.total_stall_ms / cell.seeds as f64;
                }
                cells.push(cell);
            }
        }
        Self { trials, cells }
    }

    /// The aggregate of one (policy × pathology) cell.
    pub fn cell(&self, policy: NetPolicy, pathology: NetFaultKind) -> Option<&NetCell> {
        self.cells.iter().find(|c| c.policy == policy && c.pathology == pathology)
    }

    /// Total oracle violations across the study (the CI gate).
    pub fn oracle_mismatches(&self) -> u64 {
        self.cells.iter().map(|c| c.oracle_mismatches).sum()
    }

    /// Pathologies where `a` stalled strictly less than `b` in total.
    pub fn stall_wins(&self, a: NetPolicy, b: NetPolicy) -> Vec<NetFaultKind> {
        NetFaultKind::all()
            .into_iter()
            .filter(|&k| match (self.cell(a, k), self.cell(b, k)) {
                (Some(ca), Some(cb)) => ca.total_stall_ms < cb.total_stall_ms,
                _ => false,
            })
            .collect()
    }

    /// Canonical pretty-printed JSON of the study: the `--hash` input
    /// and the `BENCH_net.json` body. Hand-rolled for the same reason
    /// as [`NetStudySpec::to_canonical_json`]: the hash gate compares
    /// this string across thread counts and reruns, so its formatting
    /// must not depend on a JSON library.
    pub fn to_json_pretty(&self, spec: &NetStudySpec) -> String {
        fn hist(h: &[u64; 5]) -> String {
            format!(
                "{{\"1-2s\": {}, \"2-4s\": {}, \"4-8s\": {}, \"8-16s\": {}, \"16s+\": {}}}",
                h[0], h[1], h[2], h[3], h[4]
            )
        }
        fn causes(b: &CauseBreakdown) -> String {
            format!(
                "{{\"handover-outage\": {}, \"nat-rebind\": {}, \"bufferbloat\": {}, \
                 \"rto-backoff\": {}}}",
                b.handover_outage_ms, b.nat_rebind_ms, b.bufferbloat_ms, b.rto_backoff_ms
            )
        }
        let mut out = String::new();
        out.push_str("{\n  \"study\": \"net-stall\",\n");
        out.push_str(&format!("  \"spec\": {},\n", spec.to_canonical_json()));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"policy\": \"{}\", \"pathology\": \"{}\", \"seeds\": {}, \
                 \"total_stall_ms\": {}, \"mean_stall_ms\": {}, \"stalls\": {}, \
                 \"total_acked_bytes\": {}, \"histogram\": {}, \"breakdown_ms\": {}, \
                 \"spurious_rto_detected\": {}, \"spurious_rto_undone\": {}, \
                 \"reconnects\": {}, \"frozen_ms\": {}, \"queue_overflow_drops\": {}, \
                 \"rebind_drops\": {}, \"oracle_mismatches\": {}}}{}\n",
                c.policy.label(),
                c.pathology.label(),
                c.seeds,
                c.total_stall_ms,
                c.mean_stall_ms,
                c.stalls,
                c.total_acked_bytes,
                hist(&c.histogram),
                causes(&c.breakdown),
                c.spurious_rto_detected,
                c.spurious_rto_undone,
                c.reconnects,
                c.frozen_ms,
                c.queue_overflow_drops,
                c.rebind_drops,
                c.oracle_mismatches,
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"trials\": [\n");
        for (i, t) in self.trials.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"policy\": \"{}\", \"pathology\": \"{}\", \"seed\": {}, \
                 \"total_stall_ms\": {}, \"stalls\": {}, \"total_acked_bytes\": {}, \
                 \"oracle_mismatches\": {}}}{}\n",
                t.policy.label(),
                t.pathology.label(),
                t.seed,
                t.total_stall_ms,
                t.stalls,
                t.total_acked_bytes,
                t.oracle_mismatches,
                if i + 1 < self.trials.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        let wins: Vec<String> = self
            .stall_wins(NetPolicy::RemInformed, NetPolicy::Reno)
            .iter()
            .map(|k| format!("\"{}\"", k.label()))
            .collect();
        out.push_str(&format!(
            "  \"headline\": {{\"rem_informed_beats_reno_on\": [{}], \
             \"oracle_mismatches\": {}}}\n}}\n",
            wins.join(", "),
            self.oracle_mismatches(),
        ));
        out
    }
}

/// A stall study produced under crash isolation (the net sibling of
/// `CheckedAggregate`).
#[derive(Clone, Debug)]
pub struct CheckedNetStudy {
    /// The study over every *completed* trial.
    pub report: NetStudyReport,
    /// Trials that panicked on every attempt.
    pub quarantined: Vec<QuarantinedTrial>,
    /// Per-trial deadline overruns (detection only).
    pub overruns: Vec<DeadlineOverrun>,
    /// Panicking attempts retried successfully.
    pub retries: u64,
    /// Trials replayed from the checkpoint.
    pub resumed_trials: usize,
    /// Merged numerical-health ledger (forecast fallbacks land here).
    pub health: DegradedStats,
}

impl CheckedNetStudy {
    /// True when every trial completed.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// The report, or the quarantine list as a typed error.
    pub fn into_result(self) -> Result<NetStudyReport, ExperimentError> {
        if self.is_clean() {
            Ok(self.report)
        } else {
            Err(ExperimentError::Quarantined { trials: self.quarantined })
        }
    }
}

/// The canonical checkpoint/manifest fingerprint of a study spec.
pub fn net_study_fingerprint(spec: &NetStudySpec) -> String {
    spec.to_canonical_json()
}

/// Runs (or resumes) the stall study under crash isolation. Trials are
/// scheduled in parallel and reduced in trial-index order, so the
/// report is bit-identical for every thread count.
pub fn run_net_study(
    spec: &NetStudySpec,
    policy: &RunPolicy,
    path: Option<&Path>,
) -> Result<CheckedNetStudy, ExperimentError> {
    run_net_study_with(spec, policy, path, |_i, _attempt| {})
}

/// [`run_net_study`] with a per-trial hook (trial index, attempt) for
/// chaos injection: the hook runs inside the supervised trial, so a
/// hook panic exercises the retry/quarantine machinery exactly like a
/// real trial crash.
pub fn run_net_study_with(
    spec: &NetStudySpec,
    policy: &RunPolicy,
    path: Option<&Path>,
    hook: impl Fn(usize, u32) + Sync,
) -> Result<CheckedNetStudy, ExperimentError> {
    spec.validate().map_err(ExperimentError::Config)?;
    let spec_json = net_study_fingerprint(spec);
    let run = run_trials_checkpointed(
        "net",
        &spec_json,
        spec.n_trials(),
        policy,
        path,
        |i, attempt| {
            hook(i, attempt);
            let (pol, pathology, seed) = spec.trial_coords(i);
            run_net_trial(spec, pol, pathology, seed)
        },
    )?;
    let CheckpointedRun { values, quarantined, overruns, retries, resumed_trials, health } = run;
    let trials: Vec<NetTrialResult> = values.into_iter().flatten().collect();
    let report = NetStudyReport::from_trials(trials);

    // Observability: stall-cause and recovery counters for the run's
    // metrics dump (`--obs-trace`).
    for cause in StallCause::all() {
        let ms = report.cells.iter().map(|c| c.breakdown.get(cause)).sum::<f64>();
        let counter = match cause {
            StallCause::HandoverOutage => "rem_net_stall_handover_outage_ms_total",
            StallCause::NatRebind => "rem_net_stall_nat_rebind_ms_total",
            StallCause::Bufferbloat => "rem_net_stall_bufferbloat_ms_total",
            StallCause::RtoBackoff => "rem_net_stall_rto_backoff_ms_total",
        };
        rem_obs::metrics::add(counter, ms as u64);
    }
    rem_obs::metrics::add(
        "rem_net_spurious_rto_detected_total",
        report.cells.iter().map(|c| c.spurious_rto_detected).sum(),
    );
    rem_obs::metrics::add(
        "rem_net_spurious_rto_undone_total",
        report.cells.iter().map(|c| c.spurious_rto_undone).sum(),
    );
    rem_obs::metrics::add(
        "rem_net_reconnects_total",
        report.cells.iter().map(|c| c.reconnects).sum(),
    );
    rem_obs::metrics::add("rem_net_oracle_mismatches_total", report.oracle_mismatches());

    Ok(CheckedNetStudy { report, quarantined, overruns, retries, resumed_trials, health })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> NetStudySpec {
        NetStudySpec {
            faults: rem_faults::NetFaultConfig::aggressive(),
            seeds: vec![1, 2],
            window_ms: 30_000.0,
            loss_prob: 0.003,
        }
    }

    #[test]
    fn trial_coords_cover_every_cell_exactly_once() {
        let spec = quick_spec();
        let mut seen = std::collections::HashSet::new();
        for i in 0..spec.n_trials() {
            let (p, k, s) = spec.trial_coords(i);
            assert!(seen.insert((p, k, s)), "duplicate coords at {i}");
        }
        assert_eq!(seen.len(), 3 * 4 * 2);
    }

    #[test]
    fn trials_are_deterministic() {
        let spec = quick_spec();
        let a = run_net_trial(&spec, NetPolicy::RemInformed, NetFaultKind::NatRebind, 1);
        let b = run_net_trial(&spec, NetPolicy::RemInformed, NetFaultKind::NatRebind, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn study_passes_its_own_oracle_and_rem_beats_reno() {
        let spec = quick_spec();
        let policy = RunPolicy { threads: 1, ..RunPolicy::default() };
        let report = run_net_study(&spec, &policy, None)
            .expect("study")
            .into_result()
            .expect("clean");
        assert_eq!(report.trials.len(), spec.n_trials());
        assert_eq!(report.oracle_mismatches(), 0, "classifier hallucinated a cause");
        // The headline: REM-informed recovery stalls less than Reno on
        // every pathology in the taxonomy.
        let wins = report.stall_wins(NetPolicy::RemInformed, NetPolicy::Reno);
        assert_eq!(
            wins.len(),
            NetFaultKind::all().len(),
            "rem-informed must beat reno everywhere, won only {wins:?}"
        );
    }

    #[test]
    fn study_is_thread_count_invariant() {
        let spec = quick_spec();
        let one = run_net_study(&spec, &RunPolicy { threads: 1, ..RunPolicy::default() }, None)
            .expect("1-thread")
            .into_result()
            .expect("clean");
        let four = run_net_study(&spec, &RunPolicy { threads: 4, ..RunPolicy::default() }, None)
            .expect("4-thread")
            .into_result()
            .expect("clean");
        assert_eq!(one, four);
    }

    #[test]
    fn checkpoint_resume_reproduces_the_report() {
        let dir = std::env::temp_dir().join("rem-net-study-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("resume.ckpt");
        let _ = std::fs::remove_file(&path);
        let spec = NetStudySpec { seeds: vec![5], ..quick_spec() };
        let policy = RunPolicy { threads: 1, checkpoint_every: 4, ..RunPolicy::default() };
        let first = run_net_study(&spec, &policy, Some(&path))
            .expect("first run")
            .into_result()
            .expect("clean");
        let resumed = run_net_study(&spec, &policy, Some(&path)).expect("resume");
        assert_eq!(resumed.resumed_trials, spec.n_trials());
        assert_eq!(resumed.into_result().expect("clean"), first);
        let _ = std::fs::remove_file(&path);
    }
}
