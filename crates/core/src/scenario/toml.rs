//! A tiny, dependency-free TOML-subset reader for scenario files.
//!
//! Scenario files only need a small, predictable slice of TOML, so —
//! like the CLI's flag parser — this module implements exactly that
//! slice instead of pulling in a dependency:
//!
//! * comments (`# ...`, full-line or trailing, outside strings);
//! * `[section]` and `[section.sub]` table headers;
//! * `key = value` pairs with bare keys (`[A-Za-z0-9_-]`);
//! * values: basic strings (`"..."` with `\"`, `\\`, `\n`, `\t`
//!   escapes), booleans, integers, floats (including exponent
//!   notation), and arrays of values (nestable, may span lines).
//!
//! Not supported (and rejected with a line-numbered error): inline
//! tables, arrays of tables (`[[x]]`), multi-line strings, literal
//! (single-quoted) strings, and dotted keys on the left-hand side of
//! a `key = value` pair. The scenario writer
//! ([`crate::scenario::ScenarioSpec::to_toml`]) only emits the
//! supported slice, so everything it writes parses back.

use std::collections::BTreeMap;

/// One parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Toml {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Toml>),
    /// A (sub)table.
    Table(BTreeMap<String, Toml>),
}

impl Toml {
    /// Short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Toml::Str(_) => "string",
            Toml::Int(_) => "integer",
            Toml::Float(_) => "float",
            Toml::Bool(_) => "boolean",
            Toml::Array(_) => "array",
            Toml::Table(_) => "table",
        }
    }
}

/// A syntax error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Strips a trailing comment (a `#` outside any string) from a line.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Whether every `[` has been closed and no string is open — used to
/// decide if an array value continues on the next line.
fn is_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => escaped = false,
        }
        if c != '\\' {
            escaped = false;
        }
    }
    depth <= 0 && !in_str
}

fn valid_key(k: &str) -> bool {
    !k.is_empty()
        && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Parses a full document into its top-level table.
pub fn parse(src: &str) -> Result<BTreeMap<String, Toml>, TomlError> {
    let mut root: BTreeMap<String, Toml> = BTreeMap::new();
    let mut current_path: Vec<String> = Vec::new();

    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix('[') {
            if rest.starts_with('[') {
                return Err(TomlError {
                    line: lineno,
                    message: "arrays of tables ([[...]]) are not supported".into(),
                });
            }
            let Some(inner) = rest.strip_suffix(']') else {
                return Err(TomlError {
                    line: lineno,
                    message: format!("unterminated table header '{line}'"),
                });
            };
            let path: Vec<String> = inner.split('.').map(|p| p.trim().to_string()).collect();
            if path.iter().any(|p| !valid_key(p)) {
                return Err(TomlError {
                    line: lineno,
                    message: format!("invalid table name '[{inner}]'"),
                });
            }
            // Materialise the table path (re-opening is allowed).
            let mut cursor = &mut root;
            for part in &path {
                let entry = cursor
                    .entry(part.clone())
                    .or_insert_with(|| Toml::Table(BTreeMap::new()));
                match entry {
                    Toml::Table(t) => cursor = t,
                    other => {
                        return Err(TomlError {
                            line: lineno,
                            message: format!(
                                "'{part}' is already a {}, not a table",
                                other.type_name()
                            ),
                        })
                    }
                }
            }
            current_path = path;
            continue;
        }

        let Some(eq) = line.find('=') else {
            return Err(TomlError {
                line: lineno,
                message: format!("expected 'key = value' or '[table]', got '{line}'"),
            });
        };
        let key = line[..eq].trim();
        if !valid_key(key) {
            return Err(TomlError {
                line: lineno,
                message: format!(
                    "invalid key '{key}' (bare keys only: letters, digits, '_', '-')"
                ),
            });
        }
        let mut value_src = line[eq + 1..].trim().to_string();
        // Arrays may span lines: keep consuming until brackets balance.
        while !is_balanced(&value_src) {
            let Some((_, next)) = lines.next() else {
                return Err(TomlError {
                    line: lineno,
                    message: format!("unterminated array in value of '{key}'"),
                });
            };
            value_src.push(' ');
            value_src.push_str(strip_comment(next).trim());
        }
        let (value, rest) = parse_value(&value_src, lineno)?;
        if !rest.trim().is_empty() {
            return Err(TomlError {
                line: lineno,
                message: format!("trailing content '{}' after value of '{key}'", rest.trim()),
            });
        }

        // Walk to the current table and insert.
        let mut cursor = &mut root;
        for part in &current_path {
            match cursor.get_mut(part) {
                Some(Toml::Table(t)) => cursor = t,
                _ => unreachable!("table path was materialised by its header"),
            }
        }
        if cursor.insert(key.to_string(), value).is_some() {
            return Err(TomlError {
                line: lineno,
                message: format!("duplicate key '{key}'"),
            });
        }
    }
    Ok(root)
}

/// Parses one value off the front of `src`, returning the remainder.
fn parse_value<'a>(src: &'a str, lineno: usize) -> Result<(Toml, &'a str), TomlError> {
    let src = src.trim_start();
    let err = |message: String| TomlError { line: lineno, message };

    if let Some(rest) = src.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((Toml::Str(out), &rest[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, other)) => {
                        return Err(err(format!("unsupported escape '\\{other}'")))
                    }
                    None => return Err(err("unterminated string".into())),
                },
                other => out.push(other),
            }
        }
        return Err(err("unterminated string".into()));
    }

    if let Some(mut rest) = src.strip_prefix('[') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                return Ok((Toml::Array(items), after));
            }
            let (item, after) = parse_value(rest, lineno)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after;
            } else if !rest.starts_with(']') {
                return Err(err("expected ',' or ']' in array".into()));
            }
        }
    }

    // Scalar token: runs to the next delimiter.
    let end = src
        .find(|c: char| c == ',' || c == ']' || c.is_whitespace())
        .unwrap_or(src.len());
    let token = &src[..end];
    let rest = &src[end..];
    if token.is_empty() {
        return Err(err("expected a value".into()));
    }
    match token {
        "true" => return Ok((Toml::Bool(true), rest)),
        "false" => return Ok((Toml::Bool(false), rest)),
        _ => {}
    }
    if let Ok(i) = token.parse::<i64>() {
        return Ok((Toml::Int(i), rest));
    }
    if let Ok(f) = token.parse::<f64>() {
        if f.is_finite() {
            return Ok((Toml::Float(f), rest));
        }
        return Err(err(format!("non-finite number '{token}'")));
    }
    Err(err(format!("cannot parse value '{token}'")))
}

/// Escapes a string for emission inside `"..."`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Formats an `f64` so it parses back to the identical bits (Rust's
/// shortest round-trip representation) and always reads as a float.
pub fn fmt_f64(v: f64) -> String {
    let s = format!("{v:?}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_comments() {
        let doc = r#"
            # a scenario
            format = "REMSCENARIO1"  # trailing comment
            count = 3
            rate = 1.5
            on = true

            [trajectory]
            speed_kmh = 300.0
            exp = 1.88e9
        "#;
        let t = parse(doc).unwrap();
        assert_eq!(t["format"], Toml::Str("REMSCENARIO1".into()));
        assert_eq!(t["count"], Toml::Int(3));
        assert_eq!(t["rate"], Toml::Float(1.5));
        assert_eq!(t["on"], Toml::Bool(true));
        let Toml::Table(traj) = &t["trajectory"] else { panic!("table") };
        assert_eq!(traj["speed_kmh"], Toml::Float(300.0));
        assert_eq!(traj["exp"], Toml::Float(1.88e9));
    }

    #[test]
    fn parses_nested_and_multiline_arrays() {
        let doc = "
            seeds = [1, 2, 3]
            carriers = [
                [1850, 1.88e9, 20.0],  # primary
                [2452, 2.66e9, 20.0],
            ]
        ";
        let t = parse(doc).unwrap();
        assert_eq!(
            t["seeds"],
            Toml::Array(vec![Toml::Int(1), Toml::Int(2), Toml::Int(3)])
        );
        let Toml::Array(rows) = &t["carriers"] else { panic!("array") };
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            Toml::Array(vec![Toml::Int(1850), Toml::Float(1.88e9), Toml::Float(20.0)])
        );
    }

    #[test]
    fn parses_dotted_table_headers_and_strings_with_escapes() {
        let doc = "[a.b]\nname = \"x \\\"y\\\" #z\"\n";
        let t = parse(doc).unwrap();
        let Toml::Table(a) = &t["a"] else { panic!("table a") };
        let Toml::Table(b) = &a["b"] else { panic!("table b") };
        assert_eq!(b["name"], Toml::Str("x \"y\" #z".into()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("key = value"), "{e}");

        let e = parse("x = \"unterminated").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse("x = nope").unwrap_err();
        assert!(e.message.contains("nope"), "{e}");

        let e = parse("[[tables]]\n").unwrap_err();
        assert!(e.message.contains("not supported"), "{e}");

        let e = parse("x = 1\nx = 2").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");

        let e = parse("x = 1 2").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn reopening_a_table_is_allowed_but_scalar_clash_is_not() {
        let t = parse("[a]\nx = 1\n[b]\ny = 2\n[a]\nz = 3\n").unwrap();
        let Toml::Table(a) = &t["a"] else { panic!("table") };
        assert_eq!(a.len(), 2);

        let e = parse("a = 1\n[a]\nx = 2\n").unwrap_err();
        assert!(e.message.contains("not a table"), "{e}");
    }

    #[test]
    fn fmt_f64_round_trips() {
        for v in [300.0, 0.06, 1.88e9, -3.0, 0.935, 1e-12, 12345.678901234] {
            let s = fmt_f64(v);
            let (parsed, rest) = parse_value(&s, 1).unwrap();
            assert!(rest.is_empty());
            assert_eq!(parsed, Toml::Float(v), "{s}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "a \"quoted\" \\ path\nnext\ttab";
        let quoted = format!("\"{}\"", escape(s));
        let (parsed, _) = parse_value(&quoted, 1).unwrap();
        assert_eq!(parsed, Toml::Str(s.into()));
    }
}
