//! Declarative scenario files (`REMSCENARIO1`): one TOML document that
//! composes trajectory, cell deployment, channel profile, policy mix,
//! fault schedule and run policy into every campaign entry point.
//!
//! Before this module, each workload family lived as a hard-coded Rust
//! constructor plus a pile of per-subcommand CLI flags; expressing a
//! *new* scenario (an urban drive, a metro line with tunnels) meant
//! writing code. A [`ScenarioSpec`] is instead a versioned value loaded
//! from a small TOML file (see `scenarios/` at the repo root) that
//! compiles into the existing [`CampaignSpec`](crate::CampaignSpec),
//! [`BlerScenario`](rem_phy::link::BlerScenario) and
//! [`TrainScenario`](rem_sim::TrainScenario) types — the same
//! deterministic machinery, one declarative front door.
//!
//! Design rules:
//!
//! * **Calibration-preserving.** A scenario names a calibrated dataset
//!   family (`bt|bs|la|nr`) and overrides only what it sets: a file
//!   that sets nothing but the family, route and speed produces a
//!   campaign *bit-identical* to the hard-coded constructor (CI gates
//!   `scenarios/hsr_beijing_shanghai.toml` against the flag-default
//!   `rem compare --hash`).
//! * **Versioned and closed.** The document must carry
//!   `format = "REMSCENARIO1"`; unknown fields are errors, not
//!   warnings, so a typo cannot silently change an experiment.
//! * **Typed errors.** Every failure is a [`ScenarioError`] with a
//!   field path (`cells.second_cell_prob`, line numbers for syntax),
//!   folded into [`ExperimentError`](crate::ExperimentError) and
//!   mapped to the CLI's usage exit code (2).

mod toml;

use crate::checkpoint::{fnv1a64, RunPolicy};
use crate::experiment::CampaignSpec;
use rem_channel::models::ChannelModel;
use rem_faults::{ChaosConfig, FaultConfig, NetFaultConfig};
use rem_fleet::FleetSpec;
use rem_mobility::Earfcn;
use rem_phy::link::{BlerScenario, Waveform};
use rem_sim::deployment::CarrierPlan;
use rem_sim::{DatasetSpec, Plane, RunConfig, SpeedProfile, TrainScenario};
use std::collections::BTreeMap;
use std::path::Path;
use toml::Toml;

/// Version tag every scenario file must carry in its `format` field.
pub const SCENARIO_FORMAT: &str = "REMSCENARIO1";

/// Everything that can go wrong loading or validating a scenario file.
///
/// Each variant carries enough context to point at the offending file,
/// line or field; the CLI maps all of them to the usage exit code (2)
/// because a bad scenario is a bad invocation, not a failed campaign.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// Reading the file failed.
    Io {
        /// File involved.
        path: String,
        /// Underlying OS error.
        reason: String,
    },
    /// The document is not parseable TOML (subset).
    Syntax {
        /// 1-based source line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The `format` field is missing or names another version.
    Version {
        /// What the file declared (empty when absent).
        found: String,
    },
    /// A required field is absent.
    Missing {
        /// Dotted field path, e.g. `trajectory.speed_kmh`.
        path: String,
    },
    /// A field the schema does not define (typo guard).
    Unknown {
        /// Dotted field path of the unrecognized key.
        path: String,
    },
    /// A field holds the wrong type or an unrecognized keyword.
    BadValue {
        /// Dotted field path.
        path: String,
        /// What the schema expects there.
        expected: String,
        /// What the file contained.
        found: String,
    },
    /// A field parsed but its value is physically meaningless.
    OutOfRange {
        /// Dotted field path.
        path: String,
        /// The offending value, rendered.
        value: String,
        /// Why it is rejected.
        reason: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Io { path, reason } => {
                write!(f, "cannot read scenario {path}: {reason}")
            }
            ScenarioError::Syntax { line, message } => {
                write!(f, "scenario syntax error at line {line}: {message}")
            }
            ScenarioError::Version { found } if found.is_empty() => {
                write!(f, "scenario file declares no format (expected format = \"{SCENARIO_FORMAT}\")")
            }
            ScenarioError::Version { found } => {
                write!(f, "scenario format '{found}' is not {SCENARIO_FORMAT}")
            }
            ScenarioError::Missing { path } => {
                write!(f, "scenario field '{path}' is required")
            }
            ScenarioError::Unknown { path } => {
                write!(f, "unknown scenario field '{path}'")
            }
            ScenarioError::BadValue { path, expected, found } => {
                write!(f, "scenario field '{path}' expects {expected}, got {found}")
            }
            ScenarioError::OutOfRange { path, value, reason } => {
                write!(f, "scenario field '{path}' is out of range: {reason} (got {value})")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Which calibrated dataset family the scenario starts from. The
/// family fixes every knob the file does not override, so calibration
/// lives in one place ([`DatasetSpec`]'s constructors) and scenario
/// files stay small.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Beijing–Taiyuan-like fine-grained HSR corridor (`bt`).
    BeijingTaiyuan,
    /// Beijing–Shanghai-like coarse-grained HSR corridor (`bs`).
    BeijingShanghai,
    /// Los-Angeles-like low-mobility driving routes (`la`).
    LaDriving,
    /// 5G-like dense small-cell deployment (`nr`).
    NrSmallcell,
}

impl Family {
    /// Parses the CLI/scenario short code (`bt|bs|la|nr`).
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "bt" => Some(Family::BeijingTaiyuan),
            "bs" => Some(Family::BeijingShanghai),
            "la" => Some(Family::LaDriving),
            "nr" => Some(Family::NrSmallcell),
            _ => None,
        }
    }

    /// The short code (`bt|bs|la|nr`).
    pub fn code(&self) -> &'static str {
        match self {
            Family::BeijingTaiyuan => "bt",
            Family::BeijingShanghai => "bs",
            Family::LaDriving => "la",
            Family::NrSmallcell => "nr",
        }
    }

    /// The family's calibrated [`DatasetSpec`] at a route/speed.
    pub fn dataset(&self, route_km: f64, speed_kmh: f64) -> DatasetSpec {
        match self {
            Family::BeijingTaiyuan => DatasetSpec::beijing_taiyuan(route_km, speed_kmh),
            Family::BeijingShanghai => DatasetSpec::beijing_shanghai(route_km, speed_kmh),
            Family::LaDriving => DatasetSpec::la_driving(route_km, speed_kmh),
            Family::NrSmallcell => DatasetSpec::nr_smallcell(route_km, speed_kmh),
        }
    }
}

/// Speed profile in scenario form (`[trajectory] profile = ...`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProfileSpec {
    /// Constant cruise for the whole route.
    Constant,
    /// Station stops (see [`SpeedProfile::Stations`]).
    Stations {
        /// Distance between stops (m).
        stop_every_m: f64,
        /// Dwell time at each stop (s).
        dwell_s: f64,
        /// Acceleration/braking magnitude (m/s²).
        accel_ms2: f64,
    },
}

impl ProfileSpec {
    /// The simulator's [`SpeedProfile`] equivalent.
    pub fn to_speed_profile(self) -> SpeedProfile {
        match self {
            ProfileSpec::Constant => SpeedProfile::Constant,
            ProfileSpec::Stations { stop_every_m, dwell_s, accel_ms2 } => {
                SpeedProfile::Stations { stop_every_m, dwell_s, accel_ms2 }
            }
        }
    }
}

/// `[trajectory]` — how the client moves.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectorySpec {
    /// Cruise speed (km/h). Required.
    pub speed_kmh: f64,
    /// Route length (km). Required.
    pub route_km: f64,
    /// Speed profile (constant cruise by default).
    pub profile: ProfileSpec,
}

/// `[cells]` — which deployment family, plus optional overrides.
/// `None` means "use the family's calibrated value".
#[derive(Clone, Debug, PartialEq)]
pub struct CellsSpec {
    /// Dataset family the deployment starts from. Required.
    pub family: Family,
    /// Mean site spacing along the track (m).
    pub site_spacing_m: Option<f64>,
    /// Lateral offset range (m), as `[min, max]`.
    pub lateral_range_m: Option<(f64, f64)>,
    /// Spectrum plan override: rows of `[earfcn, carrier_hz,
    /// bandwidth_mhz]`; the first row is the primary carrier.
    pub carriers: Option<Vec<CarrierPlan>>,
    /// Probability a site hosts a second co-sited cell.
    pub second_cell_prob: Option<f64>,
    /// Probability of a third cell given a second.
    pub third_cell_prob: Option<f64>,
    /// Reference-signal EIRP per resource element (dBm).
    pub tx_power_dbm: Option<f64>,
    /// Expected structural coverage holes per 100 km.
    pub holes_per_100km: Option<f64>,
    /// Hole length range (m), as `[min, max]`.
    pub hole_len_m: Option<(f64, f64)>,
}

/// `[channel]` — radio environment overrides.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChannelSpec {
    /// Shadowing sigma (dB).
    pub shadow_sigma_db: Option<f64>,
    /// Shadowing decorrelation distance (m).
    pub shadow_dcorr_m: Option<f64>,
    /// REM cross-band estimation error std (dB).
    pub rem_estimation_err_db: Option<f64>,
}

/// Which signaling plane(s) a scenario runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlaneMix {
    /// Paired legacy-vs-REM comparison (the default).
    #[default]
    Both,
    /// Legacy plane only.
    Legacy,
    /// REM plane only.
    Rem,
}

/// `[policy]` — handover-policy mix and plane selection.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PolicySpec {
    /// Plane mix (`both`, the default, drives `rem compare`;
    /// single-plane commands fall back to `legacy` when `both`).
    pub plane: PlaneMix,
    /// Whether REM clamps negative A3 offsets (Theorem 2 repair).
    pub rem_clamp_offsets: Option<bool>,
    /// Fraction of proactively-configured neighbour relations.
    pub proactive_prob: Option<f64>,
    /// The proactive (negative) A3 offset (dB).
    pub proactive_offset_db: Option<f64>,
    /// The conservative A3 offset (dB).
    pub normal_offset_db: Option<f64>,
    /// Intra-frequency time-to-trigger (ms).
    pub intra_ttt_ms: Option<f64>,
    /// Inter-frequency time-to-trigger (ms).
    pub inter_ttt_ms: Option<f64>,
    /// Intra-frequency measurement staleness (ms).
    pub intra_staleness_ms: Option<f64>,
    /// Inter-frequency measurement staleness (ms).
    pub inter_staleness_ms: Option<f64>,
    /// REM's measurement staleness (ms).
    pub rem_staleness_ms: Option<f64>,
}

/// `[link]` — the coded-signaling link study (`rem bler`).
#[derive(Clone, Debug, PartialEq)]
pub struct LinkSpec {
    /// 3GPP channel statistics (`hst|eva|etu|epa`).
    pub model: ChannelModel,
    /// Average SNR per block (dB).
    pub snr_db: f64,
    /// Monte-Carlo blocks per waveform.
    pub blocks: usize,
    /// Master seed for the BLER trials.
    pub seed: u64,
}

impl Default for LinkSpec {
    fn default() -> Self {
        // The CLI's `rem bler` flag defaults.
        Self { model: ChannelModel::Hst, snr_db: 6.0, blocks: 200, seed: 1 }
    }
}

/// `[faults]` — fault schedule riding on [`FaultConfig`]. The section's
/// *presence* enables injection; every field defaults to the stock
/// [`FaultConfig::default`] value, scaled by `rate_scale` at the end.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultsSpec {
    /// Multiplier applied to every arrival rate after the overrides.
    pub rate_scale: Option<f64>,
    /// Measurement-report fault windows per minute.
    pub feedback_per_min: Option<f64>,
    /// Handover-command fault windows per minute.
    pub command_per_min: Option<f64>,
    /// X2 backhaul fault windows per minute.
    pub x2_per_min: Option<f64>,
    /// Measurement-masking windows per minute.
    pub mask_per_min: Option<f64>,
    /// Injected coverage-hole windows per minute (tunnels!).
    pub hole_per_min: Option<f64>,
    /// Width of signaling-fault and masking windows (ms).
    pub window_ms: Option<f64>,
    /// Width of injected coverage holes (ms).
    pub hole_ms: Option<f64>,
    /// Extra latency of delaying feedback faults (ms).
    pub extra_delay_ms: Option<f64>,
    /// Fraction of feedback faults that delay instead of drop.
    pub delay_frac: Option<f64>,
    /// Fraction of feedback/command faults that corrupt instead of drop.
    pub corrupt_frac: Option<f64>,
    /// TCP bursty-loss windows per minute.
    pub tcp_burst_per_min: Option<f64>,
    /// Burst width (ms).
    pub burst_ms: Option<f64>,
    /// Packet loss probability inside a burst.
    pub burst_loss_prob: Option<f64>,
}

impl FaultsSpec {
    /// The concrete [`FaultConfig`]: stock defaults, field overrides,
    /// then the rate scale.
    pub fn to_config(&self) -> FaultConfig {
        let mut c = FaultConfig::default();
        macro_rules! ov {
            ($($f:ident),*) => { $( if let Some(v) = self.$f { c.$f = v; } )* };
        }
        ov!(
            feedback_per_min, command_per_min, x2_per_min, mask_per_min, hole_per_min,
            window_ms, hole_ms, extra_delay_ms, delay_frac, corrupt_frac,
            tcp_burst_per_min, burst_ms, burst_loss_prob
        );
        c.scaled(self.rate_scale.unwrap_or(1.0))
    }
}

/// `[net]` — transport-pathology mix riding on [`NetFaultConfig`], the
/// fault schedule of the `rem net` stall study. The section's
/// *presence* enables the study; every field defaults to the stock
/// [`NetFaultConfig::default`] value.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetSpec {
    /// Bufferbloat episodes per minute.
    pub bloat_per_min: Option<f64>,
    /// Bufferbloat episode width (ms).
    pub bloat_ms: Option<f64>,
    /// Bottleneck drain rate inside a bloat episode (packets/ms).
    pub bloat_drain_pkts_per_ms: Option<f64>,
    /// Bottleneck queue capacity (packets).
    pub bloat_queue_pkts: Option<f64>,
    /// Cross-traffic backlog at episode onset (packets).
    pub bloat_standing_pkts: Option<f64>,
    /// Jitter episodes per minute.
    pub jitter_per_min: Option<f64>,
    /// Jitter episode width (ms).
    pub jitter_ms: Option<f64>,
    /// Maximum per-packet delay spike inside a jitter episode (ms).
    pub jitter_spike_ms: Option<f64>,
    /// Silent NAT rebind events per minute.
    pub rebind_per_min: Option<f64>,
    /// Handover-aligned outage bursts per minute.
    pub outage_per_min: Option<f64>,
    /// Outage burst width (ms).
    pub outage_ms: Option<f64>,
    /// Transfer window of one study trial (ms).
    pub window_ms: Option<f64>,
    /// Base random-loss probability of the study link.
    pub loss_prob: Option<f64>,
}

impl NetSpec {
    /// The concrete [`NetFaultConfig`]: stock defaults with this
    /// section's overrides applied.
    pub fn to_config(&self) -> NetFaultConfig {
        let mut c = NetFaultConfig::default();
        macro_rules! ov {
            ($($f:ident),*) => { $( if let Some(v) = self.$f { c.$f = v; } )* };
        }
        ov!(
            bloat_per_min, bloat_ms, bloat_drain_pkts_per_ms, bloat_queue_pkts,
            bloat_standing_pkts, jitter_per_min, jitter_ms, jitter_spike_ms,
            rebind_per_min, outage_per_min, outage_ms
        );
        c
    }
}

/// `[run]` — trial counts, worker threads and crash-safety knobs.
/// Defaults mirror the CLI's flag defaults so a scenario only states
/// what it changes.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// Seeds to replay under (`seeds = 2` in TOML expands to `[1, 2]`).
    pub seeds: Vec<u64>,
    /// Worker threads (`0` = all available).
    pub threads: usize,
    /// Trials per checkpoint wave.
    pub checkpoint_every: usize,
    /// Panicking-trial retries before quarantine.
    pub max_retries: u32,
    /// Per-trial deadline (ms), detection only.
    pub trial_timeout_ms: Option<u64>,
    /// Chaos panic rate in `[0, 1]` (`0` = chaos off).
    pub chaos_panic_rate: f64,
    /// Whether chaos panics persist past retries.
    pub chaos_fatal: bool,
    /// Chaos stream seed.
    pub chaos_seed: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        Self {
            seeds: vec![1, 2],
            threads: 0,
            checkpoint_every: 16,
            max_retries: 1,
            trial_timeout_ms: None,
            chaos_panic_rate: 0.0,
            chaos_fatal: false,
            chaos_seed: 7,
        }
    }
}

/// `[train]` — the whole-train signaling-storm study (`rem train`).
#[derive(Clone, Debug, PartialEq)]
pub struct TrainSpec {
    /// Active clients spread over the train.
    pub clients: usize,
    /// Train length (m).
    pub train_len_m: f64,
    /// Burst window (ms).
    pub window_ms: f64,
    /// Base seed of the multi-client campaign.
    pub seed: u64,
}

impl Default for TrainSpec {
    fn default() -> Self {
        // The CLI's `rem train` flag defaults.
        Self { clients: 8, train_len_m: 400.0, window_ms: 1_000.0, seed: 7 }
    }
}

/// One declarative scenario: a versioned TOML document compiled into
/// the repository's campaign entry points. See the module docs for the
/// design rules and `scenarios/` for calibrated examples.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (manifest provenance; the dataset keeps its
    /// family's display name so fingerprints stay calibration-stable).
    pub name: String,
    /// Client trajectory.
    pub trajectory: TrajectorySpec,
    /// Deployment family and overrides.
    pub cells: CellsSpec,
    /// Radio-environment overrides.
    pub channel: ChannelSpec,
    /// Policy mix and plane selection.
    pub policy: PolicySpec,
    /// Link-study parameters.
    pub link: LinkSpec,
    /// Fault schedule; `None` replays the clean environment.
    pub faults: Option<FaultsSpec>,
    /// Transport-pathology mix; `None` leaves `rem net` on its stock
    /// schedule.
    pub net: Option<NetSpec>,
    /// Fleet-scale corridor campaign (`rem fleet`); `None` leaves the
    /// command on its flag defaults.
    pub fleet: Option<FleetSpec>,
    /// Run policy.
    pub run: RunSpec,
    /// Whole-train study parameters.
    pub train: TrainSpec,
}

impl ScenarioSpec {
    /// A minimal scenario over `family` at `route_km`/`speed_kmh` with
    /// every other knob at its calibrated/CLI default.
    pub fn new(name: &str, family: Family, route_km: f64, speed_kmh: f64) -> Self {
        Self {
            name: name.to_string(),
            trajectory: TrajectorySpec { speed_kmh, route_km, profile: ProfileSpec::Constant },
            cells: CellsSpec {
                family,
                site_spacing_m: None,
                lateral_range_m: None,
                carriers: None,
                second_cell_prob: None,
                third_cell_prob: None,
                tx_power_dbm: None,
                holes_per_100km: None,
                hole_len_m: None,
            },
            channel: ChannelSpec::default(),
            policy: PolicySpec::default(),
            link: LinkSpec::default(),
            faults: None,
            net: None,
            fleet: None,
            run: RunSpec::default(),
            train: TrainSpec::default(),
        }
    }

    /// Loads and fully validates a scenario file.
    pub fn load(path: &Path) -> Result<Self, ScenarioError> {
        let body = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        Self::from_toml(&body)
    }

    /// Parses and fully validates a scenario document.
    pub fn from_toml(src: &str) -> Result<Self, ScenarioError> {
        let mut doc = toml::parse(src)
            .map_err(|e| ScenarioError::Syntax { line: e.line, message: e.message })?;

        // Version gate before anything else: a future-format file must
        // fail with Version, not with spurious unknown-field errors.
        let format = match doc.remove("format") {
            Some(Toml::Str(s)) => s,
            Some(other) => {
                return Err(bad("format", "a string", &other));
            }
            None => String::new(),
        };
        if format != SCENARIO_FORMAT {
            return Err(ScenarioError::Version { found: format });
        }

        let name = match doc.remove("name") {
            Some(Toml::Str(s)) => s,
            Some(other) => return Err(bad("name", "a string", &other)),
            None => return Err(ScenarioError::Missing { path: "name".into() }),
        };
        if name.trim().is_empty() {
            return Err(ScenarioError::OutOfRange {
                path: "name".into(),
                value: format!("{name:?}"),
                reason: "must be non-empty".into(),
            });
        }

        let trajectory = read_trajectory(&mut take_table(&mut doc, "trajectory")?
            .ok_or_else(|| ScenarioError::Missing { path: "trajectory".into() })?)?;
        let cells = read_cells(&mut take_table(&mut doc, "cells")?
            .ok_or_else(|| ScenarioError::Missing { path: "cells".into() })?)?;
        let channel = match take_table(&mut doc, "channel")? {
            Some(mut t) => read_channel(&mut t)?,
            None => ChannelSpec::default(),
        };
        let policy = match take_table(&mut doc, "policy")? {
            Some(mut t) => read_policy(&mut t)?,
            None => PolicySpec::default(),
        };
        let link = match take_table(&mut doc, "link")? {
            Some(mut t) => read_link(&mut t)?,
            None => LinkSpec::default(),
        };
        let faults = match take_table(&mut doc, "faults")? {
            Some(mut t) => Some(read_faults(&mut t)?),
            None => None,
        };
        let net = match take_table(&mut doc, "net")? {
            Some(mut t) => Some(read_net(&mut t)?),
            None => None,
        };
        let fleet = match take_table(&mut doc, "fleet")? {
            Some(mut t) => Some(read_fleet(&mut t)?),
            None => None,
        };
        let run = match take_table(&mut doc, "run")? {
            Some(mut t) => read_run(&mut t)?,
            None => RunSpec::default(),
        };
        let train = match take_table(&mut doc, "train")? {
            Some(mut t) => read_train(&mut t)?,
            None => TrainSpec::default(),
        };
        if let Some(key) = doc.keys().next() {
            return Err(ScenarioError::Unknown { path: key.clone() });
        }

        let spec = Self {
            name,
            trajectory,
            cells,
            channel,
            policy,
            link,
            faults,
            net,
            fleet,
            run,
            train,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes the scenario back to canonical TOML. The output
    /// parses to an equal [`ScenarioSpec`] (round-trip lossless) and is
    /// what [`ScenarioSpec::fingerprint`] digests.
    pub fn to_toml(&self) -> String {
        use toml::{escape, fmt_f64};
        let mut s = String::new();
        let kv_str = |s: &mut String, k: &str, v: &str| {
            s.push_str(&format!("{k} = \"{}\"\n", escape(v)));
        };
        let kv_f = |s: &mut String, k: &str, v: f64| {
            s.push_str(&format!("{k} = {}\n", fmt_f64(v)));
        };
        let kv_of = |s: &mut String, k: &str, v: Option<f64>| {
            if let Some(v) = v {
                kv_f(s, k, v);
            }
        };
        let kv_i = |s: &mut String, k: &str, v: u64| {
            s.push_str(&format!("{k} = {v}\n"));
        };
        let kv_b = |s: &mut String, k: &str, v: bool| {
            s.push_str(&format!("{k} = {v}\n"));
        };
        let kv_pair = |s: &mut String, k: &str, v: Option<(f64, f64)>| {
            if let Some((a, b)) = v {
                s.push_str(&format!("{k} = [{}, {}]\n", fmt_f64(a), fmt_f64(b)));
            }
        };

        kv_str(&mut s, "format", SCENARIO_FORMAT);
        kv_str(&mut s, "name", &self.name);

        s.push_str("\n[trajectory]\n");
        kv_f(&mut s, "speed_kmh", self.trajectory.speed_kmh);
        kv_f(&mut s, "route_km", self.trajectory.route_km);
        match self.trajectory.profile {
            ProfileSpec::Constant => kv_str(&mut s, "profile", "constant"),
            ProfileSpec::Stations { stop_every_m, dwell_s, accel_ms2 } => {
                kv_str(&mut s, "profile", "stations");
                kv_f(&mut s, "stop_every_m", stop_every_m);
                kv_f(&mut s, "dwell_s", dwell_s);
                kv_f(&mut s, "accel_ms2", accel_ms2);
            }
        }

        s.push_str("\n[cells]\n");
        kv_str(&mut s, "family", self.cells.family.code());
        kv_of(&mut s, "site_spacing_m", self.cells.site_spacing_m);
        kv_pair(&mut s, "lateral_range_m", self.cells.lateral_range_m);
        if let Some(carriers) = &self.cells.carriers {
            let rows: Vec<String> = carriers
                .iter()
                .map(|c| {
                    format!(
                        "[{}, {}, {}]",
                        c.earfcn.0,
                        fmt_f64(c.carrier_hz),
                        fmt_f64(c.bandwidth_mhz)
                    )
                })
                .collect();
            s.push_str(&format!("carriers = [{}]\n", rows.join(", ")));
        }
        kv_of(&mut s, "second_cell_prob", self.cells.second_cell_prob);
        kv_of(&mut s, "third_cell_prob", self.cells.third_cell_prob);
        kv_of(&mut s, "tx_power_dbm", self.cells.tx_power_dbm);
        kv_of(&mut s, "holes_per_100km", self.cells.holes_per_100km);
        kv_pair(&mut s, "hole_len_m", self.cells.hole_len_m);

        if self.channel != ChannelSpec::default() {
            s.push_str("\n[channel]\n");
            kv_of(&mut s, "shadow_sigma_db", self.channel.shadow_sigma_db);
            kv_of(&mut s, "shadow_dcorr_m", self.channel.shadow_dcorr_m);
            kv_of(&mut s, "rem_estimation_err_db", self.channel.rem_estimation_err_db);
        }

        s.push_str("\n[policy]\n");
        kv_str(
            &mut s,
            "plane",
            match self.policy.plane {
                PlaneMix::Both => "both",
                PlaneMix::Legacy => "legacy",
                PlaneMix::Rem => "rem",
            },
        );
        if let Some(v) = self.policy.rem_clamp_offsets {
            kv_b(&mut s, "rem_clamp_offsets", v);
        }
        kv_of(&mut s, "proactive_prob", self.policy.proactive_prob);
        kv_of(&mut s, "proactive_offset_db", self.policy.proactive_offset_db);
        kv_of(&mut s, "normal_offset_db", self.policy.normal_offset_db);
        kv_of(&mut s, "intra_ttt_ms", self.policy.intra_ttt_ms);
        kv_of(&mut s, "inter_ttt_ms", self.policy.inter_ttt_ms);
        kv_of(&mut s, "intra_staleness_ms", self.policy.intra_staleness_ms);
        kv_of(&mut s, "inter_staleness_ms", self.policy.inter_staleness_ms);
        kv_of(&mut s, "rem_staleness_ms", self.policy.rem_staleness_ms);

        s.push_str("\n[link]\n");
        kv_str(
            &mut s,
            "model",
            match self.link.model {
                ChannelModel::Hst => "hst",
                ChannelModel::Eva => "eva",
                ChannelModel::Etu => "etu",
                ChannelModel::Epa => "epa",
            },
        );
        kv_f(&mut s, "snr_db", self.link.snr_db);
        kv_i(&mut s, "blocks", self.link.blocks as u64);
        kv_i(&mut s, "seed", self.link.seed);

        if let Some(fs) = &self.faults {
            s.push_str("\n[faults]\n");
            kv_of(&mut s, "rate_scale", fs.rate_scale);
            kv_of(&mut s, "feedback_per_min", fs.feedback_per_min);
            kv_of(&mut s, "command_per_min", fs.command_per_min);
            kv_of(&mut s, "x2_per_min", fs.x2_per_min);
            kv_of(&mut s, "mask_per_min", fs.mask_per_min);
            kv_of(&mut s, "hole_per_min", fs.hole_per_min);
            kv_of(&mut s, "window_ms", fs.window_ms);
            kv_of(&mut s, "hole_ms", fs.hole_ms);
            kv_of(&mut s, "extra_delay_ms", fs.extra_delay_ms);
            kv_of(&mut s, "delay_frac", fs.delay_frac);
            kv_of(&mut s, "corrupt_frac", fs.corrupt_frac);
            kv_of(&mut s, "tcp_burst_per_min", fs.tcp_burst_per_min);
            kv_of(&mut s, "burst_ms", fs.burst_ms);
            kv_of(&mut s, "burst_loss_prob", fs.burst_loss_prob);
        }

        if let Some(ns) = &self.net {
            s.push_str("\n[net]\n");
            kv_of(&mut s, "bloat_per_min", ns.bloat_per_min);
            kv_of(&mut s, "bloat_ms", ns.bloat_ms);
            kv_of(&mut s, "bloat_drain_pkts_per_ms", ns.bloat_drain_pkts_per_ms);
            kv_of(&mut s, "bloat_queue_pkts", ns.bloat_queue_pkts);
            kv_of(&mut s, "bloat_standing_pkts", ns.bloat_standing_pkts);
            kv_of(&mut s, "jitter_per_min", ns.jitter_per_min);
            kv_of(&mut s, "jitter_ms", ns.jitter_ms);
            kv_of(&mut s, "jitter_spike_ms", ns.jitter_spike_ms);
            kv_of(&mut s, "rebind_per_min", ns.rebind_per_min);
            kv_of(&mut s, "outage_per_min", ns.outage_per_min);
            kv_of(&mut s, "outage_ms", ns.outage_ms);
            kv_of(&mut s, "window_ms", ns.window_ms);
            kv_of(&mut s, "loss_prob", ns.loss_prob);
        }

        if let Some(fl) = &self.fleet {
            s.push_str("\n[fleet]\n");
            kv_i(&mut s, "trains", fl.trains as u64);
            kv_i(&mut s, "ues_per_train", fl.ues_per_train as u64);
            kv_f(&mut s, "corridor_km", fl.corridor_km);
            kv_f(&mut s, "cell_spacing_m", fl.cell_spacing_m);
            kv_f(&mut s, "speed_kmh", fl.speed_kmh);
            kv_f(&mut s, "speed_jitter", fl.speed_jitter);
            kv_f(&mut s, "headway_s", fl.headway_s);
            kv_f(&mut s, "duration_s", fl.duration_s);
            kv_f(&mut s, "epoch_ms", fl.epoch_ms);
            kv_i(&mut s, "seed", fl.seed);
            kv_i(&mut s, "shards", fl.shards as u64);
        }

        s.push_str("\n[run]\n");
        let seeds: Vec<String> = self.run.seeds.iter().map(|v| v.to_string()).collect();
        s.push_str(&format!("seeds = [{}]\n", seeds.join(", ")));
        kv_i(&mut s, "threads", self.run.threads as u64);
        kv_i(&mut s, "checkpoint_every", self.run.checkpoint_every as u64);
        kv_i(&mut s, "max_retries", self.run.max_retries as u64);
        if let Some(t) = self.run.trial_timeout_ms {
            kv_i(&mut s, "trial_timeout_ms", t);
        }
        kv_f(&mut s, "chaos_panic_rate", self.run.chaos_panic_rate);
        kv_b(&mut s, "chaos_fatal", self.run.chaos_fatal);
        kv_i(&mut s, "chaos_seed", self.run.chaos_seed);

        s.push_str("\n[train]\n");
        kv_i(&mut s, "clients", self.train.clients as u64);
        kv_f(&mut s, "train_len_m", self.train.train_len_m);
        kv_f(&mut s, "window_ms", self.train.window_ms);
        kv_i(&mut s, "seed", self.train.seed);
        s
    }

    /// Structural validation with field paths. `from_toml` calls this,
    /// so a loaded scenario is always valid; call it again after
    /// mutating a spec in code (e.g. applying CLI overrides).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let pos = |path: &str, v: f64| -> Result<(), ScenarioError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(range(path, v, "must be finite and > 0"));
            }
            Ok(())
        };
        pos("trajectory.speed_kmh", self.trajectory.speed_kmh)?;
        pos("trajectory.route_km", self.trajectory.route_km)?;
        if let ProfileSpec::Stations { stop_every_m, dwell_s, accel_ms2 } =
            self.trajectory.profile
        {
            pos("trajectory.stop_every_m", stop_every_m)?;
            pos("trajectory.accel_ms2", accel_ms2)?;
            if !dwell_s.is_finite() || dwell_s < 0.0 {
                return Err(range("trajectory.dwell_s", dwell_s, "must be finite and >= 0"));
            }
            // The accelerate+brake ramp must fit between stops, or
            // Trajectory::new would panic deep in the simulator.
            let v = self.trajectory.speed_kmh / 3.6;
            let ramp = v * v / accel_ms2;
            if stop_every_m <= ramp {
                return Err(range(
                    "trajectory.stop_every_m",
                    stop_every_m,
                    &format!("stops too close for the accelerate+brake ramp (need > {ramp:.0} m at this speed)"),
                ));
            }
        }
        for (path, v) in [
            ("cells.second_cell_prob", self.cells.second_cell_prob),
            ("cells.third_cell_prob", self.cells.third_cell_prob),
            ("policy.proactive_prob", self.policy.proactive_prob),
        ] {
            if let Some(p) = v {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(range(path, p, "must be a probability in [0, 1]"));
                }
            }
        }
        if self.run.seeds.is_empty() {
            return Err(ScenarioError::OutOfRange {
                path: "run.seeds".into(),
                value: "[]".into(),
                reason: "must list at least one seed".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.run.chaos_panic_rate) {
            return Err(range(
                "run.chaos_panic_rate",
                self.run.chaos_panic_rate,
                "must be a probability in [0, 1]",
            ));
        }
        if self.link.blocks == 0 {
            return Err(range("link.blocks", 0.0, "must be >= 1"));
        }
        if self.train.clients == 0 {
            return Err(range("train.clients", 0.0, "must be >= 1"));
        }
        pos("train.train_len_m", self.train.train_len_m)?;
        pos("train.window_ms", self.train.window_ms)?;
        // Backstop: everything the overrides can perturb goes through
        // the dataset's own validator (lateral ranges, carriers...).
        self.dataset().validate().map_err(|reason| ScenarioError::OutOfRange {
            path: "cells".into(),
            value: "<derived dataset>".into(),
            reason,
        })?;
        if let Some(fs) = &self.faults {
            fs.to_config().validate().map_err(|reason| ScenarioError::OutOfRange {
                path: "faults".into(),
                value: "<derived fault config>".into(),
                reason,
            })?;
        }
        if let Some(ns) = &self.net {
            if let Some(v) = ns.window_ms {
                pos("net.window_ms", v)?;
            }
            if let Some(p) = ns.loss_prob {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(range("net.loss_prob", p, "must be a probability in [0, 1]"));
                }
            }
            ns.to_config().validate().map_err(|reason| ScenarioError::OutOfRange {
                path: "net".into(),
                value: "<derived net fault config>".into(),
                reason,
            })?;
        }
        if let Some(fl) = &self.fleet {
            // FleetSpec::validate already speaks `fleet.<field>: ...`
            // paths; keep its message as the reason verbatim.
            fl.validate().map_err(|reason| ScenarioError::OutOfRange {
                path: "fleet".into(),
                value: "<fleet section>".into(),
                reason,
            })?;
        }
        Ok(())
    }

    /// The concrete [`DatasetSpec`]: the family's calibrated values
    /// with this scenario's overrides applied. The dataset keeps the
    /// family's display name, so a scenario that overrides nothing is
    /// byte-identical to the hard-coded constructor (the CI hash gate
    /// depends on this).
    pub fn dataset(&self) -> DatasetSpec {
        let mut d = self
            .cells
            .family
            .dataset(self.trajectory.route_km, self.trajectory.speed_kmh);
        d.speed_profile = self.trajectory.profile.to_speed_profile();
        let dep = &mut d.deployment;
        if let Some(v) = self.cells.site_spacing_m {
            dep.site_spacing_m = v;
        }
        if let Some(v) = self.cells.lateral_range_m {
            dep.lateral_range_m = v;
        }
        if let Some(v) = &self.cells.carriers {
            dep.carriers = v.clone();
        }
        if let Some(v) = self.cells.second_cell_prob {
            dep.second_cell_prob = v;
        }
        if let Some(v) = self.cells.third_cell_prob {
            dep.third_cell_prob = v;
        }
        if let Some(v) = self.cells.tx_power_dbm {
            dep.tx_power_dbm = v;
        }
        if let Some(v) = self.cells.holes_per_100km {
            dep.holes_per_100km = v;
        }
        if let Some(v) = self.cells.hole_len_m {
            dep.hole_len_m = v;
        }
        if let Some(v) = self.channel.shadow_sigma_db {
            d.shadow_sigma_db = v;
        }
        if let Some(v) = self.channel.shadow_dcorr_m {
            d.shadow_dcorr_m = v;
        }
        if let Some(v) = self.channel.rem_estimation_err_db {
            d.rem_estimation_err_db = v;
        }
        if let Some(v) = self.policy.proactive_prob {
            d.proactive_prob = v;
        }
        if let Some(v) = self.policy.proactive_offset_db {
            d.proactive_offset_db = v;
        }
        if let Some(v) = self.policy.normal_offset_db {
            d.normal_offset_db = v;
        }
        if let Some(v) = self.policy.intra_ttt_ms {
            d.intra_ttt_ms = v;
        }
        if let Some(v) = self.policy.inter_ttt_ms {
            d.inter_ttt_ms = v;
        }
        if let Some(v) = self.policy.intra_staleness_ms {
            d.intra_staleness_ms = v;
        }
        if let Some(v) = self.policy.inter_staleness_ms {
            d.inter_staleness_ms = v;
        }
        if let Some(v) = self.policy.rem_staleness_ms {
            d.rem_staleness_ms = v;
        }
        d
    }

    /// The fault configuration, when the scenario schedules faults.
    pub fn fault_config(&self) -> Option<FaultConfig> {
        self.faults.as_ref().map(FaultsSpec::to_config)
    }

    /// The `rem net` stall-study spec, when the scenario has a `[net]`
    /// section: pathology mix from the section, seeds from `[run]`.
    pub fn net_study_spec(&self) -> Option<crate::net_study::NetStudySpec> {
        self.net.as_ref().map(|n| {
            let d = crate::net_study::NetStudySpec::default();
            crate::net_study::NetStudySpec {
                faults: n.to_config(),
                seeds: self.run.seeds.clone(),
                window_ms: n.window_ms.unwrap_or(d.window_ms),
                loss_prob: n.loss_prob.unwrap_or(d.loss_prob),
            }
        })
    }

    /// The [`CampaignSpec`] this scenario describes: derived dataset,
    /// the `[run]` seeds/threads and the fault schedule.
    pub fn campaign(&self) -> CampaignSpec {
        CampaignSpec {
            spec: self.dataset(),
            seeds: self.run.seeds.clone(),
            threads: self.run.threads,
            faults: self.fault_config(),
        }
    }

    /// The crash-safety [`RunPolicy`] from the `[run]` section.
    pub fn run_policy(&self) -> RunPolicy {
        RunPolicy {
            threads: self.run.threads,
            max_retries: self.run.max_retries,
            trial_timeout_ms: self.run.trial_timeout_ms,
            checkpoint_every: self.run.checkpoint_every,
            cancel: None,
        }
    }

    /// The chaos-injection config, when `[run] chaos_panic_rate > 0`.
    pub fn chaos(&self) -> Option<ChaosConfig> {
        (self.run.chaos_panic_rate > 0.0).then(|| ChaosConfig {
            seed: self.run.chaos_seed,
            panic_rate: self.run.chaos_panic_rate,
            fatal: self.run.chaos_fatal,
        })
    }

    /// The single plane a one-plane command should run: the `[policy]`
    /// plane, or `None` when the scenario asks for the paired
    /// comparison (`both`).
    pub fn single_plane(&self) -> Option<Plane> {
        match self.policy.plane {
            PlaneMix::Both => None,
            PlaneMix::Legacy => Some(Plane::Legacy),
            PlaneMix::Rem => Some(Plane::Rem),
        }
    }

    /// A [`RunConfig`] for single-run commands (trace, train), on
    /// `plane` under `seed`, honouring the policy section's clamp
    /// override.
    pub fn run_config(&self, plane: Plane, seed: u64) -> RunConfig {
        let mut cfg = RunConfig::new(self.dataset(), plane, seed);
        if let Some(clamp) = self.policy.rem_clamp_offsets {
            cfg.rem_clamp_offsets = clamp;
        }
        cfg.faults = self.fault_config();
        cfg
    }

    /// The [`BlerScenario`] of the `[link]` section over `waveform`:
    /// the trajectory's speed, the deployment's *primary carrier*
    /// frequency, and the link parameters.
    pub fn bler_scenario(&self, waveform: Waveform) -> BlerScenario {
        let d = self.dataset();
        let mut s = BlerScenario::signaling(waveform, self.link.model)
            .with_speed_kmh(self.trajectory.speed_kmh)
            .with_snr_db(self.link.snr_db)
            .with_blocks(self.link.blocks)
            .with_seed(self.link.seed)
            .with_threads(self.run.threads);
        s.carrier_hz = d.deployment.carriers[0].carrier_hz;
        s
    }

    /// The [`TrainScenario`] of the `[train]` section: the derived
    /// dataset on the scenario's plane (`legacy` when `both`).
    pub fn train_scenario(&self) -> TrainScenario {
        let plane = self.single_plane().unwrap_or(Plane::Legacy);
        TrainScenario::new(self.run_config(plane, self.train.seed))
            .with_clients(self.train.clients)
            .with_train_len_m(self.train.train_len_m)
            .with_window_ms(self.train.window_ms)
            .with_threads(self.run.threads)
    }

    /// The [`FleetSpec`] of the `[fleet]` section, when the scenario
    /// describes a fleet campaign. Speed and epoch defaults come from
    /// the section itself, not `[trajectory]`: the fleet corridor is a
    /// different geometry (many trains, both directions) than the
    /// single-client route the rest of the scenario replays.
    pub fn fleet_spec(&self) -> Option<FleetSpec> {
        self.fleet.clone()
    }

    /// Scenario fingerprint for run manifests:
    /// `<name>:fnv1a64:<digest of the canonical TOML>`. Two scenarios
    /// fingerprint equal iff their canonical serializations match.
    pub fn fingerprint(&self) -> String {
        format!("{}:fnv1a64:{:016x}", self.name, fnv1a64(self.to_toml().as_bytes()))
    }
}

fn bad(path: &str, expected: &str, found: &Toml) -> ScenarioError {
    ScenarioError::BadValue {
        path: path.to_string(),
        expected: expected.to_string(),
        found: format!("a {}", found.type_name()),
    }
}

fn range(path: &str, v: f64, reason: &str) -> ScenarioError {
    ScenarioError::OutOfRange {
        path: path.to_string(),
        value: format!("{v}"),
        reason: reason.to_string(),
    }
}

/// One section of the document mid-read: keys are `remove`d as they
/// are consumed, so whatever remains at the end is unknown.
struct Tbl {
    path: &'static str,
    map: BTreeMap<String, Toml>,
}

impl Tbl {
    fn field(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn f64_opt(&mut self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.map.remove(key) {
            None => Ok(None),
            Some(Toml::Float(v)) => Ok(Some(v)),
            Some(Toml::Int(v)) => Ok(Some(v as f64)),
            Some(other) => Err(bad(&self.field(key), "a number", &other)),
        }
    }

    fn f64_req(&mut self, key: &str) -> Result<f64, ScenarioError> {
        self.f64_opt(key)?
            .ok_or_else(|| ScenarioError::Missing { path: self.field(key) })
    }

    fn f64_or(&mut self, key: &str, default: f64) -> Result<f64, ScenarioError> {
        Ok(self.f64_opt(key)?.unwrap_or(default))
    }

    fn u64_opt(&mut self, key: &str) -> Result<Option<u64>, ScenarioError> {
        match self.map.remove(key) {
            None => Ok(None),
            Some(Toml::Int(v)) if v >= 0 => Ok(Some(v as u64)),
            Some(Toml::Int(v)) => Err(range(&self.field(key), v as f64, "must be >= 0")),
            Some(other) => Err(bad(&self.field(key), "a non-negative integer", &other)),
        }
    }

    fn u64_or(&mut self, key: &str, default: u64) -> Result<u64, ScenarioError> {
        Ok(self.u64_opt(key)?.unwrap_or(default))
    }

    fn bool_opt(&mut self, key: &str) -> Result<Option<bool>, ScenarioError> {
        match self.map.remove(key) {
            None => Ok(None),
            Some(Toml::Bool(v)) => Ok(Some(v)),
            Some(other) => Err(bad(&self.field(key), "a boolean", &other)),
        }
    }

    fn str_opt(&mut self, key: &str) -> Result<Option<String>, ScenarioError> {
        match self.map.remove(key) {
            None => Ok(None),
            Some(Toml::Str(v)) => Ok(Some(v)),
            Some(other) => Err(bad(&self.field(key), "a string", &other)),
        }
    }

    fn pair_opt(&mut self, key: &str) -> Result<Option<(f64, f64)>, ScenarioError> {
        let Some(v) = self.map.remove(key) else { return Ok(None) };
        let expect = "a [min, max] pair of numbers";
        let Toml::Array(items) = &v else { return Err(bad(&self.field(key), expect, &v)) };
        let nums: Option<Vec<f64>> = items
            .iter()
            .map(|i| match i {
                Toml::Float(f) => Some(*f),
                Toml::Int(n) => Some(*n as f64),
                _ => None,
            })
            .collect();
        match nums.as_deref() {
            Some([a, b]) => Ok(Some((*a, *b))),
            _ => Err(bad(&self.field(key), expect, &v)),
        }
    }

    /// Unknown-field gate: everything not consumed is an error.
    fn done(&mut self) -> Result<(), ScenarioError> {
        match self.map.keys().next() {
            Some(key) => Err(ScenarioError::Unknown { path: self.field(key) }),
            None => Ok(()),
        }
    }
}

fn take_table(
    doc: &mut BTreeMap<String, Toml>,
    key: &'static str,
) -> Result<Option<Tbl>, ScenarioError> {
    match doc.remove(key) {
        None => Ok(None),
        Some(Toml::Table(map)) => Ok(Some(Tbl { path: key, map })),
        Some(other) => Err(bad(key, "a [table]", &other)),
    }
}

fn read_trajectory(t: &mut Tbl) -> Result<TrajectorySpec, ScenarioError> {
    let speed_kmh = t.f64_req("speed_kmh")?;
    let route_km = t.f64_req("route_km")?;
    let profile = match t.str_opt("profile")?.as_deref() {
        None | Some("constant") => ProfileSpec::Constant,
        Some("stations") => ProfileSpec::Stations {
            stop_every_m: t.f64_or("stop_every_m", 30_000.0)?,
            dwell_s: t.f64_or("dwell_s", 120.0)?,
            accel_ms2: t.f64_or("accel_ms2", 0.5)?,
        },
        Some(other) => {
            return Err(ScenarioError::BadValue {
                path: t.field("profile"),
                expected: "\"constant\" or \"stations\"".into(),
                found: format!("\"{other}\""),
            })
        }
    };
    // Leftover keys (e.g. a stations knob under a constant profile)
    // are unknown for *this* profile, not silently ignored.
    t.done()?;
    Ok(TrajectorySpec { speed_kmh, route_km, profile })
}

fn read_cells(t: &mut Tbl) -> Result<CellsSpec, ScenarioError> {
    let code = t
        .str_opt("family")?
        .ok_or_else(|| ScenarioError::Missing { path: t.field("family") })?;
    let family = Family::from_code(&code).ok_or_else(|| ScenarioError::BadValue {
        path: t.field("family"),
        expected: "one of \"bt\", \"bs\", \"la\", \"nr\"".into(),
        found: format!("\"{code}\""),
    })?;
    let carriers = read_carriers(t)?;
    let spec = CellsSpec {
        family,
        site_spacing_m: t.f64_opt("site_spacing_m")?,
        lateral_range_m: t.pair_opt("lateral_range_m")?,
        carriers,
        second_cell_prob: t.f64_opt("second_cell_prob")?,
        third_cell_prob: t.f64_opt("third_cell_prob")?,
        tx_power_dbm: t.f64_opt("tx_power_dbm")?,
        holes_per_100km: t.f64_opt("holes_per_100km")?,
        hole_len_m: t.pair_opt("hole_len_m")?,
    };
    t.done()?;
    Ok(spec)
}

fn read_carriers(t: &mut Tbl) -> Result<Option<Vec<CarrierPlan>>, ScenarioError> {
    let Some(v) = t.map.remove("carriers") else { return Ok(None) };
    let path = t.field("carriers");
    let expect = "an array of [earfcn, carrier_hz, bandwidth_mhz] rows";
    let Toml::Array(rows) = &v else { return Err(bad(&path, expect, &v)) };
    if rows.is_empty() {
        return Err(ScenarioError::OutOfRange {
            path,
            value: "[]".into(),
            reason: "must list at least one carrier".into(),
        });
    }
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let row_path = format!("{path}[{i}]");
        let Toml::Array(items) = row else { return Err(bad(&row_path, expect, row)) };
        let nums: Option<Vec<f64>> = items
            .iter()
            .map(|x| match x {
                Toml::Float(f) => Some(*f),
                Toml::Int(n) => Some(*n as f64),
                _ => None,
            })
            .collect();
        let Some([earfcn, carrier_hz, bandwidth_mhz]) = nums.as_deref() else {
            return Err(bad(&row_path, expect, row));
        };
        if *earfcn < 0.0 || earfcn.fract() != 0.0 || *earfcn > u32::MAX as f64 {
            return Err(range(&row_path, *earfcn, "earfcn must be a non-negative integer"));
        }
        out.push(CarrierPlan {
            earfcn: Earfcn(*earfcn as u32),
            carrier_hz: *carrier_hz,
            bandwidth_mhz: *bandwidth_mhz,
        });
    }
    Ok(Some(out))
}

fn read_channel(t: &mut Tbl) -> Result<ChannelSpec, ScenarioError> {
    let spec = ChannelSpec {
        shadow_sigma_db: t.f64_opt("shadow_sigma_db")?,
        shadow_dcorr_m: t.f64_opt("shadow_dcorr_m")?,
        rem_estimation_err_db: t.f64_opt("rem_estimation_err_db")?,
    };
    t.done()?;
    Ok(spec)
}

fn read_policy(t: &mut Tbl) -> Result<PolicySpec, ScenarioError> {
    let plane = match t.str_opt("plane")?.as_deref() {
        None | Some("both") => PlaneMix::Both,
        Some("legacy") => PlaneMix::Legacy,
        Some("rem") => PlaneMix::Rem,
        Some(other) => {
            return Err(ScenarioError::BadValue {
                path: t.field("plane"),
                expected: "one of \"both\", \"legacy\", \"rem\"".into(),
                found: format!("\"{other}\""),
            })
        }
    };
    let spec = PolicySpec {
        plane,
        rem_clamp_offsets: t.bool_opt("rem_clamp_offsets")?,
        proactive_prob: t.f64_opt("proactive_prob")?,
        proactive_offset_db: t.f64_opt("proactive_offset_db")?,
        normal_offset_db: t.f64_opt("normal_offset_db")?,
        intra_ttt_ms: t.f64_opt("intra_ttt_ms")?,
        inter_ttt_ms: t.f64_opt("inter_ttt_ms")?,
        intra_staleness_ms: t.f64_opt("intra_staleness_ms")?,
        inter_staleness_ms: t.f64_opt("inter_staleness_ms")?,
        rem_staleness_ms: t.f64_opt("rem_staleness_ms")?,
    };
    t.done()?;
    Ok(spec)
}

fn read_link(t: &mut Tbl) -> Result<LinkSpec, ScenarioError> {
    let defaults = LinkSpec::default();
    let model = match t.str_opt("model")?.as_deref() {
        None => defaults.model,
        Some("hst") => ChannelModel::Hst,
        Some("eva") => ChannelModel::Eva,
        Some("etu") => ChannelModel::Etu,
        Some("epa") => ChannelModel::Epa,
        Some(other) => {
            return Err(ScenarioError::BadValue {
                path: t.field("model"),
                expected: "one of \"hst\", \"eva\", \"etu\", \"epa\"".into(),
                found: format!("\"{other}\""),
            })
        }
    };
    let spec = LinkSpec {
        model,
        snr_db: t.f64_or("snr_db", defaults.snr_db)?,
        blocks: t.u64_or("blocks", defaults.blocks as u64)? as usize,
        seed: t.u64_or("seed", defaults.seed)?,
    };
    t.done()?;
    Ok(spec)
}

fn read_faults(t: &mut Tbl) -> Result<FaultsSpec, ScenarioError> {
    let spec = FaultsSpec {
        rate_scale: t.f64_opt("rate_scale")?,
        feedback_per_min: t.f64_opt("feedback_per_min")?,
        command_per_min: t.f64_opt("command_per_min")?,
        x2_per_min: t.f64_opt("x2_per_min")?,
        mask_per_min: t.f64_opt("mask_per_min")?,
        hole_per_min: t.f64_opt("hole_per_min")?,
        window_ms: t.f64_opt("window_ms")?,
        hole_ms: t.f64_opt("hole_ms")?,
        extra_delay_ms: t.f64_opt("extra_delay_ms")?,
        delay_frac: t.f64_opt("delay_frac")?,
        corrupt_frac: t.f64_opt("corrupt_frac")?,
        tcp_burst_per_min: t.f64_opt("tcp_burst_per_min")?,
        burst_ms: t.f64_opt("burst_ms")?,
        burst_loss_prob: t.f64_opt("burst_loss_prob")?,
    };
    t.done()?;
    Ok(spec)
}

fn read_net(t: &mut Tbl) -> Result<NetSpec, ScenarioError> {
    let spec = NetSpec {
        bloat_per_min: t.f64_opt("bloat_per_min")?,
        bloat_ms: t.f64_opt("bloat_ms")?,
        bloat_drain_pkts_per_ms: t.f64_opt("bloat_drain_pkts_per_ms")?,
        bloat_queue_pkts: t.f64_opt("bloat_queue_pkts")?,
        bloat_standing_pkts: t.f64_opt("bloat_standing_pkts")?,
        jitter_per_min: t.f64_opt("jitter_per_min")?,
        jitter_ms: t.f64_opt("jitter_ms")?,
        jitter_spike_ms: t.f64_opt("jitter_spike_ms")?,
        rebind_per_min: t.f64_opt("rebind_per_min")?,
        outage_per_min: t.f64_opt("outage_per_min")?,
        outage_ms: t.f64_opt("outage_ms")?,
        window_ms: t.f64_opt("window_ms")?,
        loss_prob: t.f64_opt("loss_prob")?,
    };
    t.done()?;
    Ok(spec)
}

fn read_fleet(t: &mut Tbl) -> Result<FleetSpec, ScenarioError> {
    let defaults = FleetSpec::default();
    let spec = FleetSpec {
        trains: t.u64_or("trains", defaults.trains as u64)? as u32,
        ues_per_train: t.u64_or("ues_per_train", defaults.ues_per_train as u64)? as u32,
        corridor_km: t.f64_or("corridor_km", defaults.corridor_km)?,
        cell_spacing_m: t.f64_or("cell_spacing_m", defaults.cell_spacing_m)?,
        speed_kmh: t.f64_or("speed_kmh", defaults.speed_kmh)?,
        speed_jitter: t.f64_or("speed_jitter", defaults.speed_jitter)?,
        headway_s: t.f64_or("headway_s", defaults.headway_s)?,
        duration_s: t.f64_or("duration_s", defaults.duration_s)?,
        epoch_ms: t.f64_or("epoch_ms", defaults.epoch_ms)?,
        seed: t.u64_or("seed", defaults.seed)?,
        shards: t.u64_or("shards", defaults.shards as u64)? as u32,
    };
    t.done()?;
    Ok(spec)
}

fn read_run(t: &mut Tbl) -> Result<RunSpec, ScenarioError> {
    let defaults = RunSpec::default();
    let seeds = match t.map.remove("seeds") {
        None => defaults.seeds.clone(),
        // `seeds = 3` is shorthand for `seeds = [1, 2, 3]`.
        Some(Toml::Int(n)) if n >= 1 => (1..=n as u64).collect(),
        Some(Toml::Int(n)) => {
            return Err(range(&t.field("seeds"), n as f64, "a seed count must be >= 1"))
        }
        Some(Toml::Array(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in &items {
                match item {
                    Toml::Int(v) if *v >= 0 => out.push(*v as u64),
                    _ => {
                        return Err(ScenarioError::BadValue {
                            path: t.field("seeds"),
                            expected: "an array of non-negative integers (or a count)".into(),
                            found: format!("a {}", item.type_name()),
                        })
                    }
                }
            }
            out
        }
        Some(other) => {
            return Err(bad(&t.field("seeds"), "a seed count or an array of seeds", &other))
        }
    };
    let timeout = t.u64_opt("trial_timeout_ms")?;
    let spec = RunSpec {
        seeds,
        threads: t.u64_or("threads", defaults.threads as u64)? as usize,
        checkpoint_every: t.u64_or("checkpoint_every", defaults.checkpoint_every as u64)?
            as usize,
        max_retries: t.u64_or("max_retries", defaults.max_retries as u64)? as u32,
        trial_timeout_ms: timeout.filter(|&v| v > 0),
        chaos_panic_rate: t.f64_or("chaos_panic_rate", defaults.chaos_panic_rate)?,
        chaos_fatal: t.bool_opt("chaos_fatal")?.unwrap_or(defaults.chaos_fatal),
        chaos_seed: t.u64_or("chaos_seed", defaults.chaos_seed)?,
    };
    t.done()?;
    Ok(spec)
}

fn read_train(t: &mut Tbl) -> Result<TrainSpec, ScenarioError> {
    let defaults = TrainSpec::default();
    let spec = TrainSpec {
        clients: t.u64_or("clients", defaults.clients as u64)? as usize,
        train_len_m: t.f64_or("train_len_m", defaults.train_len_m)?,
        window_ms: t.f64_or("window_ms", defaults.window_ms)?,
        seed: t.u64_or("seed", defaults.seed)?,
    };
    t.done()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        format = "REMSCENARIO1"
        name = "minimal"

        [trajectory]
        speed_kmh = 300.0
        route_km = 40.0

        [cells]
        family = "bs"
    "#;

    #[test]
    fn minimal_scenario_equals_programmatic_defaults() {
        let spec = ScenarioSpec::from_toml(MINIMAL).unwrap();
        let expect = ScenarioSpec::new("minimal", Family::BeijingShanghai, 40.0, 300.0);
        assert_eq!(spec, expect);
    }

    #[test]
    fn minimal_scenario_reproduces_the_hardcoded_dataset() {
        let spec = ScenarioSpec::from_toml(MINIMAL).unwrap();
        let derived = serde_json::to_string(&spec.dataset()).unwrap();
        let hardcoded =
            serde_json::to_string(&DatasetSpec::beijing_shanghai(40.0, 300.0)).unwrap();
        assert_eq!(derived, hardcoded, "unset overrides must not perturb calibration");
        let campaign = spec.campaign();
        assert_eq!(campaign.seeds, vec![1, 2]);
        assert!(campaign.faults.is_none());
        assert_eq!(campaign.threads, 0);
    }

    #[test]
    fn canonical_toml_round_trips() {
        let mut spec = ScenarioSpec::new("rt", Family::NrSmallcell, 15.0, 80.0);
        spec.trajectory.profile =
            ProfileSpec::Stations { stop_every_m: 1_500.0, dwell_s: 30.0, accel_ms2: 1.0 };
        spec.cells.site_spacing_m = Some(300.0);
        spec.cells.lateral_range_m = Some((10.0, 60.0));
        spec.cells.carriers = Some(vec![CarrierPlan {
            earfcn: Earfcn(630_000),
            carrier_hz: 3.5e9,
            bandwidth_mhz: 20.0,
        }]);
        spec.cells.holes_per_100km = Some(0.0);
        spec.channel.shadow_sigma_db = Some(5.5);
        spec.policy.plane = PlaneMix::Legacy;
        spec.policy.proactive_prob = Some(0.02);
        spec.link.model = ChannelModel::Etu;
        spec.link.blocks = 64;
        spec.faults = Some(FaultsSpec {
            rate_scale: Some(1.5),
            hole_per_min: Some(2.0),
            hole_ms: Some(9_000.0),
            ..FaultsSpec::default()
        });
        spec.net = Some(NetSpec {
            bloat_per_min: Some(0.9),
            rebind_per_min: Some(0.3),
            window_ms: Some(45_000.0),
            loss_prob: Some(0.004),
            ..NetSpec::default()
        });
        spec.run.seeds = vec![3, 5, 8];
        spec.run.trial_timeout_ms = Some(30_000);
        spec.run.chaos_panic_rate = 0.25;
        spec.train.clients = 24;
        spec.validate().unwrap();

        let toml = spec.to_toml();
        let back = ScenarioSpec::from_toml(&toml).expect("canonical TOML must parse");
        assert_eq!(back, spec, "round trip must be lossless:\n{toml}");
        // And the canonical form is a fixed point.
        assert_eq!(back.to_toml(), toml);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn fingerprint_moves_with_content() {
        let a = ScenarioSpec::new("a", Family::BeijingTaiyuan, 40.0, 300.0);
        let mut b = a.clone();
        b.run.seeds = vec![1, 2, 3];
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint().starts_with("a:fnv1a64:"));
    }

    #[test]
    fn version_gate() {
        let e = ScenarioSpec::from_toml("name = \"x\"\n").unwrap_err();
        assert_eq!(e, ScenarioError::Version { found: String::new() });
        let e =
            ScenarioSpec::from_toml("format = \"REMSCENARIO9\"\nname = \"x\"\n").unwrap_err();
        assert_eq!(e, ScenarioError::Version { found: "REMSCENARIO9".into() });
        assert!(e.to_string().contains("REMSCENARIO1"), "{e}");
    }

    #[test]
    fn unknown_fields_are_rejected_with_paths() {
        let doc = MINIMAL.replace("name = \"minimal\"", "name = \"minimal\"\nspeling_mistake = 1");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert_eq!(e, ScenarioError::Unknown { path: "speling_mistake".into() });

        let doc = MINIMAL.replace("family = \"bs\"", "family = \"bs\"\nsite_spcing_m = 900");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert_eq!(e, ScenarioError::Unknown { path: "cells.site_spcing_m".into() });
        assert!(e.to_string().contains("cells.site_spcing_m"), "{e}");
    }

    #[test]
    fn net_section_overlays_stock_pathologies_and_validates_with_paths() {
        let doc = format!(
            "{MINIMAL}\n[net]\nrebind_per_min = 0.5\nwindow_ms = 30000.0\n"
        );
        let spec = ScenarioSpec::from_toml(&doc).unwrap();
        let study = spec.net_study_spec().expect("[net] present");
        assert_eq!(study.faults.rebind_per_min, 0.5);
        // Untouched knobs keep the stock schedule.
        assert_eq!(study.faults.bloat_per_min, NetFaultConfig::default().bloat_per_min);
        assert_eq!(study.window_ms, 30_000.0);
        assert_eq!(study.seeds, spec.run.seeds);

        // Unknown keys are rejected with their dotted path.
        let doc = format!("{MINIMAL}\n[net]\nrebinds_per_min = 0.5\n");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert_eq!(e, ScenarioError::Unknown { path: "net.rebinds_per_min".into() });

        // Out-of-range values carry dotted paths too.
        let doc = format!("{MINIMAL}\n[net]\nloss_prob = 1.5\n");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert!(
            matches!(&e, ScenarioError::OutOfRange { path, .. } if path == "net.loss_prob"),
            "{e:?}"
        );
        let doc = format!("{MINIMAL}\n[net]\nbloat_per_min = -1.0\n");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert!(
            matches!(&e, ScenarioError::OutOfRange { path, .. } if path == "net"),
            "{e:?}"
        );

        // No [net] section: no study.
        assert!(ScenarioSpec::from_toml(MINIMAL).unwrap().net_study_spec().is_none());
    }

    #[test]
    fn fleet_section_overlays_defaults_and_round_trips() {
        let doc = format!("{MINIMAL}\n[fleet]\ntrains = 200\ncorridor_km = 30.0\nshards = 8\n");
        let spec = ScenarioSpec::from_toml(&doc).unwrap();
        let fleet = spec.fleet_spec().expect("[fleet] present");
        assert_eq!(fleet.trains, 200);
        assert_eq!(fleet.corridor_km, 30.0);
        assert_eq!(fleet.shards, 8);
        // Untouched knobs keep the fleet defaults, not trajectory's.
        assert_eq!(fleet.ues_per_train, FleetSpec::default().ues_per_train);
        assert_eq!(fleet.epoch_ms, FleetSpec::default().epoch_ms);

        // Canonical TOML reproduces an equal spec (fingerprint-stable).
        let canon = spec.to_toml();
        let back = ScenarioSpec::from_toml(&canon).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_toml(), canon);

        // Unknown keys are rejected with their dotted path.
        let doc = format!("{MINIMAL}\n[fleet]\ntrians = 200\n");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert_eq!(e, ScenarioError::Unknown { path: "fleet.trians".into() });

        // Invalid values surface FleetSpec's own dotted-path message.
        let doc = format!("{MINIMAL}\n[fleet]\nspeed_jitter = 1.5\n");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert!(e.to_string().contains("fleet.speed_jitter"), "{e}");

        // No [fleet] section: the command keeps its flag defaults, and
        // the canonical TOML stays byte-identical to the pre-fleet
        // format (the CI hash gate depends on this).
        let bare = ScenarioSpec::from_toml(MINIMAL).unwrap();
        assert!(bare.fleet_spec().is_none());
        assert!(!bare.to_toml().contains("[fleet]"));
    }

    #[test]
    fn stations_knobs_under_constant_profile_are_unknown() {
        let doc = MINIMAL.replace("route_km = 40.0", "route_km = 40.0\ndwell_s = 30.0");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert_eq!(e, ScenarioError::Unknown { path: "trajectory.dwell_s".into() });
    }

    #[test]
    fn missing_required_fields_carry_paths() {
        let doc = "format = \"REMSCENARIO1\"\nname = \"x\"\n[cells]\nfamily = \"bt\"\n";
        let e = ScenarioSpec::from_toml(doc).unwrap_err();
        assert_eq!(e, ScenarioError::Missing { path: "trajectory".into() });

        let doc = MINIMAL.replace("speed_kmh = 300.0", "");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert_eq!(e, ScenarioError::Missing { path: "trajectory.speed_kmh".into() });
    }

    #[test]
    fn bad_values_carry_expected_and_found() {
        let doc = MINIMAL.replace("family = \"bs\"", "family = \"xx\"");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert!(
            matches!(&e, ScenarioError::BadValue { path, .. } if path == "cells.family"),
            "{e:?}"
        );

        let doc = MINIMAL.replace("speed_kmh = 300.0", "speed_kmh = \"fast\"");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert!(
            matches!(&e, ScenarioError::BadValue { path, found, .. }
                if path == "trajectory.speed_kmh" && found.contains("string")),
            "{e:?}"
        );
    }

    #[test]
    fn out_of_range_values_carry_field_paths() {
        let doc = MINIMAL.replace("speed_kmh = 300.0", "speed_kmh = -5.0");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert!(
            matches!(&e, ScenarioError::OutOfRange { path, .. }
                if path == "trajectory.speed_kmh"),
            "{e:?}"
        );

        let doc =
            MINIMAL.replace("family = \"bs\"", "family = \"bs\"\nsecond_cell_prob = 1.5");
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert!(
            matches!(&e, ScenarioError::OutOfRange { path, .. }
                if path == "cells.second_cell_prob"),
            "{e:?}"
        );
    }

    #[test]
    fn infeasible_station_profile_is_out_of_range_not_a_panic() {
        let doc = MINIMAL.replace(
            "route_km = 40.0",
            "route_km = 40.0\nprofile = \"stations\"\nstop_every_m = 500.0",
        );
        let e = ScenarioSpec::from_toml(&doc).unwrap_err();
        assert!(
            matches!(&e, ScenarioError::OutOfRange { path, reason, .. }
                if path == "trajectory.stop_every_m" && reason.contains("ramp")),
            "{e:?}"
        );
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let e = ScenarioSpec::from_toml("format = \"REMSCENARIO1\"\nbroken line\n").unwrap_err();
        assert!(
            matches!(&e, ScenarioError::Syntax { line: 2, .. }),
            "{e:?}"
        );
    }

    #[test]
    fn io_errors_carry_the_path() {
        let e = ScenarioSpec::load(Path::new("/nonexistent/x.toml")).unwrap_err();
        assert!(
            matches!(&e, ScenarioError::Io { path, .. } if path.contains("nonexistent")),
            "{e:?}"
        );
    }

    #[test]
    fn seeds_accept_count_and_list() {
        let doc = format!("{MINIMAL}\n[run]\nseeds = 4\n");
        let spec = ScenarioSpec::from_toml(&doc).unwrap();
        assert_eq!(spec.run.seeds, vec![1, 2, 3, 4]);

        let doc = format!("{MINIMAL}\n[run]\nseeds = [7, 9]\n");
        let spec = ScenarioSpec::from_toml(&doc).unwrap();
        assert_eq!(spec.run.seeds, vec![7, 9]);
    }

    #[test]
    fn faults_section_enables_injection_with_scaled_defaults() {
        let doc = format!("{MINIMAL}\n[faults]\nrate_scale = 2.0\nhole_per_min = 1.0\n");
        let spec = ScenarioSpec::from_toml(&doc).unwrap();
        let cfg = spec.fault_config().expect("faults section present");
        let stock = FaultConfig::default();
        assert_eq!(cfg.hole_per_min, 2.0, "override then scale");
        assert_eq!(cfg.feedback_per_min, stock.feedback_per_min * 2.0);
        assert_eq!(cfg.window_ms, stock.window_ms, "shapes unscaled");
        assert!(ScenarioSpec::from_toml(MINIMAL).unwrap().fault_config().is_none());
    }

    #[test]
    fn chaos_and_policy_derivations() {
        let doc = format!(
            "{MINIMAL}\n[run]\nthreads = 3\nmax_retries = 2\nchaos_panic_rate = 0.5\nchaos_seed = 11\n"
        );
        let spec = ScenarioSpec::from_toml(&doc).unwrap();
        let policy = spec.run_policy();
        assert_eq!(policy.threads, 3);
        assert_eq!(policy.max_retries, 2);
        let chaos = spec.chaos().expect("rate > 0");
        assert_eq!(chaos.seed, 11);
        assert!(!chaos.fatal);
        assert!(ScenarioSpec::from_toml(MINIMAL).unwrap().chaos().is_none());
    }

    #[test]
    fn bler_scenario_uses_primary_carrier_and_trajectory_speed() {
        let spec = ScenarioSpec::from_toml(MINIMAL).unwrap();
        let b = spec.bler_scenario(Waveform::Ofdm);
        assert_eq!(b.carrier_hz, 1.88e9, "bs primary carrier");
        assert!((b.speed_ms - 300.0 / 3.6).abs() < 1e-9);
        assert_eq!(b.blocks, 200);
    }

    #[test]
    fn train_scenario_respects_plane_and_knobs() {
        let doc = format!("{MINIMAL}\n[policy]\nplane = \"rem\"\n[train]\nclients = 4\n");
        let spec = ScenarioSpec::from_toml(&doc).unwrap();
        let t = spec.train_scenario();
        assert_eq!(t.base.plane, Plane::Rem);
        assert_eq!(t.clients, 4);
        assert_eq!(t.train_len_m, 400.0);
    }
}
