#![warn(missing_docs)]

//! # rem-core
//!
//! The public facade of the REM reproduction ("Beyond 5G: Reliable
//! Extreme Mobility Management", SIGCOMM 2020): paired legacy-vs-REM
//! replay experiments, the TCP coupling of Fig 9, and re-exports of
//! every subsystem crate.
//!
//! ## The system in one paragraph
//!
//! 4G/5G mobility management keys every decision off wireless signal
//! strength, which is fragile under extreme-mobility Doppler; REM
//! shifts to *movement-based* management in the delay-Doppler domain:
//! an OTFS signaling overlay rides on the legacy OFDM grid
//! ([`rem_phy::scheduler`]), the client measures one cell per base
//! station and derives the rest via SVD cross-band estimation
//! ([`rem_crossband`]), and policies collapse to provably conflict-free
//! single-stage A3 rules ([`rem_mobility::rem_policy`]).
//!
//! ## Quickstart
//!
//! ```no_run
//! use rem_core::{CampaignSpec, Comparison, DatasetSpec};
//!
//! // A campaign is a value: dataset + seeds + worker threads. Trials
//! // are scheduled in parallel but reduced in canonical seed order, so
//! // the result is identical for every thread count.
//! let spec = DatasetSpec::beijing_taiyuan(50.0, 300.0);
//! let campaign = CampaignSpec::new(spec).with_seeds(&[1, 2, 3]);
//! let cmp = Comparison::run(&campaign);
//! println!(
//!     "legacy {:.1}% -> REM {:.1}% failures ({:.1}x reduction)",
//!     cmp.legacy.failure_ratio() * 100.0,
//!     cmp.rem.failure_ratio() * 100.0,
//!     cmp.no_hole_failure_epsilon(),
//! );
//! ```

pub mod checkpoint;
pub mod error;
pub mod experiment;
pub mod net_study;
pub mod report;
pub mod scenario;
pub mod tcp_coupling;

pub use checkpoint::{
    fnv1a64, read_checksummed, run_trials_checkpointed, write_atomic_checksummed, Checkpoint,
    CheckpointedRun, RunPolicy, CHECKPOINT_MAGIC,
};
pub use error::ExperimentError;
pub use experiment::{
    merge, run_train_checkpointed, train_fingerprint, CampaignSpec, CheckedAggregate,
    CheckedComparison, CheckedTrain, Comparison, DEFAULT_ROUTE_KM, DEFAULT_SEEDS,
};
pub use net_study::{
    net_study_fingerprint, run_net_study, run_net_study_with, run_net_trial, CheckedNetStudy,
    NetCell, NetPolicy, NetStudyReport, NetStudySpec, NetTrialResult, NET_ORACLE_SLACK_MS,
    NET_STALL_GAP_MS,
};
pub use report::{ExperimentReport, ReportRow};
pub use scenario::{ScenarioError, ScenarioSpec, SCENARIO_FORMAT};
pub use tcp_coupling::{mean_stall_per_failure_s, replay_tcp, replay_tcp_faulted, STALL_GAP_MS};

// Subsystem re-exports so downstream users depend on one crate.
pub use rem_channel;
pub use rem_crossband;
pub use rem_exec;
pub use rem_faults;
pub use rem_fleet;
pub use rem_mobility;
pub use rem_net;
pub use rem_num;
pub use rem_phy;
pub use rem_sim;

pub use rem_faults::{FaultConfig, FaultKind, FaultPlan, InjectedFault, OraclePair};
pub use rem_sim::{simulate_run, DatasetSpec, Plane, RunConfig, RunMetrics};
