//! Quickstart: one paired legacy-vs-REM replay on a short synthetic
//! high-speed-rail route.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rem_core::{CampaignSpec, Comparison, DatasetSpec};

fn main() {
    // A 30 km Beijing-Taiyuan-like route at 300 km/h.
    let spec = DatasetSpec::beijing_taiyuan(30.0, 300.0);
    println!(
        "dataset: {} @ {} km/h ({:.0} s of travel)",
        spec.name,
        spec.speed_kmh,
        spec.duration_s()
    );

    // Both planes and both seeds run as parallel trials; results are
    // reduced in seed order, so any thread count gives the same output.
    let cmp = Comparison::run(&CampaignSpec::new(spec).with_seeds(&[1, 2]));

    println!("\n               {:>10} {:>10}", "Legacy", "REM");
    println!(
        "handovers      {:>10} {:>10}",
        cmp.legacy.handovers.len(),
        cmp.rem.handovers.len()
    );
    println!(
        "HO interval    {:>9.1}s {:>9.1}s",
        cmp.legacy.avg_handover_interval_s(),
        cmp.rem.avg_handover_interval_s()
    );
    println!(
        "failure ratio  {:>9.1}% {:>9.1}%",
        cmp.legacy.failure_ratio() * 100.0,
        cmp.rem.failure_ratio() * 100.0
    );
    println!(
        "conflict loops {:>10} {:>10}",
        cmp.legacy.conflict_loops().count(),
        cmp.rem.conflict_loops().count()
    );
    println!(
        "feedback delay {:>8.0}ms {:>8.0}ms",
        rem_num::stats::mean(&cmp.legacy.feedback_delays_ms),
        rem_num::stats::mean(&cmp.rem.feedback_delays_ms)
    );

    let eps = cmp.no_hole_failure_epsilon();
    if eps.is_finite() {
        println!("\nREM reduces non-coverage-hole failures by {eps:.1}x");
    } else {
        println!("\nREM eliminated every non-coverage-hole failure in this replay");
    }
}
