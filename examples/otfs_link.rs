//! Link-level demo: BLER of legacy OFDM signaling vs REM's OTFS
//! overlay through the full coded pipeline (CRC -> convolutional code
//! -> interleaver -> QAM -> channel -> Viterbi), on the high-speed
//! train channel model at 350 km/h.
//!
//! ```sh
//! cargo run --release --example otfs_link [blocks_per_point]
//! ```

use rem_channel::doppler::kmh_to_ms;
use rem_channel::models::ChannelModel;
use rem_num::rng::rng_from_seed;
use rem_phy::link::{measure_bler, LinkConfig, Waveform};

fn main() {
    let blocks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let speed = kmh_to_ms(350.0);
    let carrier = 2.6e9;

    println!("HST channel @350 km/h, {blocks} blocks/point, 12x14 QPSK r=1/2 subframe\n");
    println!("{:>6} {:>12} {:>12}", "SNR dB", "legacy OFDM", "REM OTFS");
    for snr in [-4.0, 0.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0] {
        let mut r1 = rng_from_seed(42);
        let b_ofdm = measure_bler(
            &LinkConfig::signaling(Waveform::Ofdm),
            ChannelModel::Hst,
            speed,
            carrier,
            snr,
            blocks,
            &mut r1,
        );
        let mut r2 = rng_from_seed(42);
        let b_otfs = measure_bler(
            &LinkConfig::signaling(Waveform::Otfs),
            ChannelModel::Hst,
            speed,
            carrier,
            snr,
            blocks,
            &mut r2,
        );
        println!("{snr:>6} {b_ofdm:>12.3} {b_otfs:>12.3}");
    }
    println!("\nLegacy floors at high SNR (pilot-hold CSI ages under Doppler);");
    println!("the delay-Doppler overlay tracks the stable multipath profile.");
}
