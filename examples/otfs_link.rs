//! Link-level demo: BLER of legacy OFDM signaling vs REM's OTFS
//! overlay through the full coded pipeline (CRC -> convolutional code
//! -> interleaver -> QAM -> channel -> Viterbi), on the high-speed
//! train channel model at 350 km/h.
//!
//! ```sh
//! cargo run --release --example otfs_link [blocks_per_point]
//! ```

use rem_channel::models::ChannelModel;
use rem_phy::link::{BlerScenario, LinkConfig, Waveform};

fn main() {
    let blocks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    println!("HST channel @350 km/h, {blocks} blocks/point, 12x14 QPSK r=1/2 subframe\n");
    println!("{:>6} {:>12} {:>12}", "SNR dB", "legacy OFDM", "REM OTFS");
    // Seed 42 shared by both waveforms: each trial is a paired draw of
    // the same channel realization and payload.
    let base = BlerScenario::signaling(Waveform::Ofdm, ChannelModel::Hst)
        .with_blocks(blocks)
        .with_seed(42);
    for snr in [-4.0, 0.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0] {
        let b_ofdm = base.with_snr_db(snr).run();
        let b_otfs = BlerScenario {
            cfg: LinkConfig::signaling(Waveform::Otfs),
            ..base.with_snr_db(snr)
        }
        .run();
        println!("{snr:>6} {b_ofdm:>12.3} {b_otfs:>12.3}");
    }
    println!("\nLegacy floors at high SNR (pilot-hold CSI ages under Doppler);");
    println!("the delay-Doppler overlay tracks the stable multipath profile.");
}
