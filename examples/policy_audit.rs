//! Audits a handover policy set for conflicts, applies REM's
//! simplification (paper §5.3, Fig 8), and verifies Theorem 2.
//!
//! ```sh
//! cargo run --release --example policy_audit
//! ```

use rem_mobility::conflict::{a3_graph_from_policies, scan_conflicts};
use rem_mobility::policy::{legacy_multi_stage_policy, CellId, Earfcn};
use rem_mobility::rem_policy::{rem_policies, SimplifyConfig};

fn main() {
    // An operator config with the paper's pathologies: two mutually
    // proactive cells (Fig 4), a conservative pair, and multi-stage
    // inter-frequency rules.
    let inter = [Earfcn(2452)];
    let policies = vec![
        legacy_multi_stage_policy(CellId(3), Earfcn(500), &inter, -3.0, 80.0, 640.0),
        legacy_multi_stage_policy(CellId(4), Earfcn(500), &inter, -1.0, 80.0, 640.0),
        legacy_multi_stage_policy(CellId(5), Earfcn(500), &inter, 3.0, 80.0, 640.0),
        legacy_multi_stage_policy(CellId(9), Earfcn(2452), &[Earfcn(500)], 2.0, 80.0, 640.0),
    ];

    println!("== Legacy policy audit ==");
    let conflicts = scan_conflicts(&policies, |_, _| true);
    for c in &conflicts {
        println!(
            "  conflict {:?} <-> {:?}: {} ({})",
            c.a,
            c.b,
            c.kinds,
            if c.intra_frequency { "intra-frequency" } else { "inter-frequency" }
        );
    }
    let g = a3_graph_from_policies(&policies);
    println!("  Theorem 2 holds: {}", g.theorem2_holds());
    println!("  persistent loop possible: {}", g.has_persistent_loop());

    println!("\n== After REM simplification (A5/A4 -> A3, clamp, single stage) ==");
    let fixed = rem_policies(&policies, &SimplifyConfig::default());
    for p in &fixed {
        println!(
            "  cell {:?}: {} A3 rule(s), multi-stage: {}",
            p.cell,
            p.stage1.len(),
            p.is_multi_stage()
        );
    }
    let conflicts = scan_conflicts(&fixed, |_, _| true);
    println!("  remaining conflicts: {}", conflicts.len());
    let g = a3_graph_from_policies(&fixed);
    println!("  Theorem 2 holds: {}", g.theorem2_holds());
    println!("  persistent loop possible: {}", g.has_persistent_loop());
    assert!(conflicts.is_empty() && g.theorem2_holds() && !g.has_persistent_loop());
    println!("\nConflict freedom verified.");
}
