//! Application-level demo (paper Fig 9): replay a campaign's radio
//! outages under a bulk TCP transfer and compare stall times between
//! the legacy plane and REM.
//!
//! ```sh
//! cargo run --release --example tcp_over_hsr
//! ```

use rem_core::{replay_tcp, CampaignSpec, Comparison, DatasetSpec, STALL_GAP_MS};

fn main() {
    let spec = DatasetSpec::beijing_shanghai(30.0, 300.0);
    let window_ms = spec.duration_s() * 1e3;
    let cmp = Comparison::run(&CampaignSpec::new(spec).with_seeds(&[5]));

    let legacy_trace = replay_tcp(&cmp.legacy, window_ms, 7);
    let rem_trace = replay_tcp(&cmp.rem, window_ms, 7);

    println!("window: {:.0} s of bulk TCP over the replayed radio\n", window_ms / 1e3);
    println!("            {:>10} {:>10}", "Legacy", "REM");
    println!(
        "failures    {:>10} {:>10}",
        cmp.legacy.failures.len(),
        cmp.rem.failures.len()
    );
    println!(
        "stall time  {:>9.1}s {:>9.1}s",
        legacy_trace.total_stall_ms(STALL_GAP_MS) / 1e3,
        rem_trace.total_stall_ms(STALL_GAP_MS) / 1e3
    );
    println!(
        "goodput     {:>7.2}Mbps {:>7.2}Mbps",
        legacy_trace.mean_goodput_mbps(),
        rem_trace.mean_goodput_mbps()
    );
    if let Some((start, end)) = legacy_trace.stall_periods(STALL_GAP_MS).first() {
        println!("\nfirst legacy stall: {:.1}s -> {:.1}s; RTO backoff events:", start / 1e3, end / 1e3);
        for (t, rto) in legacy_trace.rto_events.iter().take(6) {
            println!("  t={:>7.2}s RTO={:.2}s", t / 1e3, rto / 1e3);
        }
    }
}
