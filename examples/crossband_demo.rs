//! Cross-band estimation walkthrough: builds a ground-truth multipath
//! channel, estimates band 1's delay-Doppler matrix through the OTFS
//! modem with an embedded pilot, runs Algorithm 1, and compares the
//! predicted band-2 channel against the truth — with the recovered
//! path profile printed along the way.
//!
//! ```sh
//! cargo run --release --example crossband_demo
//! ```

use rem_channel::delaydoppler::{dd_channel_matrix, snap_to_grid, DdGrid};
use rem_channel::{MultipathChannel, Path};
use rem_crossband::{estimate_band2, SvdEstimatorConfig};
use rem_num::rng::rng_from_seed;
use rem_num::c64;
use rem_phy::chanest::estimate_dd_embedded_pilot;

fn main() {
    let grid = DdGrid::lte(24, 16);
    let (f1, f2) = (1.86e9, 2.59e9);

    // Ground truth: a 3-path HSR-like channel (LOS + two reflectors).
    // Paths land on *distinct* delay and Doppler bins after snapping —
    // Theorem 1's condition (ii), under which the SVD coincides with
    // the physical factorisation.
    let truth = snap_to_grid(
        &grid,
        &MultipathChannel::new(vec![
            Path::new(c64(0.9, 0.1), 0.3e-6, 520.0),
            Path::new(c64(0.1, 0.4), 3.1e-6, -930.0),
            Path::new(c64(-0.2, 0.1), 5.8e-6, 1900.0),
        ]),
    );
    println!("ground-truth paths (band 1 @ {:.2} GHz):", f1 / 1e9);
    for p in truth.paths() {
        println!(
            "  |h|={:.2}  tau={:.2} us  nu={:+.0} Hz",
            p.gain.abs(),
            p.delay_s * 1e6,
            p.doppler_hz
        );
    }

    // Step 1: the client estimates band 1's DD channel from an
    // embedded pilot through the actual OTFS modem.
    let mut rng = rng_from_seed(7);
    let h1 = estimate_dd_embedded_pilot(&grid, &truth, 30.0, &mut rng);
    println!("\nband-1 DD estimate: {}x{} matrix from one pilot frame", grid.m, grid.n);

    // Step 2: Algorithm 1 — SVD factorisation, per-path extraction,
    // Doppler scaling to band 2, reconstruction.
    let est = estimate_band2(&grid, &h1, f1, f2, &SvdEstimatorConfig::default());
    println!("\nrecovered paths (Doppler scaled x{:.3} for band 2):", f2 / f1);
    for p in &est.paths {
        println!(
            "  |h|={:.2}  tau={:.2} us  nu1={:+.0} Hz -> nu2={:+.0} Hz",
            p.magnitude,
            p.delay_s * 1e6,
            p.doppler_hz,
            p.doppler_hz * f2 / f1
        );
    }

    // Step 3: compare against band 2's true DD channel.
    let truth2 = dd_channel_matrix(&grid, &truth.scaled_to_carrier(f1, f2));
    let rel = est.h2_dd.frobenius_dist(&truth2) / truth2.frobenius_norm();
    println!("\nband-2 prediction error: {:.1}% (Frobenius, vs ground truth)", rel * 100.0);
    println!("=> the serving cell now knows band 2's quality without ever measuring it.");
    assert!(rel < 0.25, "demo regression: rel={rel}");
}
