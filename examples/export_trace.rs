//! Exports a synthetic campaign as a MobileInsight-style signaling
//! trace (JSON lines): the dataset format the rest of the tooling —
//! and any future replay against real captures — consumes.
//!
//! ```sh
//! cargo run --release --example export_trace [out.jsonl]
//! ```

use rem_core::{DatasetSpec, Plane, RunConfig};
use rem_sim::simulate_run;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "trace.jsonl".into());
    let spec = DatasetSpec::beijing_taiyuan(20.0, 300.0);
    let mut cfg = RunConfig::new(spec, Plane::Legacy, 42);
    cfg.record_trace = true;
    let m = simulate_run(&cfg);

    std::fs::write(&out, m.trace.to_jsonl()).expect("write trace");
    println!("wrote {} events to {out}", m.trace.len());
    println!(
        "  {} reports, {} commands, {} completions, {} RLFs, {} attaches",
        m.trace.count("MEAS_REPORT"),
        m.trace.count("HO_COMMAND"),
        m.trace.count("HO_COMPLETE"),
        m.trace.count("RLF"),
        m.trace.count("ATTACH"),
    );
    for e in m.trace.events.iter().take(8) {
        println!("  {:>10.1}ms {:<12}", e.t_ms(), e.kind());
    }
    println!("  ...");
}
