//! Simulates a full high-speed-rail journey across all three synthetic
//! datasets and speed bins, printing the Table 2-style reliability
//! summary for the legacy plane and the REM overlay side by side.
//!
//! ```sh
//! cargo run --release --example hsr_journey [route_km]
//! ```

use rem_core::{CampaignSpec, Comparison, DatasetSpec};
use rem_mobility::FailureCause;

fn main() {
    let route_km: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40.0);

    let scenarios = [
        DatasetSpec::la_driving(route_km, 50.0),
        DatasetSpec::beijing_taiyuan(route_km, 150.0),
        DatasetSpec::beijing_taiyuan(route_km, 250.0),
        DatasetSpec::beijing_shanghai(route_km, 325.0),
    ];

    println!(
        "{:<18} {:>5}  {:>8} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "dataset", "km/h", "HO int.", "fail LGC", "fail REM", "fd/loss", "cmd loss", "loops"
    );
    for spec in scenarios {
        let cmp = Comparison::run(&CampaignSpec::new(spec).with_seeds(&[1, 2, 3]));
        println!(
            "{:<18} {:>5}  {:>7.1}s {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>3}/{:<3}",
            cmp.dataset,
            cmp.speed_kmh,
            cmp.legacy.avg_handover_interval_s(),
            cmp.legacy.failure_ratio() * 100.0,
            cmp.rem.failure_ratio() * 100.0,
            cmp.legacy.failure_ratio_by(FailureCause::FeedbackDelayLoss) * 100.0,
            cmp.legacy.failure_ratio_by(FailureCause::CommandLoss) * 100.0,
            cmp.legacy.conflict_loops().count(),
            cmp.rem.conflict_loops().count(),
        );
    }
    println!("\n(loops column: legacy/REM policy-conflict loops; REM is provably 0)");
}
